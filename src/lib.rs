//! # card-manet — CARD: Contact-Based Architecture for Resource Discovery
//!
//! Umbrella crate for the full reproduction of *"Contact-Based Architecture
//! for Resource Discovery (CARD) in Large Scale MANets"* (Garg, Pamu,
//! Nahata, Helmy — IPDPS 2003).
//!
//! CARD is a hybrid resource-discovery architecture for large mobile ad hoc
//! networks: each node proactively knows every node within `R` hops (its
//! *neighborhood*) and maintains a handful of *contacts* — nodes 2R‥r hops
//! away whose neighborhoods do not overlap its own. Contacts act as
//! small-world shortcuts: queries beyond the neighborhood are forwarded to
//! contacts (and, with depth of search `D > 1`, to contacts of contacts)
//! instead of being flooded.
//!
//! This crate re-exports the workspace layers:
//!
//! * [`sim`] — deterministic discrete-event engine (replaces NS-2);
//! * [`topology`] — placement, unit-disk connectivity, BFS, graph metrics;
//! * [`mobility`] — random waypoint and friends;
//! * [`routing`] — neighborhood (zone) tables, DSDV substrate, flooding,
//!   ZRP bordercasting, expanding-ring search;
//! * [`card`] — the CARD protocol itself: contact selection (PM/EM),
//!   maintenance with local recovery, DSQ querying, reachability analysis.
//!
//! ## Quickstart
//!
//! ```
//! use card_manet::prelude::*;
//!
//! // A 200-node static network in a 500 m x 500 m field, 50 m radio range.
//! let scenario = Scenario::new(200, 500.0, 500.0, 50.0);
//! let mut world = CardWorld::build(&scenario, CardConfig::default().with_seed(7));
//!
//! // Select contacts for every node with the Edge Method, then measure
//! // how much of the network each node can see.
//! world.select_all_contacts();
//! let summary = world.reachability_summary(1);
//! println!("mean reachability: {:.1}%", summary.mean_pct);
//! ```
//!
//! See `examples/` for complete scenarios and `crates/experiments` for the
//! paper's full evaluation (every table and figure). `ARCHITECTURE.md` at
//! the repo root documents the crate layering, the mobility-tick /
//! validation-round data flow, and the scalability invariants (zone-local
//! membership, mover-only grid updates, sharded protocol state, and the
//! mover-driven mobility→topology pipeline);
//! `docs/REPRO.md` documents how to run every experiment family.

#![warn(missing_docs)]
pub use card_core as card;
pub use manet_routing as routing;
pub use mobility;
pub use net_topology as topology;
pub use sim_core as sim;

/// One-stop imports for applications.
pub mod prelude {
    pub use card_core::prelude::*;
    pub use manet_routing::prelude::*;
    pub use mobility::prelude::*;
    pub use net_topology::prelude::*;
    pub use sim_core::prelude::*;
}

//! Mobile units under fire: contact maintenance and local recovery.
//!
//! ```text
//! cargo run --release --example battlefield_mobility
//! ```
//!
//! The paper's §I battlefield scenario: coordinated units move as groups
//! (reference-point group mobility) while every node keeps its contact
//! paths alive through periodic validation and §III.C.3 local recovery.
//! The example prints a per-second report of contact churn and shows how
//! much of the healing is done locally instead of by fresh selections.

use card_manet::mobility::GroupMobility;
use card_manet::prelude::*;
use card_manet::sim::rng::SeedSplitter;
use card_manet::sim::stats::MsgKind;
use card_manet::sim::time::SimDuration;

fn main() {
    // 300 nodes in 10 loosely-spread squads sweeping a 600 m x 600 m
    // theater; formations overlap so the force stays radio-connected.
    let field = Field::square(600.0);
    let cfg = CardConfig::default()
        .with_radius(2)
        .with_max_contact_distance(12)
        .with_target_contacts(4)
        .with_seed(1944);

    let mut squads = GroupMobility::new(
        300,
        field,
        10,
        1.0, // squads advance at 1–3 m/s
        3.0,
        150.0, // units spread up to 150 m around the squad leader
        SeedSplitter::new(cfg.seed).stream("squads", 0),
    );

    // Deploy: let the model place every unit in its squad formation, then
    // build the network (and select contacts) on that topology.
    let mut positions = vec![Point2::ORIGIN; 300];
    squads.advance(&mut positions, SimDuration::from_millis(1));
    let net = Network::from_positions(field, positions, 50.0, cfg.radius);
    let mut world = CardWorld::from_network(net, cfg);
    world.select_all_contacts();
    println!("== battlefield group mobility ==");
    println!(
        "t=0: {} contacts across {} units in 10 squads",
        world.total_contacts(),
        world.network().node_count()
    );

    let mut prev_recovered = 0;
    let mut prev_lost = 0;
    for second in 1..=10u64 {
        world.run_mobile(&mut squads, SimDuration::from_secs(1));
        let totals = world.maintenance_totals();
        let recovered = totals.recovered - prev_recovered;
        let lost = (totals.lost + totals.dropped_out_of_range) - prev_lost;
        prev_recovered = totals.recovered;
        prev_lost = totals.lost + totals.dropped_out_of_range;
        println!(
            "t={second:>2}s: {:>4} contacts | {:>3} paths healed locally | {:>3} contacts lost",
            world.total_contacts(),
            recovered,
            lost,
        );
    }

    let totals = world.maintenance_totals();
    let healed_ratio = totals.recovered as f64
        / (totals.recovered + totals.lost + totals.dropped_out_of_range).max(1) as f64;
    println!("\nover 10 s of maneuvering:");
    println!(
        "  {} validations, {} local recoveries, {} losses ({} of them rule-4 drops)",
        totals.validated,
        totals.recovered,
        totals.lost + totals.dropped_out_of_range,
        totals.dropped_out_of_range,
    );
    println!(
        "  local recovery absorbed {:.0}% of path disruptions without new searches",
        100.0 * healed_ratio
    );
    println!(
        "  maintenance traffic: {} validation + {} reply messages",
        world.stats().total(MsgKind::Validation),
        world.stats().total(MsgKind::ValidationReply),
    );

    // The network still answers queries after all that movement: query from
    // a unit that kept contacts alive.
    let source = NodeId::all(world.network().node_count())
        .max_by_key(|&n| world.contact_table(n).len())
        .expect("non-empty network");
    let target = if source == NodeId::new(299) {
        NodeId::new(0)
    } else {
        NodeId::new(299)
    };
    let out = world.query(source, target);
    println!(
        "  post-march query {source} -> {target}: {} ({} messages)",
        if out.found { "found" } else { "not found" },
        out.total_messages()
    );
}

//! Scheme comparison: CARD vs flooding vs bordercasting vs expanding ring.
//!
//! ```text
//! cargo run --release --example scheme_comparison
//! ```
//!
//! A miniature of the paper's Fig 15 plus the §III.C.4 expanding-ring
//! comparison: the same random queries are answered by all four discovery
//! schemes on the same topology, and the per-query traffic is tabulated.

use card_manet::prelude::*;
use card_manet::routing::expanding_ring::doubling_schedule;
use card_manet::routing::zrp::BordercastConfig;
use card_manet::sim::rng::SeedSplitter;
use card_manet::sim::stats::MsgStats;
use card_manet::sim::time::SimTime;

fn main() {
    let scenario = Scenario::new(400, 650.0, 650.0, 50.0);
    let cfg = CardConfig::default()
        .with_radius(4)
        .with_max_contact_distance(18)
        .with_target_contacts(8)
        .with_depth(3)
        .with_seed(11);

    let mut world = CardWorld::build(&scenario, cfg);
    world.select_all_contacts();
    let diameter = {
        // max eccentricity from a sample node is a cheap lower bound;
        // good enough to size the expanding-ring schedule
        let bfs = full_bfs(world.network().adj(), NodeId::new(0));
        bfs.max_distance().max(8)
    };
    let schedule = doubling_schedule(diameter);

    // Deterministic random query workload over the largest connected
    // component (so "success" means the same thing for every scheme).
    let mut rng = SeedSplitter::new(cfg.seed).stream("queries", 0);
    let pool: Vec<NodeId> = {
        let mut seen = vec![false; world.network().node_count()];
        let mut best: Vec<NodeId> = Vec::new();
        for s in NodeId::all(world.network().node_count()) {
            if seen[s.index()] {
                continue;
            }
            let bfs = full_bfs(world.network().adj(), s);
            for &v in bfs.visited() {
                seen[v.index()] = true;
            }
            if bfs.visited_count() > best.len() {
                best = bfs.visited().to_vec();
            }
        }
        best
    };
    let pairs: Vec<(NodeId, NodeId)> = (0..30)
        .map(|_| loop {
            let s = *rng.choose(&pool).expect("non-empty component");
            let t = *rng.choose(&pool).expect("non-empty component");
            if s != t {
                break (s, t);
            }
        })
        .collect();

    #[derive(Default)]
    struct Tally {
        msgs: u64,
        found: usize,
    }
    let mut card = Tally::default();
    let mut flood = Tally::default();
    let mut border = Tally::default();
    let mut ring = Tally::default();

    for &(s, t) in &pairs {
        let out = world.query(s, t);
        card.msgs += out.total_messages();
        card.found += out.found as usize;

        let mut st = MsgStats::default();
        let f = flood_search(world.network().adj(), s, t, &mut st, SimTime::ZERO);
        flood.msgs += f.total_messages();
        flood.found += f.found as usize;

        let mut st = MsgStats::default();
        let b = bordercast_search(
            world.network().adj(),
            world.network().tables(),
            s,
            t,
            &BordercastConfig::default(),
            &mut st,
            SimTime::ZERO,
        );
        border.msgs += b.total_messages();
        border.found += b.found as usize;

        let mut st = MsgStats::default();
        let e = expanding_ring_search(
            world.network().adj(),
            s,
            t,
            &schedule,
            &mut st,
            SimTime::ZERO,
        );
        ring.msgs += e.total_messages();
        ring.found += e.found as usize;
    }

    let q = pairs.len() as u64;
    println!(
        "== discovery schemes on {} ({} random queries) ==",
        scenario.label(),
        q
    );
    println!("{:<16}{:>14}{:>12}", "scheme", "msgs/query", "success");
    for (name, tally) in [
        ("flooding", &flood),
        ("expanding ring", &ring),
        ("bordercasting", &border),
        ("CARD (D<=3)", &card),
    ] {
        println!(
            "{:<16}{:>14.1}{:>11.0}%",
            name,
            tally.msgs as f64 / q as f64,
            100.0 * tally.found as f64 / q as f64
        );
    }
    println!(
        "\nCARD's one-time selection cost on this network: {} messages \
         ({:.1} per node), amortized over every future query.",
        world.stats().total_where(|k| k.is_selection()),
        world.stats().total_where(|k| k.is_selection()) as f64
            / world.network().node_count() as f64,
    );
}

//! Resource discovery proper: replicated services found by anycast DSQs.
//!
//! ```text
//! cargo run --release --example resource_discovery
//! ```
//!
//! CARD's target `T` is "a destination or target resource" (§III.C.4) —
//! this example exercises the resource-level API: a handful of services
//! (storage, gateway, time-sync) replicated across a 500-node network,
//! discovered by anycast queries that stop at the nearest instance, under
//! the two §V resource distributions.

use card_manet::card::resources::{distribute, resource_query, ResourceDistribution, ResourceId};
use card_manet::prelude::*;
use card_manet::sim::rng::SeedSplitter;
use card_manet::sim::stats::MsgStats;

fn main() {
    let scenario = Scenario::new(500, 710.0, 710.0, 50.0);
    let cfg = CardConfig::default()
        .with_radius(3)
        .with_max_contact_distance(16)
        .with_target_contacts(10)
        .with_depth(2)
        .with_seed(2003);

    let mut world = CardWorld::build(&scenario, cfg);
    world.select_all_contacts();
    println!("== resource discovery on {} ==", scenario.label());
    println!(
        "architecture ready: {:.1} contacts/node, D<=2 reachability {:.0}%\n",
        world.mean_contacts(),
        world.reachability_summary(2).mean_pct
    );

    let services = ["storage", "gateway", "time-sync"];
    let splitter = SeedSplitter::new(cfg.seed);

    for (dist_name, dist) in [
        (
            "uniform",
            ResourceDistribution::UniformReplicated { replicas: 5 },
        ),
        ("clustered", ResourceDistribution::Clustered { replicas: 5 }),
    ] {
        let mut rng = splitter.stream(dist_name, 0);
        let registry = distribute(world.network(), services.len(), dist, &mut rng);
        println!("-- {dist_name} placement, 5 replicas per service --");
        for (i, name) in services.iter().enumerate() {
            let resource = ResourceId(i as u32);
            let hosts: Vec<NodeId> = registry.hosts_of(resource).collect();
            let mut stats = MsgStats::default();
            let mut query_rng = splitter.stream("clients", i as u64);
            let mut scratch = QueryScratch::new();
            let mut found = 0;
            let mut msgs = 0u64;
            let clients = 50;
            for _ in 0..clients {
                let client = NodeId::from(query_rng.index(world.network().node_count()));
                let out = resource_query(
                    world.network(),
                    world.contact_tables(),
                    &registry,
                    client,
                    resource,
                    cfg.depth,
                    &mut stats,
                    world.now(),
                    &mut scratch,
                );
                found += out.found as usize;
                msgs += out.total_messages();
            }
            println!(
                "  {name:<10} hosts {hosts:?}: {found}/{clients} clients served, \
                 {:.1} msgs/query",
                msgs as f64 / clients as f64
            );
        }
        println!();
    }
    println!(
        "Uniform replication turns most queries into zone hits or one-contact \
         hops;\nclustered replicas keep sharing neighborhoods and behave like a \
         single instance."
    );

    // -- §V route hints: the same clients come back for the same services --
    //
    // Resource demand is repeat-heavy in practice, so flip the route-hint
    // cache on and replay a fixed client set: round 1 pays the plain DSQ
    // walks (and deposits hints along the resolved paths), later rounds
    // ride the cached next-hop contacts.
    let mut rng = splitter.stream("hint-placement", 0);
    let registry = distribute(
        world.network(),
        services.len(),
        ResourceDistribution::UniformReplicated { replicas: 5 },
        &mut rng,
    );
    world.set_hints_enabled(true);
    world.reset_hint_stats();
    let mut client_rng = splitter.stream("hint-clients", 0);
    let clients: Vec<NodeId> = (0..40)
        .map(|_| NodeId::from(client_rng.index(world.network().node_count())))
        .collect();
    println!(
        "\n-- route hints on, 40 repeat clients x {} services --",
        services.len()
    );
    let rounds = 4;
    let mut warm_msgs = 0u64;
    let mut warm_queries = 0u64;
    for round in 0..rounds {
        let mut msgs = 0u64;
        let mut found = 0usize;
        for &client in &clients {
            for i in 0..services.len() {
                let out = world.query_resource(&registry, client, ResourceId(i as u32));
                found += out.found as usize;
                msgs += out.total_messages();
            }
        }
        let queries = (clients.len() * services.len()) as u64;
        if round == 0 {
            println!(
                "  cold round: {found}/{queries} served, {:.2} msgs/query",
                msgs as f64 / queries as f64
            );
        } else {
            warm_msgs += msgs;
            warm_queries += queries;
        }
    }
    let hs = world.hint_stats();
    println!(
        "  warm rounds: {:.2} msgs/query, hit rate {:.0}%, {} deposits, {} stale",
        warm_msgs as f64 / warm_queries as f64,
        hs.hit_rate() * 100.0,
        hs.deposits,
        hs.stale_total()
    );
    println!(
        "Hints turn repeat discoveries into directed probes down remembered \
         contacts;\nstale entries fall back to the plain walk, so answers never \
         change — only cost."
    );
}

//! Resource discovery proper: replicated services found by anycast DSQs.
//!
//! ```text
//! cargo run --release --example resource_discovery
//! ```
//!
//! CARD's target `T` is "a destination or target resource" (§III.C.4) —
//! this example exercises the resource-level API: a handful of services
//! (storage, gateway, time-sync) replicated across a 500-node network,
//! discovered by anycast queries that stop at the nearest instance, under
//! the two §V resource distributions.

use card_manet::card::resources::{distribute, resource_query, ResourceDistribution, ResourceId};
use card_manet::prelude::*;
use card_manet::sim::rng::SeedSplitter;
use card_manet::sim::stats::MsgStats;

fn main() {
    let scenario = Scenario::new(500, 710.0, 710.0, 50.0);
    let cfg = CardConfig::default()
        .with_radius(3)
        .with_max_contact_distance(16)
        .with_target_contacts(10)
        .with_depth(2)
        .with_seed(2003);

    let mut world = CardWorld::build(&scenario, cfg);
    world.select_all_contacts();
    println!("== resource discovery on {} ==", scenario.label());
    println!(
        "architecture ready: {:.1} contacts/node, D<=2 reachability {:.0}%\n",
        world.mean_contacts(),
        world.reachability_summary(2).mean_pct
    );

    let services = ["storage", "gateway", "time-sync"];
    let splitter = SeedSplitter::new(cfg.seed);

    for (dist_name, dist) in [
        (
            "uniform",
            ResourceDistribution::UniformReplicated { replicas: 5 },
        ),
        ("clustered", ResourceDistribution::Clustered { replicas: 5 }),
    ] {
        let mut rng = splitter.stream(dist_name, 0);
        let registry = distribute(world.network(), services.len(), dist, &mut rng);
        println!("-- {dist_name} placement, 5 replicas per service --");
        for (i, name) in services.iter().enumerate() {
            let resource = ResourceId(i as u32);
            let hosts: Vec<NodeId> = registry.hosts_of(resource).collect();
            let mut stats = MsgStats::default();
            let mut query_rng = splitter.stream("clients", i as u64);
            let mut scratch = QueryScratch::new();
            let mut found = 0;
            let mut msgs = 0u64;
            let clients = 50;
            for _ in 0..clients {
                let client = NodeId::from(query_rng.index(world.network().node_count()));
                let out = resource_query(
                    world.network(),
                    world.contact_tables(),
                    &registry,
                    client,
                    resource,
                    cfg.depth,
                    &mut stats,
                    world.now(),
                    &mut scratch,
                );
                found += out.found as usize;
                msgs += out.total_messages();
            }
            println!(
                "  {name:<10} hosts {hosts:?}: {found}/{clients} clients served, \
                 {:.1} msgs/query",
                msgs as f64 / clients as f64
            );
        }
        println!();
    }
    println!(
        "Uniform replication turns most queries into zone hits or one-contact \
         hops;\nclustered replicas keep sharing neighborhoods and behave like a \
         single instance."
    );
}

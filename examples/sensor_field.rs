//! Static sensor field: resource discovery in a 1000-node sensor network.
//!
//! ```text
//! cargo run --release --example sensor_field
//! ```
//!
//! The paper motivates CARD with "applications like sensor networks [that]
//! may comprise of thousands of nodes" (§I) where mobility-assisted schemes
//! don't work because nothing moves (§II). This example builds a 1000-node
//! static sensor field, lets every sensor maintain contacts, and compares
//! the cost of locating a handful of "sink" resources via CARD against
//! flooding and bordercasting from the same nodes.

use card_manet::prelude::*;
use card_manet::routing::zrp::BordercastConfig;
use card_manet::sim::stats::{MsgKind, MsgStats};
use card_manet::sim::time::SimTime;

fn main() {
    // Fig 9's large configuration: 1000 nodes over 1000 m x 1000 m.
    let scenario = Scenario::new(1000, 1000.0, 1000.0, 50.0);
    let cfg = CardConfig::default()
        .with_radius(6)
        .with_max_contact_distance(24)
        .with_target_contacts(15)
        .with_depth(3)
        .with_seed(7);

    println!("== 1000-node static sensor field ==");
    let mut world = CardWorld::build(&scenario, cfg);
    world.select_all_contacts();
    println!(
        "contacts: {:.2} per sensor; selection cost {} messages total",
        world.mean_contacts(),
        world.stats().total_where(MsgKind::is_selection),
    );
    let summary = world.reachability_summary(3);
    println!(
        "reachability at D=3: mean {:.1}%, {:.0}% of sensors see >= half the field",
        summary.mean_pct,
        100.0 * summary.fraction_at_least(50.0),
    );

    // A few sensors host a scarce resource (e.g. a data sink). Random
    // sensors look for them.
    let sinks = [NodeId::new(17), NodeId::new(444), NodeId::new(901)];
    let sources = [
        NodeId::new(3),
        NodeId::new(250),
        NodeId::new(620),
        NodeId::new(987),
    ];

    let mut card_msgs = 0u64;
    let mut card_found = 0usize;
    for &s in &sources {
        for &t in &sinks {
            let out = world.query(s, t);
            card_msgs += out.total_messages();
            card_found += out.found as usize;
        }
    }

    let mut flood_stats = MsgStats::default();
    let mut bc_stats = MsgStats::default();
    let mut flood_found = 0usize;
    let mut bc_found = 0usize;
    for &s in &sources {
        for &t in &sinks {
            flood_found +=
                flood_search(world.network().adj(), s, t, &mut flood_stats, SimTime::ZERO).found
                    as usize;
            bc_found += bordercast_search(
                world.network().adj(),
                world.network().tables(),
                s,
                t,
                &BordercastConfig::default(),
                &mut bc_stats,
                SimTime::ZERO,
            )
            .found as usize;
        }
    }

    let queries = (sources.len() * sinks.len()) as u64;
    println!(
        "\n{} queries for {} sinks from {} sensors:",
        queries,
        sinks.len(),
        sources.len()
    );
    println!(
        "  CARD        : {:>8} msgs ({} found)",
        card_msgs, card_found
    );
    println!(
        "  bordercast  : {:>8} msgs ({} found)",
        bc_stats.total(MsgKind::Bordercast),
        bc_found
    );
    println!(
        "  flooding    : {:>8} msgs ({} found)",
        flood_stats.total(MsgKind::Flood),
        flood_found
    );
    println!(
        "\nCARD spends {:.1}% of flooding's traffic on the same workload.",
        100.0 * card_msgs as f64 / flood_stats.total(MsgKind::Flood).max(1) as f64
    );
}

//! Ad-hoc profiling of the incremental topology refresh (not part of the
//! test suite; run with `cargo run --release --example profile_refresh`).

use card_manet::prelude::*;
use card_manet::routing::Network;
use card_manet::sim::time::SimDuration;
use std::time::Instant;

fn main() {
    let n = 1000usize;
    let side = 710.0 * (n as f64 / 500.0).sqrt();
    let scenario = Scenario::new(n, side, side, 50.0);
    for (dt_ms, vmax) in [(100u64, 5.0f64), (100, 2.0), (20, 5.0), (10, 5.0)] {
        let mut net = Network::from_scenario(&scenario, 2, 7);
        let mut model = RandomWaypoint::new(
            n,
            scenario.field(),
            1.0,
            vmax,
            0.0,
            SeedSplitter::new(42).stream("m", 0),
        );
        let mut full_net = Network::from_scenario(&scenario, 2, 7);
        let mut full_model = RandomWaypoint::new(
            n,
            scenario.field(),
            1.0,
            vmax,
            0.0,
            SeedSplitter::new(42).stream("m", 0),
        );
        // warm up
        for _ in 0..5 {
            net.advance_positions_only(&mut model, SimDuration::from_millis(dt_ms));
            net.refresh();
            full_net.advance_positions_only(&mut full_model, SimDuration::from_millis(dt_ms));
            full_net.refresh_full();
        }
        let iters = 50;
        let t0 = Instant::now();
        for _ in 0..iters {
            net.advance_positions_only(&mut model, SimDuration::from_millis(dt_ms));
            net.refresh();
        }
        let inc = t0.elapsed().as_secs_f64() / iters as f64;
        let t0 = Instant::now();
        for _ in 0..iters {
            full_net.advance_positions_only(&mut full_model, SimDuration::from_millis(dt_ms));
            full_net.refresh_full();
        }
        let full = t0.elapsed().as_secs_f64() / iters as f64;
        println!(
            "dt={dt_ms}ms vmax={vmax}: incremental {:.0}us, full {:.0}us, ratio {:.2}x, changed {} dirty {}",
            inc * 1e6, full * 1e6, full / inc, net.last_changed_count(), net.last_dirty_count()
        );
    }
}

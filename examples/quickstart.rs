//! Quickstart: build a network, select contacts, discover a resource.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks through the whole CARD lifecycle on a small static network:
//! 1. instantiate a 200-node topology;
//! 2. select contacts with the edge method;
//! 3. inspect reachability;
//! 4. query a resource beyond the neighborhood.

use card_manet::prelude::*;
use card_manet::sim::stats::MsgKind;

fn main() {
    // A 200-node network in a 500 m x 500 m field with 50 m radio range —
    // roughly the density of the paper's Table 1 scenarios.
    let scenario = Scenario::new(200, 500.0, 500.0, 50.0);

    // Paper-style parameters: neighborhood radius R=2, contacts between
    // 2R=4 and r=10 hops, at most 5 contacts per node, edge method.
    let cfg = CardConfig::default()
        .with_radius(2)
        .with_max_contact_distance(10)
        .with_target_contacts(5)
        .with_depth(2)
        .with_seed(42);

    let mut world = CardWorld::build(&scenario, cfg);
    println!("== CARD quickstart ==");
    println!(
        "network: {} nodes, {} links, mean neighborhood size {:.1}",
        world.network().node_count(),
        world.network().adj().link_count(),
        world.network().tables().mean_size(),
    );

    // 1. Contact selection (CSQ walks through each node's edge nodes).
    world.select_all_contacts();
    println!(
        "selected {} contacts total ({:.2} per node) for {} CSQ + {} backtrack messages",
        world.total_contacts(),
        world.mean_contacts(),
        world.stats().total(MsgKind::Csq),
        world.stats().total(MsgKind::CsqBacktrack),
    );

    // 2. Reachability: how much of the network can each node see?
    let d1 = world.reachability_summary(1);
    let d2 = world.reachability_summary(2);
    println!(
        "mean reachability: {:.1}% at D=1, {:.1}% at D=2",
        d1.mean_pct, d2.mean_pct
    );

    // 3. Query a target beyond the source's neighborhood but inside its
    //    contact tree (reachable at D<=2), demonstrating a paying query.
    let source = NodeId::new(0);
    let reach = card_manet::card::reachability::reachability_set(
        world.network(),
        world.contact_tables(),
        source,
        2,
    );
    let target = reach
        .iter()
        .map(NodeId::from)
        .find(|&t| !world.network().tables().of(source).contains(t))
        .expect("contacts extend the view beyond the neighborhood");
    let outcome = world.query(source, target);
    if outcome.found {
        println!(
            "query {source} -> {target}: found at depth {} for {} messages \
             (a flood would have cost ~{})",
            outcome.depth_used,
            outcome.total_messages(),
            world.network().node_count(),
        );
    } else {
        println!(
            "query {source} -> {target}: not found within D={} ({} messages spent)",
            cfg.depth,
            outcome.total_messages()
        );
    }
}

//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no crates.io access, so this crate implements a
//! small wall-clock benchmark harness with criterion's surface syntax:
//! [`Criterion`] with `sample_size` / `warm_up_time` / `measurement_time`,
//! `bench_function`, `benchmark_group`, [`criterion_group!`] and
//! [`criterion_main!`].
//!
//! Methodology: each benchmark warms up for the configured duration (also
//! calibrating an iterations-per-sample count that makes one sample last
//! roughly `measurement_time / sample_size`), then takes `sample_size`
//! timed samples and reports the minimum / median / mean per-iteration
//! time. Results are printed to stdout; when the `BENCH_JSON` environment
//! variable names a file, all results of the process are also appended
//! there as a JSON array (used for the repo's `BENCH_*.json` baselines).

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full benchmark id (`group/name` or bare `name`).
    pub id: String,
    /// Minimum per-iteration time over all samples, nanoseconds.
    pub min_ns: f64,
    /// Median per-iteration time over all samples, nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration time over all samples, nanoseconds.
    pub mean_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// The benchmark driver (configuration + result sink).
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total target duration of the sampling phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            cfg: self.clone(),
            id: id.into(),
            ran: false,
        };
        f(&mut b);
        if !b.ran {
            eprintln!("warning: benchmark {} never called Bencher::iter", b.id);
        }
        self
    }

    /// Open a named group; benchmark ids become `group/name`.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks (ids are prefixed with the group name).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    cfg: Criterion,
    id: String,
    ran: bool,
}

impl Bencher {
    /// Measure `routine`, warming up first, then sampling.
    pub fn iter<R, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> R,
    {
        self.ran = true;

        // Warm-up: run for the configured duration, estimating the
        // per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.cfg.warm_up_time || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Calibrate iterations per sample so one sample lasts about
        // measurement_time / sample_size.
        let sample_target = self.cfg.measurement_time.as_secs_f64() / self.cfg.sample_size as f64;
        let iters_per_sample = ((sample_target / per_iter.max(1e-9)) as u64).clamp(1, 1 << 30);

        let mut sample_means_ns: Vec<f64> = Vec::with_capacity(self.cfg.sample_size);
        for _ in 0..self.cfg.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            sample_means_ns.push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        sample_means_ns.sort_by(|a, b| a.total_cmp(b));
        let min = sample_means_ns[0];
        let median = sample_means_ns[sample_means_ns.len() / 2];
        let mean = sample_means_ns.iter().sum::<f64>() / sample_means_ns.len() as f64;

        println!(
            "{:<48} time: [min {}  median {}  mean {}]  ({} samples x {} iters)",
            self.id,
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            sample_means_ns.len(),
            iters_per_sample,
        );
        RESULTS.lock().unwrap().push(BenchResult {
            id: self.id.clone(),
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            samples: sample_means_ns.len(),
            iters_per_sample,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// All results recorded so far in this process.
pub fn take_results() -> Vec<BenchResult> {
    RESULTS.lock().unwrap().clone()
}

/// Write every recorded result as a JSON array to the file named by the
/// `BENCH_JSON` environment variable (no-op when unset). Called by
/// [`criterion_main!`] after all groups run.
pub fn flush_json() {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let results = RESULTS.lock().unwrap();
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"min_ns\": {:.1}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
            r.id.replace('"', "\\\""),
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            r.samples,
            r.iters_per_sample,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push(']');
    out.push('\n');
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("benchmark results written to {path}");
    }
}

/// Declare a benchmark group: `criterion_group!{name = n; config = expr;
/// targets = f, g}` or the short `criterion_group!(n, f, g)` form.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main()` running the given groups, then flush JSON results.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
            $crate::flush_json();
        }
    };
}

//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no crates.io access, so this crate implements
//! a small but genuine property-testing harness with the same surface the
//! in-tree tests rely on:
//!
//! * the [`proptest!`] macro (`fn name(pat in strategy, ...) { body }`,
//!   optionally preceded by `#![proptest_config(...)]`);
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`];
//! * integer and float range strategies, 2/3-tuples of strategies,
//!   [`collection::vec`], and [`any`] for the primitive integers.
//!
//! Generation is deterministic: each test derives its seed from the fully
//! qualified test name plus the case index (override the session seed with
//! `PROPTEST_SEED`). There is no shrinking — a failing case reports the
//! case index and seed so it can be replayed.

use std::marker::PhantomData;
use std::ops::Range;

/// Per-test configuration (subset of proptest's `ProptestConfig`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Smaller than upstream's 256: these suites run many graph-sized
        // property bodies and this keeps `cargo test` snappy while still
        // exploring a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property-test case (returned by the `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
    /// True when raised by `prop_assume!` — the case is skipped, not failed.
    pub rejected: bool,
}

impl TestCaseError {
    /// A failing case with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError {
            message,
            rejected: false,
        }
    }

    /// A rejected case (failed `prop_assume!` precondition).
    pub fn reject(message: String) -> Self {
        TestCaseError {
            message,
            rejected: true,
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic per-case generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derive the generator for one `(test name, case index)` pair.
    pub fn new(test_name: &str, case: u32) -> Self {
        let session: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_CAFE);
        // FNV-1a over the test name, mixed with the session seed and case.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut state = h
            ^ session.rotate_left(29)
            ^ ((case as u64) << 1 | 1).wrapping_mul(0xD1B5_4A32_D192_ED03);
        splitmix64(&mut state); // discard one output to decorrelate
        TestRng { state }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire multiply-shift; bias is negligible for test generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator (much-reduced analogue of proptest's `Strategy`).
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Whole-domain strategy for `T` (analogue of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive; lo == hi means "exactly lo"
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy producing a `Vec` of `element` values (see [`vec`]).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with the given element strategy and size bounds.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.hi > self.size.lo {
                self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize
            } else {
                self.size.lo
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Define property tests. Supports the standard form
/// `proptest! { #[test] fn name(x in strategy, ...) { body } ... }` with an
/// optional leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( cfg = ($cfg:expr); ) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::new(__name, __case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { { $body }; ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__e) = __result {
                    if __e.rejected {
                        continue;
                    }
                    panic!(
                        "property {} failed at case {}/{} (set PROPTEST_SEED to replay): {}",
                        __name, __case, __cfg.cases, __e
                    );
                }
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

/// Assert a condition inside a property body (fails the case, not the
/// whole process, so the harness can report the case index).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert!` for equality, with `Debug` output of both operands.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)+);
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), __a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, $($fmt)+);
    }};
}

/// Skip the current case when a generated input fails a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let mut a = TestRng::new("x", 0);
        let mut b = TestRng::new("x", 0);
        let mut c = TestRng::new("x", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_respected(x in 3u32..17, y in -5i64..5, f in 0.25..0.75f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for e in &v {
                prop_assert!(*e < 10, "element {} out of range", e);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn tuples_and_any(p in (0u16..4, 0u16..4), s in any::<u64>()) {
            prop_assert!(p.0 < 4 && p.1 < 4);
            prop_assert_eq!(s, s);
            prop_assert_ne!(p.0 as u64 + 100, 1000u64);
        }
    }
}

//! Offline stand-in for the tiny subset of the `rand` crate this workspace
//! actually uses.
//!
//! The build environment has no access to crates.io, and `sim-core`
//! implements its own generator (xoshiro256++) anyway — all it needs from
//! `rand` is the [`RngCore`] trait so downstream code can treat
//! `sim_core::rng::RngStream` as a standard RNG. This crate provides that
//! trait with the same shape as `rand 0.8`.

/// The core random-number-generator interface (API-compatible with
/// `rand 0.8`'s `RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`]; infallible generators
    /// simply delegate.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

/// Error type for fallible RNG operations (never produced by the in-tree
/// generators; exists for signature compatibility).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("random number generator failure")
    }
}

impl std::error::Error for Error {}

//! ZRP-style bordercasting — baseline #2 of Fig 15.
//!
//! After Haas & Pearlman \[8\]\[9\]: every node proactively knows its *zone*
//! (R-hop neighborhood, the same tables CARD uses). A query for a target
//! outside the source's zone is *bordercast*: relayed down a tree rooted at
//! the source to its peripheral nodes (the zone's edge nodes). Each
//! peripheral node checks its own zone and, failing that, re-bordercasts to
//! its own periphery.
//!
//! Uncontrolled re-bordercasting would re-cover the same regions, so the
//! paper's comparison uses **query detection**:
//!
//! * **QD1** — nodes relaying the query (tree interior nodes) detect it and
//!   are never targeted again;
//! * **QD2** — in a single-channel network every node within radio range of
//!   a transmitting node overhears ("eavesdrops") the query and is likewise
//!   excluded (§IV.D: "Bordercasting was implemented with query detection
//!   (QD1 and QD2)").
//!
//! Transmission accounting is per tree **edge** (unicast relay along the
//! bordercast tree, as in the IERP packet-forwarding model): like the
//! paper's simulation, ours has no MAC layer, so there is no
//! single-transmission wireless broadcast to exploit. QD2's "overhearing"
//! is still modeled at the radio level: every neighbor of a relaying node
//! detects the query.

use net_topology::bfs::{khop_bfs, shortest_path};
use net_topology::graph::Adjacency;
use net_topology::node::NodeId;
use sim_core::stats::{MsgKind, MsgStats};
use sim_core::time::SimTime;
use std::collections::VecDeque;

use crate::neighborhood::NeighborhoodTables;

/// Which query-detection optimizations are active.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryDetection {
    /// No detection: only direct query recipients are excluded.
    None,
    /// QD1: relaying nodes detect the query.
    Qd1,
    /// QD1 + QD2: relaying nodes and everyone overhearing them detect it.
    Qd1Qd2,
}

/// Bordercasting configuration.
#[derive(Clone, Copy, Debug)]
pub struct BordercastConfig {
    /// Query-detection level (the paper uses QD1+QD2).
    pub qd: QueryDetection,
    /// Safety cap on processed bordercasters (the covered-set logic
    /// guarantees termination; this guards against pathological inputs).
    pub max_bordercasts: usize,
}

impl Default for BordercastConfig {
    fn default() -> Self {
        BordercastConfig {
            qd: QueryDetection::Qd1Qd2,
            max_bordercasts: 100_000,
        }
    }
}

/// Result of one bordercast search.
#[derive(Clone, Debug, PartialEq)]
pub struct BordercastOutcome {
    /// Was the target found in some zone?
    pub found: bool,
    /// Bordercast-tree transmissions.
    pub transmissions: u64,
    /// Reply messages (answering node back to the source).
    pub reply_messages: u64,
    /// Number of nodes that acted as bordercasters (source included).
    pub bordercasters: u64,
    /// Hop distance source→answering node (0 if the source answered).
    pub answer_distance: Option<u16>,
}

impl BordercastOutcome {
    /// Total control messages: tree + reply.
    pub fn total_messages(&self) -> u64 {
        self.transmissions + self.reply_messages
    }
}

/// Bordercast from `source` for `target` over the current topology.
///
/// `tables` must be the zone tables of the same `adj` snapshot; its radius
/// is the zone radius ρ.
///
/// # Panics
/// Panics if the zone radius is zero.
pub fn bordercast_search(
    adj: &Adjacency,
    tables: &NeighborhoodTables,
    source: NodeId,
    target: NodeId,
    cfg: &BordercastConfig,
    stats: &mut MsgStats,
    at: SimTime,
) -> BordercastOutcome {
    assert!(tables.radius() >= 1, "bordercasting needs zone radius >= 1");
    let n = adj.node_count();

    // Source answers from its own zone for free (proactive knowledge).
    if tables.contains(source, target) {
        return BordercastOutcome {
            found: true,
            transmissions: 0,
            reply_messages: 0,
            bordercasters: 0,
            answer_distance: Some(0),
        };
    }

    // detected[v]: v has seen the query and must not be targeted again.
    let mut detected = vec![false; n];
    let mut enqueued = vec![false; n];
    let mut queue = VecDeque::new();
    let mut transmissions: u64 = 0;
    let mut bordercasters: u64 = 0;

    detected[source.index()] = true;
    enqueued[source.index()] = true;
    queue.push_back(source);

    while let Some(b) = queue.pop_front() {
        if bordercasters as usize >= cfg.max_bordercasts {
            break;
        }
        bordercasters += 1;

        // A (re-)bordercaster first checks its own zone.
        if tables.contains(b, target) {
            let reply = shortest_path(adj, b, source)
                .map(|p| p.len() as u64 - 1)
                .unwrap_or(0);
            stats.record_n(at, MsgKind::Bordercast, transmissions + reply);
            return BordercastOutcome {
                found: true,
                transmissions,
                reply_messages: reply,
                bordercasters,
                answer_distance: shortest_path(adj, source, b).map(|p| p.len() as u16 - 1),
            };
        }

        // Build the bordercast tree toward the still-undetected periphery.
        let zone = khop_bfs(adj, b, tables.radius());
        let peripherals: Vec<NodeId> = tables
            .of(b)
            .edge_nodes()
            .iter()
            .copied()
            .filter(|p| !detected[p.index()])
            .collect();
        if peripherals.is_empty() {
            continue; // early termination: the whole periphery is covered
        }

        // Union of BFS-tree paths b -> each peripheral: one relay message
        // per distinct tree edge. A node relays through each of its tree
        // edges once; `transmitters` collects relaying nodes for QD2.
        let mut in_tree = vec![false; n];
        let mut transmitters: Vec<NodeId> = Vec::new();
        let mut tree_edges: u64 = 0;
        in_tree[b.index()] = true;
        for &p in &peripherals {
            let path = zone
                .path_to(p)
                .expect("edge node is in the zone by construction");
            for w in path.windows(2) {
                let (parent, child) = (w[0], w[1]);
                if !in_tree[child.index()] {
                    in_tree[child.index()] = true;
                    tree_edges += 1; // each node joins the tree via one edge
                    if !transmitters.contains(&parent) {
                        transmitters.push(parent);
                    }
                }
            }
        }
        transmissions += tree_edges;

        // Query detection.
        for v in 0..n {
            if in_tree[v] {
                match cfg.qd {
                    QueryDetection::None => {
                        // only the addressed peripheral nodes learn the query
                    }
                    QueryDetection::Qd1 | QueryDetection::Qd1Qd2 => detected[v] = true,
                }
            }
        }
        if cfg.qd == QueryDetection::Qd1Qd2 {
            for &tx in &transmitters {
                for &nb in adj.neighbors(tx) {
                    detected[nb.index()] = true;
                }
            }
        }
        // Addressed peripherals always detect the query.
        for &p in &peripherals {
            detected[p.index()] = true;
            if !enqueued[p.index()] {
                enqueued[p.index()] = true;
                queue.push_back(p);
            }
        }
    }

    stats.record_n(at, MsgKind::Bordercast, transmissions);
    BordercastOutcome {
        found: false,
        transmissions,
        reply_messages: 0,
        bordercasters,
        answer_distance: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimDuration;

    fn stats() -> MsgStats {
        MsgStats::new(SimDuration::from_secs(2))
    }

    /// 0-1-2-...-9 path.
    fn path10() -> Adjacency {
        let mut adj = Adjacency::with_nodes(10);
        for i in 0..9u32 {
            adj.add_edge(NodeId(i), NodeId(i + 1));
        }
        adj
    }

    #[test]
    fn in_zone_target_is_free() {
        let adj = path10();
        let tables = NeighborhoodTables::compute(&adj, 2);
        let mut st = stats();
        let out = bordercast_search(
            &adj,
            &tables,
            NodeId(0),
            NodeId(2),
            &BordercastConfig::default(),
            &mut st,
            SimTime::ZERO,
        );
        assert!(out.found);
        assert_eq!(out.total_messages(), 0);
        assert_eq!(out.answer_distance, Some(0));
        assert_eq!(st.grand_total(), 0);
    }

    #[test]
    fn finds_distant_target_on_path() {
        let adj = path10();
        let tables = NeighborhoodTables::compute(&adj, 2);
        let mut st = stats();
        let out = bordercast_search(
            &adj,
            &tables,
            NodeId(0),
            NodeId(9),
            &BordercastConfig::default(),
            &mut st,
            SimTime::ZERO,
        );
        assert!(out.found);
        assert!(out.transmissions > 0);
        assert!(out.reply_messages > 0);
        assert!(out.bordercasters >= 2, "needs re-bordercasting to reach n9");
        assert_eq!(st.total(MsgKind::Bordercast), out.total_messages());
    }

    #[test]
    fn miss_when_disconnected() {
        let mut adj = Adjacency::with_nodes(8);
        for i in 0..4u32 {
            // component {0..4} as a path, node 5..7 isolated/another comp
            if i < 3 {
                adj.add_edge(NodeId(i), NodeId(i + 1));
            }
        }
        adj.add_edge(NodeId(5), NodeId(6));
        let tables = NeighborhoodTables::compute(&adj, 1);
        let mut st = stats();
        let out = bordercast_search(
            &adj,
            &tables,
            NodeId(0),
            NodeId(6),
            &BordercastConfig::default(),
            &mut st,
            SimTime::ZERO,
        );
        assert!(!out.found);
        assert_eq!(out.reply_messages, 0);
    }

    #[test]
    fn query_detection_reduces_traffic() {
        // A denser random-ish graph where re-bordercasts overlap heavily.
        let mut adj = Adjacency::with_nodes(30);
        for i in 0..29u32 {
            adj.add_edge(NodeId(i), NodeId(i + 1));
        }
        for i in (0..26u32).step_by(3) {
            adj.add_edge(NodeId(i), NodeId(i + 3));
        }
        for i in (0..24u32).step_by(6) {
            adj.add_edge(NodeId(i), NodeId(i + 5));
        }
        let tables = NeighborhoodTables::compute(&adj, 2);
        let run = |qd| {
            let mut st = stats();
            bordercast_search(
                &adj,
                &tables,
                NodeId(0),
                NodeId(29),
                &BordercastConfig {
                    qd,
                    max_bordercasts: 100_000,
                },
                &mut st,
                SimTime::ZERO,
            )
        };
        let none = run(QueryDetection::None);
        let qd1 = run(QueryDetection::Qd1);
        let qd12 = run(QueryDetection::Qd1Qd2);
        assert!(none.found && qd1.found && qd12.found);
        assert!(
            qd1.transmissions <= none.transmissions,
            "QD1 ({}) should not beat no-detection ({})",
            qd1.transmissions,
            none.transmissions
        );
        assert!(
            qd12.transmissions <= qd1.transmissions,
            "QD2 ({}) should not exceed QD1 ({})",
            qd12.transmissions,
            qd1.transmissions
        );
    }

    #[test]
    fn terminates_on_cycle_topology() {
        // Ring: bordercasts chase each other around; detection must stop them.
        let mut adj = Adjacency::with_nodes(20);
        for i in 0..20u32 {
            adj.add_edge(NodeId(i), NodeId((i + 1) % 20));
        }
        let tables = NeighborhoodTables::compute(&adj, 2);
        let mut st = stats();
        // Target not in the graph's reachable set? Everything is connected in
        // a ring, so query an unreachable *zone* condition instead: use a
        // target that exists — it will be found; the point is termination.
        let out = bordercast_search(
            &adj,
            &tables,
            NodeId(0),
            NodeId(10),
            &BordercastConfig::default(),
            &mut st,
            SimTime::ZERO,
        );
        assert!(out.found);
        assert!(
            out.bordercasters < 20,
            "should terminate well before visiting everyone"
        );
    }

    #[test]
    #[should_panic(expected = "zone radius")]
    fn zero_radius_rejected() {
        let adj = path10();
        let tables = NeighborhoodTables::compute(&adj, 0);
        let mut st = stats();
        bordercast_search(
            &adj,
            &tables,
            NodeId(0),
            NodeId(5),
            &BordercastConfig::default(),
            &mut st,
            SimTime::ZERO,
        );
    }

    #[test]
    fn cheaper_than_flooding_on_line() {
        use crate::flooding::flood_search;
        let adj = path10();
        let tables = NeighborhoodTables::compute(&adj, 2);
        let mut st1 = stats();
        let mut st2 = stats();
        let bc = bordercast_search(
            &adj,
            &tables,
            NodeId(0),
            NodeId(5),
            &BordercastConfig::default(),
            &mut st1,
            SimTime::ZERO,
        );
        let fl = flood_search(&adj, NodeId(0), NodeId(5), &mut st2, SimTime::ZERO);
        assert!(bc.found && fl.found);
        assert!(
            bc.total_messages() <= fl.total_messages(),
            "bordercast {} should not exceed flooding {} on a line",
            bc.total_messages(),
            fl.total_messages()
        );
    }
}

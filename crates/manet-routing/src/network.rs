//! The network world: positions + connectivity + neighborhood tables.
//!
//! [`Network`] is the single mutable world object every experiment drives.
//! It owns the node positions, the unit-disk adjacency (with its spatial
//! grid), and the converged R-hop neighborhood tables, and it knows how to
//! advance mobility: move nodes, rebuild connectivity, recompute tables.
//!
//! ## Incremental refresh
//!
//! A mobility tick used to recompute *every* node's neighborhood BFS. The
//! hot path is now incremental ([`Network::refresh`]):
//!
//! 1. the adjacency is rebuilt in place from the spatial grid, with the
//!    previous CSR buffer kept as a double buffer;
//! 2. the two CSR snapshots are diffed per node, yielding the *changed*
//!    nodes (endpoints of appeared/disappeared links);
//! 3. a node `u`'s R-hop BFS relaxes exactly the edges incident to nodes
//!    at depth ≤ R−1 from `u`, so its table can only have changed if some
//!    changed node lies within **R−1** hops of `u` — in the old or the new
//!    graph (if no changed node is that close in either snapshot, an
//!    induction over BFS depth shows both frontiers stay identical). The
//!    *dirty* set is therefore the union of two multi-source (R−1)-hop
//!    balls around the changed nodes, one per snapshot; at R = 0 zones are
//!    `{self}` and no link change can dirty anything;
//! 4. only the dirty neighborhoods are rebuilt, in parallel, with
//!    per-worker [`net_topology::bfs::BfsScratch`] workspaces.
//!
//! The equivalence of this path with the naive rebuild is pinned by unit
//! tests below and by the randomized `tests/topology_refresh.rs` suite.
//!
//! [`Network::refresh_full`] keeps the naive rebuild-everything path alive
//! for equivalence testing and benchmarking.

use mobility::model::MobilityModel;
use net_topology::bfs::BfsScratch;
use net_topology::geometry::{Field, Point2};
use net_topology::graph::Adjacency;
use net_topology::grid::SpatialGrid;
use net_topology::node::NodeId;
use net_topology::placement::place_uniform;
use net_topology::scenario::Scenario;
use sim_core::rng::SeedSplitter;
use sim_core::time::SimDuration;

use crate::neighborhood::NeighborhoodTables;

/// A MANET snapshot plus the machinery to evolve it under mobility.
#[derive(Clone)]
pub struct Network {
    field: Field,
    tx_range: f64,
    radius: u16,
    positions: Vec<Point2>,
    adj: Adjacency,
    /// Double buffer: the adjacency the current tables were computed from,
    /// reused as the rebuild target on the next refresh.
    prev_adj: Adjacency,
    grid: SpatialGrid,
    tables: NeighborhoodTables,
    /// Scratch for the dirty-ball traversals (reused across ticks).
    scratch: BfsScratch,
    /// Reusable buffers for the diff (changed nodes, dirty set).
    changed: Vec<NodeId>,
    dirty: Vec<NodeId>,
    dirty_flags: Vec<bool>,
}

impl Network {
    /// Instantiate a scenario: uniform random placement from `seed`, R-hop
    /// tables with zone radius `radius`.
    pub fn from_scenario(scenario: &Scenario, radius: u16, seed: u64) -> Self {
        let field = scenario.field();
        let mut rng = SeedSplitter::new(seed).stream("placement", 0);
        let positions = place_uniform(scenario.nodes, field, &mut rng);
        Self::from_positions(field, positions, scenario.tx_range, radius)
    }

    /// Build from explicit positions.
    ///
    /// # Panics
    /// Panics unless `tx_range` is positive and finite.
    pub fn from_positions(
        field: Field,
        positions: Vec<Point2>,
        tx_range: f64,
        radius: u16,
    ) -> Self {
        assert!(
            tx_range > 0.0 && tx_range.is_finite(),
            "invalid tx range {tx_range}"
        );
        let n = positions.len();
        let mut grid = SpatialGrid::new(field, tx_range);
        let adj = Adjacency::build_with_grid(&mut grid, &positions, tx_range);
        let tables = NeighborhoodTables::compute(&adj, radius);
        Network {
            field,
            tx_range,
            radius,
            positions,
            prev_adj: adj.clone(),
            adj,
            grid,
            tables,
            scratch: BfsScratch::with_capacity(n),
            changed: Vec::new(),
            dirty: Vec::new(),
            dirty_flags: vec![false; n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// The simulation field.
    pub fn field(&self) -> Field {
        self.field
    }

    /// The transmission range in meters.
    pub fn tx_range(&self) -> f64 {
        self.tx_range
    }

    /// The neighborhood radius R.
    pub fn radius(&self) -> u16 {
        self.radius
    }

    /// Node positions.
    pub fn positions(&self) -> &[Point2] {
        &self.positions
    }

    /// Mutable node positions (custom placements in tests/benches; callers
    /// must follow with [`Network::refresh`] or [`Network::refresh_full`]).
    pub fn positions_mut(&mut self) -> &mut [Point2] {
        &mut self.positions
    }

    /// The current unit-disk adjacency.
    #[inline]
    pub fn adj(&self) -> &Adjacency {
        &self.adj
    }

    /// The current converged neighborhood tables.
    #[inline]
    pub fn tables(&self) -> &NeighborhoodTables {
        &self.tables
    }

    /// Change the zone radius and recompute tables (used by R-sweeps).
    pub fn set_radius(&mut self, radius: u16) {
        if radius != self.radius {
            self.radius = radius;
            self.tables = NeighborhoodTables::compute(&self.adj, radius);
        }
    }

    /// Advance mobility by `dt`: move nodes, rebuild connectivity and
    /// incrementally refresh neighborhood tables. No-op for static models.
    pub fn advance(&mut self, model: &mut dyn MobilityModel, dt: SimDuration) {
        if model.is_static() {
            return;
        }
        model.advance(&mut self.positions, dt);
        self.refresh();
    }

    /// Move nodes *without* refreshing connectivity or tables (used to
    /// model stale state between proactive refreshes; callers must follow
    /// with [`Network::refresh`]).
    pub fn advance_positions_only(&mut self, model: &mut dyn MobilityModel, dt: SimDuration) {
        model.advance(&mut self.positions, dt);
    }

    /// Rebuild connectivity from current positions and refresh only the
    /// neighborhoods whose R-hop view could have changed (see the module
    /// docs for the dirty-set derivation). Equivalent to — and checked
    /// against — [`Network::refresh_full`].
    pub fn refresh(&mut self) {
        // The tables currently reflect `adj`; rebuild into the spare
        // buffer so old and new snapshots can be diffed.
        std::mem::swap(&mut self.adj, &mut self.prev_adj);
        self.adj
            .rebuild_with_grid(&mut self.grid, &self.positions, self.tx_range);

        let n = self.positions.len();
        self.changed.clear();
        for id in NodeId::all(n) {
            if self.adj.neighbors_changed(&self.prev_adj, id) {
                self.changed.push(id);
            }
        }
        if self.changed.is_empty() || self.radius == 0 {
            // R = 0 zones are {self}: no link change can affect a table.
            return;
        }

        // Dirty = (R−1)-hop ball around the changed nodes, in both
        // snapshots: BFS-R only relaxes edges incident to nodes at depth
        // ≤ R−1, so farther link changes cannot alter the table.
        self.dirty.clear();
        for graph in [&self.prev_adj, &self.adj] {
            let view = self.scratch.ball(graph, &self.changed, self.radius - 1);
            for &v in view.visited() {
                if !self.dirty_flags[v.index()] {
                    self.dirty_flags[v.index()] = true;
                    self.dirty.push(v);
                }
            }
        }
        self.tables.recompute_nodes(&self.adj, &self.dirty);
        for &v in &self.dirty {
            self.dirty_flags[v.index()] = false;
        }
    }

    /// Rebuild connectivity and recompute *every* neighborhood from
    /// scratch. Semantically identical to [`Network::refresh`]; kept as the
    /// reference path for equivalence tests and the bench baseline.
    pub fn refresh_full(&mut self) {
        self.adj
            .rebuild_with_grid(&mut self.grid, &self.positions, self.tx_range);
        // Keep the double buffer coherent: the tables below reflect `adj`,
        // so the next incremental diff must run against this snapshot.
        self.prev_adj.clone_from(&self.adj);
        self.tables = NeighborhoodTables::compute(&self.adj, self.radius);
    }

    /// Are `a` and `b` currently within direct radio range?
    #[inline]
    pub fn is_link(&self, a: NodeId, b: NodeId) -> bool {
        self.adj.is_neighbor(a, b)
    }

    /// Number of nodes whose adjacency changed in the last [`Network::refresh`]
    /// (observability: churn per tick).
    pub fn last_changed_count(&self) -> usize {
        self.changed.len()
    }

    /// Number of neighborhoods rebuilt by the last [`Network::refresh`]
    /// (observability: incremental-refresh effectiveness).
    pub fn last_dirty_count(&self) -> usize {
        self.dirty.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::statics::StaticModel;
    use mobility::waypoint::RandomWaypoint;
    use sim_core::rng::RngStream;

    fn small_scenario() -> Scenario {
        Scenario::new(60, 300.0, 300.0, 60.0)
    }

    #[test]
    fn from_scenario_builds_consistent_state() {
        let net = Network::from_scenario(&small_scenario(), 2, 42);
        assert_eq!(net.node_count(), 60);
        assert_eq!(net.radius(), 2);
        assert_eq!(net.tx_range(), 60.0);
        assert_eq!(net.tables().node_count(), 60);
        assert_eq!(net.positions().len(), 60);
        // tables must agree with adjacency: 1-hop members are exactly neighbors + self
        let tables_r1 = NeighborhoodTables::compute(net.adj(), 1);
        for id in NodeId::all(60) {
            assert_eq!(
                tables_r1.of(id).size(),
                net.adj().degree(id) + 1,
                "1-hop neighborhood = direct neighbors + self"
            );
        }
    }

    #[test]
    fn deterministic_instantiation() {
        let a = Network::from_scenario(&small_scenario(), 2, 7);
        let b = Network::from_scenario(&small_scenario(), 2, 7);
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.adj().link_count(), b.adj().link_count());
    }

    #[test]
    fn static_advance_is_noop() {
        let mut net = Network::from_scenario(&small_scenario(), 2, 1);
        let before = net.positions().to_vec();
        let links = net.adj().link_count();
        net.advance(&mut StaticModel, SimDuration::from_secs(10));
        assert_eq!(net.positions(), &before[..]);
        assert_eq!(net.adj().link_count(), links);
    }

    #[test]
    fn mobile_advance_updates_everything() {
        let mut net = Network::from_scenario(&small_scenario(), 2, 1);
        let before = net.positions().to_vec();
        let mut rwp =
            RandomWaypoint::new(60, net.field(), 5.0, 15.0, 0.0, RngStream::seed_from_u64(3));
        net.advance(&mut rwp, SimDuration::from_secs(5));
        assert_ne!(net.positions(), &before[..], "nodes should have moved");
        // adjacency is consistent with moved positions
        for a in NodeId::all(net.node_count()) {
            for &b in net.adj().neighbors(a) {
                let d = net.positions()[a.index()].dist(net.positions()[b.index()]);
                assert!(d <= net.tx_range() + 1e-9);
            }
        }
    }

    #[test]
    fn positions_only_then_refresh_matches_full_advance() {
        let mut a = Network::from_scenario(&small_scenario(), 2, 5);
        let mut b = Network::from_scenario(&small_scenario(), 2, 5);
        let mk = || {
            RandomWaypoint::new(
                60,
                Field::square(300.0),
                5.0,
                15.0,
                0.0,
                RngStream::seed_from_u64(9),
            )
        };
        let (mut ma, mut mb) = (mk(), mk());
        a.advance(&mut ma, SimDuration::from_secs(3));
        b.advance_positions_only(&mut mb, SimDuration::from_secs(3));
        b.refresh();
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.adj().link_count(), b.adj().link_count());
    }

    /// Compare every observable of two tables (the equivalence oracle for
    /// the incremental refresh).
    fn assert_tables_equal(a: &Network, b: &Network) {
        let n = a.node_count();
        assert_eq!(a.adj(), b.adj(), "adjacencies differ");
        for owner in NodeId::all(n) {
            let (na, nb) = (a.tables().of(owner), b.tables().of(owner));
            assert_eq!(na.size(), nb.size(), "size of {owner}");
            assert_eq!(na.edge_nodes(), nb.edge_nodes(), "edges of {owner}");
            for v in NodeId::all(n) {
                assert_eq!(na.contains(v), nb.contains(v), "membership {owner}/{v}");
                assert_eq!(na.distance(v), nb.distance(v), "distance {owner}/{v}");
            }
        }
    }

    #[test]
    fn incremental_refresh_matches_full_over_many_ticks() {
        for (seed, radius) in [(11u64, 1u16), (12, 2), (13, 3)] {
            let mut inc = Network::from_scenario(&small_scenario(), radius, seed);
            let mut full = Network::from_scenario(&small_scenario(), radius, seed);
            let mk = || {
                RandomWaypoint::new(
                    60,
                    Field::square(300.0),
                    5.0,
                    20.0,
                    0.0,
                    RngStream::seed_from_u64(seed ^ 0xabcd),
                )
            };
            let (mut mi, mut mf) = (mk(), mk());
            for _ in 0..8 {
                inc.advance_positions_only(&mut mi, SimDuration::from_secs(1));
                inc.refresh();
                full.advance_positions_only(&mut mf, SimDuration::from_secs(1));
                full.refresh_full();
                assert_tables_equal(&inc, &full);
            }
        }
    }

    #[test]
    fn refresh_with_no_movement_touches_nothing() {
        let mut net = Network::from_scenario(&small_scenario(), 2, 3);
        let links = net.adj().link_count();
        net.refresh();
        assert_eq!(net.adj().link_count(), links);
        assert!(net.changed.is_empty(), "no node may be flagged as changed");
    }

    #[test]
    fn full_then_incremental_interleave_stays_coherent() {
        let mut net = Network::from_scenario(&small_scenario(), 2, 21);
        let mut reference = Network::from_scenario(&small_scenario(), 2, 21);
        let mk = || {
            RandomWaypoint::new(
                60,
                Field::square(300.0),
                5.0,
                15.0,
                0.0,
                RngStream::seed_from_u64(5),
            )
        };
        let (mut ma, mut mb) = (mk(), mk());
        for step in 0..6 {
            net.advance_positions_only(&mut ma, SimDuration::from_secs(1));
            if step % 2 == 0 {
                net.refresh_full(); // must leave the double buffer coherent
            } else {
                net.refresh();
            }
            reference.advance_positions_only(&mut mb, SimDuration::from_secs(1));
            reference.refresh_full();
            assert_tables_equal(&net, &reference);
        }
    }

    #[test]
    fn set_radius_recomputes_tables() {
        let mut net = Network::from_scenario(&small_scenario(), 1, 11);
        let small = net.tables().mean_size();
        net.set_radius(3);
        assert_eq!(net.radius(), 3);
        let large = net.tables().mean_size();
        assert!(large > small, "bigger R must not shrink neighborhoods");
        net.set_radius(3); // no-op path
        assert_eq!(net.radius(), 3);
    }

    #[test]
    fn is_link_matches_adjacency() {
        let net = Network::from_scenario(&small_scenario(), 2, 13);
        for a in NodeId::all(net.node_count()) {
            for &b in net.adj().neighbors(a) {
                assert!(net.is_link(a, b));
            }
        }
    }
}

//! The network world: positions + connectivity + neighborhood tables.
//!
//! [`Network`] is the single mutable world object every experiment drives.
//! It owns the node positions, the unit-disk adjacency (with its spatial
//! grid), and the converged R-hop neighborhood tables, and it knows how to
//! advance mobility: move nodes, rebuild connectivity, recompute tables.
//!
//! ## Mover-driven incremental refresh
//!
//! A mobility tick used to recompute *every* node's neighborhood BFS. The
//! hot path is now mover-driven end-to-end ([`Network::advance`] →
//! [`Network::refresh_movers`]):
//!
//! 1. the mobility model reports exactly which nodes changed position
//!    (`MobilityModel::advance_reporting`);
//! 2. the adjacency is *patched* in place
//!    (`Adjacency::patch_with_grid`): the spatial grid re-buckets only
//!    reported movers that crossed a cell boundary, and only the movers
//!    plus the occupants of their old/new 3×3 cell balls have their CSR
//!    rows re-queried — the patch emits the *changed* nodes (endpoints of
//!    appeared/disappeared links) directly, with no O(N) snapshot diff,
//!    and saves each rewritten row's pre-patch content to a per-row
//!    **undo log** in the patch scratch (O(changed · degree) copies)
//!    because step 4 needs the old graph;
//! 3. a node `u`'s R-hop BFS relaxes exactly the edges incident to nodes
//!    at depth ≤ R−1 from `u`, so its table can only have changed if some
//!    changed node lies within **R−1** hops of `u` — in the old or the new
//!    graph (if no changed node is that close in either snapshot, an
//!    induction over BFS depth shows both frontiers stay identical). The
//!    *dirty* set is therefore the union of two multi-source (R−1)-hop
//!    balls around the changed nodes, one per snapshot — the old-snapshot
//!    ball runs over a *virtual* old graph ([`BfsScratch::ball_with`])
//!    that serves patched rows from the undo log and every other row from
//!    the live CSR; at R = 0 zones are `{self}` and no link change can
//!    dirty anything;
//! 4. only the dirty neighborhoods are rebuilt, in parallel, with
//!    per-worker [`net_topology::bfs::BfsScratch`] workspaces.
//!
//! Between mobility and the neighborhood refresh, no stage runs per-node
//! detection scans, range queries, diffs, or whole-CSR copies on the
//! steady-state path: every term is proportional to the movers and the
//! neighborhoods they disturb. (Earlier revisions paid one O(E)
//! double-buffer `clone_from` memcpy per tick to keep the old graph; the
//! undo log replaced it — the spare CSR buffer survives only as the
//! rebuild target of the report-free [`Network::refresh`] path.) Every
//! stage keeps its wholesale fallback (churn, slack overflow, node-count
//! change), and [`Network::pipeline_counters`] reports what each stage
//! actually did.
//!
//! The equivalence of this path with the naive rebuild is pinned by unit
//! tests below and by the randomized `tests/topology_refresh.rs` suite.
//!
//! [`Network::refresh`] keeps the report-free path (full adjacency
//! rebuild plus an all-rows diff) for callers that mutate positions
//! directly, and [`Network::refresh_full`] the naive rebuild-everything
//! reference for equivalence testing and benchmarking.

use mobility::model::MobilityModel;
use net_topology::bfs::BfsScratch;
use net_topology::geometry::{Field, Point2};
use net_topology::graph::{Adjacency, AdjacencyUpdate, PatchScratch};
use net_topology::grid::{GridUpdate, SpatialGrid};
use net_topology::node::NodeId;
use net_topology::placement::place_uniform;
use net_topology::plane::{KernelScratch, KernelStats, PositionPlane};
use net_topology::scenario::Scenario;
use sim_core::rng::SeedSplitter;
use sim_core::time::SimDuration;

use crate::neighborhood::NeighborhoodTables;

/// Per-tick observability of the mover-driven mobility→topology pipeline:
/// how much work each stage of the last refresh actually did. On the
/// steady-state path every figure is O(movers); the O(N) values appear
/// exactly when a wholesale fallback ran.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineCounters {
    /// Nodes the mobility model reported as moved (N when the caller used
    /// a report-free refresh).
    pub movers_reported: usize,
    /// Reported movers the range-annulus pre-filter proved link-inert and
    /// dropped from the patch's candidate seed (0 when the filter's profit
    /// gate stayed off or a wholesale fallback ran).
    pub movers_skipped: usize,
    /// Grid entries re-bucketed: boundary-crossing movers, or N on a full
    /// relayout.
    pub grid_rebucketed: usize,
    /// CSR adjacency rows re-queried: movers + their cell-ball neighbors,
    /// or N on a full rebuild.
    pub rows_patched: usize,
    /// Rows whose link set actually changed (the dirty-ball seeds).
    pub changed: usize,
    /// Neighborhood tables rebuilt (the dirty-ball members).
    pub dirty: usize,
    /// Did any wholesale fallback run (grid relayout, adjacency rebuild,
    /// or a report-free refresh)?
    pub full_fallback: bool,
    /// Candidate lanes classified by the two-phase f32 distance kernel
    /// (0 when the refresh ran a scalar path).
    pub kernel_lanes: u64,
    /// Kernel lanes that fell in the conservative error band and were
    /// resolved by the exact f64 test; `kernel_lanes - kernel_exact`
    /// lanes were decided purely in f32.
    pub kernel_exact: u64,
}

/// Which neighborhood tables the last refresh rebuilt — the invalidation
/// feed for state layered over the tables (card-core's route-hint cache
/// evicts the hints held at dirty nodes). The incremental paths retain the
/// exact dirty node list; wholesale fallbacks rebuilt everything without
/// keeping a list and report [`DirtyReport::All`].
#[derive(Clone, Copy, Debug)]
pub enum DirtyReport<'a> {
    /// Exactly these nodes' tables were rebuilt (possibly none).
    Exact(&'a [NodeId]),
    /// Every table was rebuilt (wholesale fallback).
    All,
}

/// A MANET snapshot plus the machinery to evolve it under mobility.
#[derive(Clone)]
pub struct Network {
    field: Field,
    tx_range: f64,
    radius: u16,
    positions: Vec<Point2>,
    adj: Adjacency,
    /// Spare CSR buffer for the report-free [`Network::refresh`] path: at
    /// entry it is swapped in as the rebuild target while the pre-refresh
    /// graph (which the tables reflect) becomes the diff baseline. The
    /// mover-driven path never copies into it — the old graph is
    /// reconstructed from the patch's per-row undo log instead — so its
    /// content between calls is unspecified.
    prev_adj: Adjacency,
    grid: SpatialGrid,
    /// SoA f32 mirror of `positions` feeding the two-phase distance
    /// kernels; kept coherent by the kernel refresh paths (mover lanes on
    /// patches, wholesale on rebuilds).
    plane: PositionPlane,
    /// Per-network kernel workspace (lane mirror, d² lanes, stats).
    kernel_scratch: KernelScratch,
    tables: NeighborhoodTables,
    /// Scratch for the dirty-ball traversals (reused across ticks).
    scratch: BfsScratch,
    /// Reusable buffers for the diff (changed nodes, dirty set).
    changed: Vec<NodeId>,
    dirty: Vec<NodeId>,
    dirty_flags: Vec<bool>,
    /// Workspace for the CSR adjacency patch (reused across ticks); also
    /// holds the per-row undo log the old-graph dirty ball reads.
    patch_scratch: PatchScratch,
    /// Sorted `(row, undo index)` lookup for the old-graph neighbor view
    /// (rebuilt per tick from the patch's undo log; reused buffer).
    undo_index: Vec<(NodeId, u32)>,
    /// Reusable buffer for the mobility model's mover report.
    movers_buf: Vec<NodeId>,
    /// Each node's position as of the last refresh that proved (or
    /// rebuilt) its link state — the displacement baseline for the
    /// range-annulus pre-filter in [`Network::refresh_movers`].
    prev_positions: Vec<Point2>,
    /// Per-mover displacement since `prev_positions` (reused buffer).
    mover_delta: Vec<f64>,
    /// Movers surviving the annulus pre-filter (reused buffer).
    active_buf: Vec<NodeId>,
    /// What the last refresh actually did, stage by stage.
    counters: PipelineCounters,
}

impl Network {
    /// Instantiate a scenario: uniform random placement from `seed`, R-hop
    /// tables with zone radius `radius`.
    pub fn from_scenario(scenario: &Scenario, radius: u16, seed: u64) -> Self {
        let field = scenario.field();
        let mut rng = SeedSplitter::new(seed).stream("placement", 0);
        let positions = place_uniform(scenario.nodes, field, &mut rng);
        Self::from_positions(field, positions, scenario.tx_range, radius)
    }

    /// Build from explicit positions.
    ///
    /// # Panics
    /// Panics unless `tx_range` is positive and finite.
    pub fn from_positions(
        field: Field,
        positions: Vec<Point2>,
        tx_range: f64,
        radius: u16,
    ) -> Self {
        assert!(
            tx_range > 0.0 && tx_range.is_finite(),
            "invalid tx range {tx_range}"
        );
        let n = positions.len();
        let mut grid = SpatialGrid::new(field, tx_range);
        let mut plane = PositionPlane::new();
        let mut kernel_scratch = KernelScratch::new();
        let mut adj = Adjacency::with_nodes(n);
        adj.rebuild_with_grid_parallel(
            &mut grid,
            &mut plane,
            &positions,
            tx_range,
            &mut kernel_scratch,
        );
        let tables = NeighborhoodTables::compute(&adj, radius);
        Network {
            field,
            tx_range,
            radius,
            prev_positions: positions.clone(),
            positions,
            prev_adj: adj.clone(),
            adj,
            grid,
            plane,
            kernel_scratch,
            tables,
            scratch: BfsScratch::with_capacity(n),
            changed: Vec::new(),
            dirty: Vec::new(),
            dirty_flags: vec![false; n],
            patch_scratch: PatchScratch::new(),
            undo_index: Vec::new(),
            movers_buf: Vec::new(),
            mover_delta: Vec::new(),
            active_buf: Vec::new(),
            counters: PipelineCounters::default(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// The simulation field.
    pub fn field(&self) -> Field {
        self.field
    }

    /// The transmission range in meters.
    pub fn tx_range(&self) -> f64 {
        self.tx_range
    }

    /// The neighborhood radius R.
    pub fn radius(&self) -> u16 {
        self.radius
    }

    /// Node positions.
    pub fn positions(&self) -> &[Point2] {
        &self.positions
    }

    /// Mutable node positions (custom placements in tests/benches; callers
    /// must follow with [`Network::refresh`] or [`Network::refresh_full`]).
    pub fn positions_mut(&mut self) -> &mut [Point2] {
        &mut self.positions
    }

    /// The current unit-disk adjacency.
    #[inline]
    pub fn adj(&self) -> &Adjacency {
        &self.adj
    }

    /// The current converged neighborhood tables.
    #[inline]
    pub fn tables(&self) -> &NeighborhoodTables {
        &self.tables
    }

    /// Change the zone radius and recompute tables (used by R-sweeps).
    pub fn set_radius(&mut self, radius: u16) {
        if radius != self.radius {
            self.radius = radius;
            self.tables = NeighborhoodTables::compute(&self.adj, radius);
        }
    }

    /// Advance mobility by `dt`: move nodes, patch connectivity and
    /// incrementally refresh neighborhood tables — all driven by the
    /// mobility model's mover report, so the steady-state tick does work
    /// proportional to actual motion. No-op for static models.
    ///
    /// The patch trusts the report: adjacency and tables must be in sync
    /// with the current positions when this is called. Callers that
    /// mutate positions directly ([`Network::positions_mut`],
    /// [`Network::advance_positions_only`]) must run
    /// [`Network::refresh`] first, as those APIs document — `advance` no
    /// longer rebuilds wholesale, so it cannot heal staleness smuggled in
    /// outside a mover report.
    pub fn advance(&mut self, model: &mut dyn MobilityModel, dt: SimDuration) {
        if model.is_static() {
            return;
        }
        let mut movers = std::mem::take(&mut self.movers_buf);
        model.advance_reporting(&mut self.positions, dt, &mut movers);
        self.refresh_movers(&movers);
        self.movers_buf = movers;
    }

    /// Move nodes *without* refreshing connectivity or tables (used to
    /// model stale state between proactive refreshes; callers must follow
    /// with [`Network::refresh`]).
    pub fn advance_positions_only(&mut self, model: &mut dyn MobilityModel, dt: SimDuration) {
        model.advance(&mut self.positions, dt);
    }

    /// Refresh connectivity and neighborhood tables given the set of nodes
    /// whose positions changed since the last refresh (`movers`, typically
    /// a `MobilityModel::advance_reporting` report — a superset is sound).
    /// The adjacency is patched in place (rows re-queried only around
    /// movers), the patch's changed-row output seeds the dirty
    /// neighborhood balls directly, and the old-graph ball reads the
    /// patch's per-row undo log — so no stage scans all N nodes or copies
    /// the CSR. Equivalent to — and checked against —
    /// [`Network::refresh_full`].
    pub fn refresh_movers(&mut self, movers: &[NodeId]) {
        let n = self.positions.len();
        if self.adj.node_count() != n {
            self.refresh();
            self.counters.movers_reported = movers.len();
            return;
        }
        if movers.is_empty() {
            // Nothing moved (the report is a superset of position
            // changes), so grid, adjacency and tables are all already
            // exact — the tick is O(1).
            self.counters = PipelineCounters {
                movers_reported: 0,
                ..PipelineCounters::default()
            };
            self.changed.clear();
            self.dirty.clear();
            return;
        }
        // Range-annulus pre-filter: drop reported movers whose
        // displacement provably left every incident link's state alone,
        // so the patch only re-queries rows around movers that could
        // matter. Off (active = movers verbatim) unless its profit gate
        // expects the skips to pay for the filtering scan.
        let mut active_buf = std::mem::take(&mut self.active_buf);
        let engaged = self.annulus_prefilter(movers, &mut active_buf);
        let active: &[NodeId] = if engaged { &active_buf } else { movers };
        let skipped = movers.len() - active.len();
        if !Adjacency::patch_viable(n, active.len()) {
            // The churn fallback would rebuild wholesale anyway — take the
            // report-free path directly: its all-rows diff recovers the
            // changed set the patch can no longer report.
            self.active_buf = active_buf;
            self.refresh();
            self.counters.movers_reported = movers.len();
            return;
        }
        self.counters = PipelineCounters {
            movers_reported: movers.len(),
            movers_skipped: skipped,
            ..PipelineCounters::default()
        };
        // The tables currently reflect `adj`; patch it in place. Old rows
        // live on in the patch scratch's undo log — no snapshot copy.
        // The grid still re-buckets the *full* report (residency must
        // track every position change), only the candidate seeding is
        // restricted to the active movers. Row re-queries run through the
        // two-phase f32 kernel against the SoA plane (mover lanes are
        // refreshed first); link decisions are bit-identical to the
        // scalar f64 scan.
        self.kernel_scratch.stats = KernelStats::default();
        let outcome = self.adj.patch_with_grid_kernel(
            &mut self.grid,
            &mut self.plane,
            &self.positions,
            self.tx_range,
            movers,
            active,
            &mut self.changed,
            &mut self.patch_scratch,
            &mut self.kernel_scratch,
        );
        self.active_buf = active_buf;
        self.counters.kernel_lanes = self.kernel_scratch.stats.lanes;
        self.counters.kernel_exact = self.kernel_scratch.stats.exact_checks;
        match outcome {
            AdjacencyUpdate::Patched {
                rows_patched, grid, ..
            } => {
                self.counters.rows_patched = rows_patched;
                self.record_grid_update(grid);
                self.recompute_dirty_neighborhoods_from_undo();
            }
            AdjacencyUpdate::Full { grid } => {
                // Wholesale rebuild ran inside the patch (grid out of
                // sync): the pre-patch graph is gone and nothing was
                // logged, so rebuild every table.
                self.counters.full_fallback = true;
                self.counters.rows_patched = n;
                self.record_grid_update(grid);
                self.tables = NeighborhoodTables::compute(&self.adj, self.radius);
                self.changed.clear();
                self.dirty.clear();
                self.counters.changed = n;
                self.counters.dirty = n;
            }
        }
        // Every reported mover now has a refreshed (or skip-proven) link
        // state at its current position — re-baseline its displacement.
        for &m in movers {
            self.prev_positions[m.index()] = self.positions[m.index()];
        }
    }

    /// The range-annulus pre-filter: copy into `out` the subset of
    /// `movers` that must stay in the patch's candidate seed, returning
    /// whether the filter engaged at all (`false` leaves `out` untouched
    /// and the caller uses the full report).
    ///
    /// A mover `j` may be dropped only with a *proof* that none of its
    /// incident links changed state since `prev_positions`. Let δ_j be
    /// `j`'s displacement since its baseline and Δ the maximum
    /// displacement in this report (non-reported nodes have δ = 0). A
    /// link `(j, m)` changes state only if `tx_range` lies between its
    /// old and new length, which forces the *new* length within
    /// `δ_j + δ_m ≤ δ_j + Δ` of `tx_range` — so it suffices to check the
    /// annulus `|dist − tx_range| ≤ δ_j + Δ` around `j`'s new position
    /// for occupants. Candidates are enumerated from the 3×3 cell ball at
    /// `j`'s new position *before* the grid re-buckets this tick, so an
    /// occupant's bucketed position lags its current one by at most Δ;
    /// the enumeration is complete when
    /// `tx_range + (δ_j + Δ) + Δ ≤ ball_coverage(pos_j)` (clamped border
    /// positions report a small or negative coverage and simply stay
    /// active). An empty annulus means no link ends near the range
    /// boundary: `j` is inert. δ_j = 0 movers are always inert.
    ///
    /// The profit gate estimates the skip fraction from the annulus-hit
    /// Poisson rate λ = density · 8π · tx_range · Δ (area of the width-4Δ
    /// annulus at radius `tx_range`, halved odds twice for the two-sided
    /// |·| test — an engineering estimate, not part of the soundness
    /// argument): when the report is already patch-viable the filter must
    /// expect to skip ≥ 25 % to bother; when it is *not* viable the
    /// filter engages only if the expected survivors fit well inside the
    /// patch budget, since turning a wholesale tick into a patch tick is
    /// worth the scan. Wrong guesses only cost time: survivors above
    /// budget still take the wholesale fallback.
    fn annulus_prefilter(&mut self, movers: &[NodeId], out: &mut Vec<NodeId>) -> bool {
        const EPS: f64 = 1e-6;
        let n = self.positions.len();
        self.mover_delta.clear();
        let mut max_delta = 0.0f64;
        for &m in movers {
            let d = self.prev_positions[m.index()].dist(self.positions[m.index()]);
            self.mover_delta.push(d);
            max_delta = max_delta.max(d);
        }
        if max_delta == 0.0 {
            // A pure-jiggle report: every baseline already matches the
            // current position, so no link can have changed.
            out.clear();
            return true;
        }
        let density = n as f64 / self.field.area();
        let lambda = density * 8.0 * std::f64::consts::PI * self.tx_range * max_delta;
        let p_skip = (-lambda).exp();
        let engage = if Adjacency::patch_viable(n, movers.len()) {
            p_skip >= 0.25
        } else {
            movers.len() as f64 * (1.0 - p_skip) <= 0.75 * Adjacency::patch_budget(n) as f64
        };
        if !engage {
            return false;
        }
        out.clear();
        let range = self.tx_range;
        let (grid, positions) = (&self.grid, &self.positions);
        for (k, &m) in movers.iter().enumerate() {
            let delta = self.mover_delta[k];
            if delta == 0.0 {
                continue;
            }
            let p = positions[m.index()];
            let slack = delta + max_delta;
            if range + slack + max_delta + EPS > grid.ball_coverage(p) {
                out.push(m);
                continue;
            }
            let mut pinned = false;
            grid.for_each_in_cell_ball(grid.cell_at(p), |nb| {
                if nb != m && !pinned {
                    pinned = (positions[nb.index()].dist(p) - range).abs() <= slack + EPS;
                }
            });
            if pinned {
                out.push(m);
            }
        }
        true
    }

    /// O(N) snapshot diff: collect into `self.changed` every node whose
    /// row differs between `prev_adj` and `adj` (the wholesale-path
    /// replacement for the patch's changed-row report).
    fn diff_changed_rows(&mut self) {
        self.changed.clear();
        for id in NodeId::all(self.positions.len()) {
            if self.adj.neighbors_changed(&self.prev_adj, id) {
                self.changed.push(id);
            }
        }
    }

    /// Fold a grid outcome into the tick counters: incremental updates
    /// report their boundary crossers, a full relayout reports N and
    /// flags the fallback.
    fn record_grid_update(&mut self, grid: GridUpdate) {
        self.counters.grid_rebucketed = match grid {
            GridUpdate::Incremental { movers } => movers,
            GridUpdate::Full => {
                self.counters.full_fallback = true;
                self.positions.len()
            }
        };
    }

    /// Rebuild connectivity from current positions and refresh only the
    /// neighborhoods whose R-hop view could have changed (see the module
    /// docs for the dirty-set derivation). This is the *report-free* path
    /// — the adjacency is rebuilt wholesale and diffed over all N rows —
    /// for callers that mutated positions directly
    /// ([`Network::positions_mut`], [`Network::advance_positions_only`]).
    /// Equivalent to — and checked against — [`Network::refresh_full`].
    pub fn refresh(&mut self) {
        let n = self.positions.len();
        self.counters = PipelineCounters {
            movers_reported: n,
            rows_patched: n,
            full_fallback: true,
            ..PipelineCounters::default()
        };
        // The tables currently reflect `adj`; rebuild into the spare
        // buffer so old and new snapshots can be diffed. The rebuild is
        // the kernel/parallel path (canonical-CSR-identical to the serial
        // scalar rebuild).
        std::mem::swap(&mut self.adj, &mut self.prev_adj);
        self.kernel_scratch.stats = KernelStats::default();
        let grid_update = self.adj.rebuild_with_grid_parallel(
            &mut self.grid,
            &mut self.plane,
            &self.positions,
            self.tx_range,
            &mut self.kernel_scratch,
        );
        self.counters.kernel_lanes = self.kernel_scratch.stats.lanes;
        self.counters.kernel_exact = self.kernel_scratch.stats.exact_checks;
        self.record_grid_update(grid_update);
        self.diff_changed_rows();
        self.recompute_dirty_neighborhoods();
        self.prev_positions.clone_from(&self.positions);
    }

    /// Dirty-ball tail of the mover-driven patch path: same derivation as
    /// [`Network::recompute_dirty_neighborhoods`], but the old-graph ball
    /// walks a *virtual* snapshot — patched rows served from the undo log
    /// recorded by [`Adjacency::patch_with_grid`], every other row from
    /// the live CSR — so no O(E) double-buffer copy is ever made.
    fn recompute_dirty_neighborhoods_from_undo(&mut self) {
        let Network {
            adj,
            tables,
            scratch,
            changed,
            dirty,
            dirty_flags,
            patch_scratch,
            undo_index,
            radius,
            counters,
            ..
        } = self;
        // Sorted (row → undo entry) lookup; the log holds exactly the
        // changed rows, so this is O(changed · log changed) to build and
        // O(log changed) per neighbor-slice fetch during the ball walk.
        undo_index.clear();
        undo_index.extend((0..patch_scratch.undo_count()).map(|k| {
            let (node, _) = patch_scratch.undo_entry(k);
            (node, k as u32)
        }));
        undo_index.sort_unstable_by_key(|&(v, _)| v);
        Self::dirty_ball_tail(
            adj,
            tables,
            scratch,
            changed,
            dirty,
            dirty_flags,
            counters,
            *radius,
            |v| match undo_index.binary_search_by_key(&v, |&(u, _)| u) {
                Ok(k) => patch_scratch.undo_entry(undo_index[k].1 as usize).1,
                Err(_) => adj.neighbors(v),
            },
        );
    }

    /// Shared tail of the report-free refresh paths: seed the (R−1)-hop
    /// dirty balls from `self.changed` in both snapshots and rebuild
    /// exactly those neighborhoods in parallel. The old snapshot here is
    /// `prev_adj` (the pre-swap graph the tables reflect).
    fn recompute_dirty_neighborhoods(&mut self) {
        let Network {
            adj,
            prev_adj,
            tables,
            scratch,
            changed,
            dirty,
            dirty_flags,
            radius,
            counters,
            ..
        } = self;
        Self::dirty_ball_tail(
            adj,
            tables,
            scratch,
            changed,
            dirty,
            dirty_flags,
            counters,
            *radius,
            |v| prev_adj.neighbors(v),
        );
    }

    /// The dirty-set derivation and rebuild shared by both refresh tails.
    ///
    /// Dirty = union of the (R−1)-hop balls around the changed nodes in
    /// the old and the new graph: a node's BFS-R relaxes only edges
    /// incident to depth ≤ R−1, so farther link changes cannot alter its
    /// table. The old graph is abstract — `old_neighbors(v)` must return
    /// `v`'s pre-refresh neighbor slice, however the caller keeps it
    /// (undo-log overlay or the `prev_adj` snapshot). At R = 0 zones are
    /// `{self}` and no link change can dirty anything.
    #[allow(clippy::too_many_arguments)] // exclusively-borrowed field set
    fn dirty_ball_tail<'g>(
        adj: &Adjacency,
        tables: &mut NeighborhoodTables,
        scratch: &mut BfsScratch,
        changed: &[NodeId],
        dirty: &mut Vec<NodeId>,
        dirty_flags: &mut [bool],
        counters: &mut PipelineCounters,
        radius: u16,
        old_neighbors: impl Fn(NodeId) -> &'g [NodeId],
    ) {
        counters.changed = changed.len();
        dirty.clear();
        counters.dirty = 0;
        if changed.is_empty() || radius == 0 {
            return;
        }
        let mut collect = |view: net_topology::bfs::BfsView<'_>| {
            for &v in view.visited() {
                if !dirty_flags[v.index()] {
                    dirty_flags[v.index()] = true;
                    dirty.push(v);
                }
            }
        };
        collect(scratch.ball_with(adj.node_count(), old_neighbors, changed, radius - 1));
        collect(scratch.ball(adj, changed, radius - 1));
        tables.recompute_nodes(adj, dirty);
        for &v in dirty.iter() {
            dirty_flags[v.index()] = false;
        }
        counters.dirty = dirty.len();
    }

    /// Rebuild connectivity and recompute *every* neighborhood from
    /// scratch. Semantically identical to [`Network::refresh`]; kept as the
    /// reference path for equivalence tests and the bench baseline.
    pub fn refresh_full(&mut self) {
        let n = self.positions.len();
        let grid_update =
            self.adj
                .rebuild_with_grid(&mut self.grid, &self.positions, self.tx_range);
        // This is the scalar reference path (no kernel), but the SoA
        // plane must still track the positions so a later kernel patch
        // finds coherent lanes.
        self.plane.rebuild(&self.positions);
        self.kernel_scratch.stats = KernelStats::default();
        // No double-buffer upkeep needed: `refresh` swaps the current
        // graph in as its own diff baseline before rebuilding, so the
        // spare buffer's content between calls is free to be stale.
        self.tables = NeighborhoodTables::compute(&self.adj, self.radius);
        self.counters = PipelineCounters {
            movers_reported: n,
            rows_patched: n,
            changed: n,
            dirty: n,
            full_fallback: true,
            ..PipelineCounters::default()
        };
        self.record_grid_update(grid_update);
        self.changed.clear();
        self.dirty.clear();
        self.prev_positions.clone_from(&self.positions);
    }

    /// Are `a` and `b` currently within direct radio range?
    #[inline]
    pub fn is_link(&self, a: NodeId, b: NodeId) -> bool {
        self.adj.is_neighbor(a, b)
    }

    /// Number of nodes whose adjacency changed in the last refresh
    /// (observability: churn per tick).
    pub fn last_changed_count(&self) -> usize {
        self.counters.changed
    }

    /// Number of neighborhoods rebuilt by the last refresh
    /// (observability: incremental-refresh effectiveness).
    pub fn last_dirty_count(&self) -> usize {
        self.counters.dirty
    }

    /// Stage-by-stage work counters of the last refresh (mover report,
    /// grid re-bucketing, CSR patching, dirty neighborhoods, kernel
    /// lane/exact-check volumes).
    pub fn pipeline_counters(&self) -> PipelineCounters {
        self.counters
    }

    /// The SoA f32 position mirror the distance kernels read (coherence
    /// with [`Network::positions`] is pinned by the refresh paths; exposed
    /// for the equivalence test suite).
    pub fn position_plane(&self) -> &PositionPlane {
        &self.plane
    }

    /// Sampled audit of the spatial grid's residency contract (see
    /// [`SpatialGrid::audit_residency`]): checks `samples` nodes — a
    /// rotating window across calls — against their current positions and
    /// returns the number of stale buckets found. A non-zero count means a
    /// mobility model under-reported its movers to
    /// [`Network::refresh_movers`]; this is the cheap release-build
    /// counterpart of the debug-only sweep inside `update_reported`.
    pub fn audit_grid_residency(&mut self, samples: usize) -> usize {
        self.grid.audit_residency(&self.positions, samples)
    }

    /// Targeted grid-residency audit of exactly `nodes` (see
    /// [`SpatialGrid::audit_nodes`]): crash and rejoin events leave a
    /// node's position untouched, so the fault plane audits the affected
    /// nodes directly — extending the sampled release audit to every
    /// tombstoned/rejoined site without advancing its rotating cursor.
    pub fn audit_grid_residency_nodes(&self, nodes: &[NodeId]) -> usize {
        self.grid.audit_nodes(&self.positions, nodes)
    }

    /// The last refresh's dirty set, for invalidating caches derived from
    /// the neighborhood tables. `Exact` whenever the refresh retained the
    /// per-node list (all incremental paths, including the no-motion
    /// tick); a wholesale rebuild that cleared the list reports `All`.
    pub fn dirty_report(&self) -> DirtyReport<'_> {
        if self.counters.dirty == self.dirty.len() {
            DirtyReport::Exact(&self.dirty)
        } else {
            DirtyReport::All
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::statics::StaticModel;
    use mobility::waypoint::RandomWaypoint;
    use sim_core::rng::RngStream;

    fn small_scenario() -> Scenario {
        Scenario::new(60, 300.0, 300.0, 60.0)
    }

    #[test]
    fn from_scenario_builds_consistent_state() {
        let net = Network::from_scenario(&small_scenario(), 2, 42);
        assert_eq!(net.node_count(), 60);
        assert_eq!(net.radius(), 2);
        assert_eq!(net.tx_range(), 60.0);
        assert_eq!(net.tables().node_count(), 60);
        assert_eq!(net.positions().len(), 60);
        // tables must agree with adjacency: 1-hop members are exactly neighbors + self
        let tables_r1 = NeighborhoodTables::compute(net.adj(), 1);
        for id in NodeId::all(60) {
            assert_eq!(
                tables_r1.of(id).size(),
                net.adj().degree(id) + 1,
                "1-hop neighborhood = direct neighbors + self"
            );
        }
    }

    #[test]
    fn deterministic_instantiation() {
        let a = Network::from_scenario(&small_scenario(), 2, 7);
        let b = Network::from_scenario(&small_scenario(), 2, 7);
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.adj().link_count(), b.adj().link_count());
    }

    #[test]
    fn static_advance_is_noop() {
        let mut net = Network::from_scenario(&small_scenario(), 2, 1);
        let before = net.positions().to_vec();
        let links = net.adj().link_count();
        net.advance(&mut StaticModel, SimDuration::from_secs(10));
        assert_eq!(net.positions(), &before[..]);
        assert_eq!(net.adj().link_count(), links);
    }

    #[test]
    fn mobile_advance_updates_everything() {
        let mut net = Network::from_scenario(&small_scenario(), 2, 1);
        let before = net.positions().to_vec();
        let mut rwp =
            RandomWaypoint::new(60, net.field(), 5.0, 15.0, 0.0, RngStream::seed_from_u64(3));
        net.advance(&mut rwp, SimDuration::from_secs(5));
        assert_ne!(net.positions(), &before[..], "nodes should have moved");
        // adjacency is consistent with moved positions
        for a in NodeId::all(net.node_count()) {
            for &b in net.adj().neighbors(a) {
                let d = net.positions()[a.index()].dist(net.positions()[b.index()]);
                assert!(d <= net.tx_range() + 1e-9);
            }
        }
    }

    #[test]
    fn positions_only_then_refresh_matches_full_advance() {
        let mut a = Network::from_scenario(&small_scenario(), 2, 5);
        let mut b = Network::from_scenario(&small_scenario(), 2, 5);
        let mk = || {
            RandomWaypoint::new(
                60,
                Field::square(300.0),
                5.0,
                15.0,
                0.0,
                RngStream::seed_from_u64(9),
            )
        };
        let (mut ma, mut mb) = (mk(), mk());
        a.advance(&mut ma, SimDuration::from_secs(3));
        b.advance_positions_only(&mut mb, SimDuration::from_secs(3));
        b.refresh();
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.adj().link_count(), b.adj().link_count());
    }

    /// Compare every observable of two tables (the equivalence oracle for
    /// the incremental refresh).
    fn assert_tables_equal(a: &Network, b: &Network) {
        let n = a.node_count();
        assert_eq!(a.adj(), b.adj(), "adjacencies differ");
        for owner in NodeId::all(n) {
            let (na, nb) = (a.tables().of(owner), b.tables().of(owner));
            assert_eq!(na.size(), nb.size(), "size of {owner}");
            assert_eq!(na.edge_nodes(), nb.edge_nodes(), "edges of {owner}");
            for v in NodeId::all(n) {
                assert_eq!(na.contains(v), nb.contains(v), "membership {owner}/{v}");
                assert_eq!(na.distance(v), nb.distance(v), "distance {owner}/{v}");
            }
        }
    }

    #[test]
    fn incremental_refresh_matches_full_over_many_ticks() {
        for (seed, radius) in [(11u64, 1u16), (12, 2), (13, 3)] {
            let mut inc = Network::from_scenario(&small_scenario(), radius, seed);
            let mut full = Network::from_scenario(&small_scenario(), radius, seed);
            let mk = || {
                RandomWaypoint::new(
                    60,
                    Field::square(300.0),
                    5.0,
                    20.0,
                    0.0,
                    RngStream::seed_from_u64(seed ^ 0xabcd),
                )
            };
            let (mut mi, mut mf) = (mk(), mk());
            for _ in 0..8 {
                inc.advance_positions_only(&mut mi, SimDuration::from_secs(1));
                inc.refresh();
                full.advance_positions_only(&mut mf, SimDuration::from_secs(1));
                full.refresh_full();
                assert_tables_equal(&inc, &full);
            }
        }
    }

    #[test]
    fn refresh_with_no_movement_touches_nothing() {
        let mut net = Network::from_scenario(&small_scenario(), 2, 3);
        let links = net.adj().link_count();
        net.refresh();
        assert_eq!(net.adj().link_count(), links);
        assert!(net.changed.is_empty(), "no node may be flagged as changed");
    }

    #[test]
    fn full_then_incremental_interleave_stays_coherent() {
        let mut net = Network::from_scenario(&small_scenario(), 2, 21);
        let mut reference = Network::from_scenario(&small_scenario(), 2, 21);
        let mk = || {
            RandomWaypoint::new(
                60,
                Field::square(300.0),
                5.0,
                15.0,
                0.0,
                RngStream::seed_from_u64(5),
            )
        };
        let (mut ma, mut mb) = (mk(), mk());
        for step in 0..6 {
            net.advance_positions_only(&mut ma, SimDuration::from_secs(1));
            if step % 2 == 0 {
                net.refresh_full(); // interleaving must not confuse refresh()
            } else {
                net.refresh();
            }
            reference.advance_positions_only(&mut mb, SimDuration::from_secs(1));
            reference.refresh_full();
            assert_tables_equal(&net, &reference);
        }
    }

    #[test]
    fn mover_driven_advance_matches_full_over_many_ticks() {
        // The production path (advance → advance_reporting →
        // refresh_movers → patch) against the rebuild-everything
        // reference, per tick, across the four mobility models.
        use mobility::group::GroupMobility;
        use mobility::walk::RandomWalk;
        let field = Field::square(300.0);
        let models: Vec<(Box<dyn MobilityModel>, Box<dyn MobilityModel>)> = vec![
            (
                Box::new(RandomWalk::new(
                    60,
                    field,
                    0.5,
                    8.0,
                    2.0,
                    RngStream::seed_from_u64(31),
                )),
                Box::new(RandomWalk::new(
                    60,
                    field,
                    0.5,
                    8.0,
                    2.0,
                    RngStream::seed_from_u64(31),
                )),
            ),
            (
                Box::new(RandomWaypoint::new(
                    60,
                    field,
                    1.0,
                    15.0,
                    0.5,
                    RngStream::seed_from_u64(32),
                )),
                Box::new(RandomWaypoint::new(
                    60,
                    field,
                    1.0,
                    15.0,
                    0.5,
                    RngStream::seed_from_u64(32),
                )),
            ),
            (
                Box::new(GroupMobility::new(
                    60,
                    field,
                    4,
                    1.0,
                    8.0,
                    40.0,
                    RngStream::seed_from_u64(33),
                )),
                Box::new(GroupMobility::new(
                    60,
                    field,
                    4,
                    1.0,
                    8.0,
                    40.0,
                    RngStream::seed_from_u64(33),
                )),
            ),
        ];
        for (mut mi, mut mf) in models {
            let mut inc = Network::from_scenario(&small_scenario(), 2, 44);
            let mut full = Network::from_scenario(&small_scenario(), 2, 44);
            for _ in 0..8 {
                inc.advance(mi.as_mut(), SimDuration::from_millis(500));
                full.advance_positions_only(mf.as_mut(), SimDuration::from_millis(500));
                full.refresh_full();
                assert_tables_equal(&inc, &full);
                assert_eq!(
                    inc.adj().canonical_csr(),
                    full.adj().canonical_csr(),
                    "patched CSR must canonicalize identically to a rebuild"
                );
            }
        }
    }

    #[test]
    fn pipeline_counters_reflect_motion() {
        let mut net = Network::from_scenario(&small_scenario(), 2, 17);
        // A static model never even reaches the refresh.
        net.advance(&mut StaticModel, SimDuration::from_secs(1));
        // A full-motion tick: everyone moves far enough that the annulus
        // gate predicts too few skips to rescue the tick from churn.
        let mut rwp =
            RandomWaypoint::new(60, net.field(), 0.5, 1.0, 0.0, RngStream::seed_from_u64(2));
        net.advance(&mut rwp, SimDuration::from_secs(1));
        let c = net.pipeline_counters();
        assert_eq!(c.movers_reported, 60, "zero-pause RWP moves everyone");
        assert!(
            c.full_fallback,
            "60 far-moving movers of 60 nodes must trip the churn fallback"
        );
        assert_eq!(c.movers_skipped, 0, "fallback ticks skip nothing");
        // Move only one node, via the explicit mover-report path. The
        // annulus pre-filter may prove the 1 m hop link-inert (then it is
        // counted skipped and no row is touched) or keep it — either way
        // the tick stays local.
        let p = net.positions()[5];
        net.positions_mut()[5] = Point2::new(p.x + 1.0, p.y);
        net.refresh_movers(&[NodeId::new(5)]);
        let c = net.pipeline_counters();
        assert_eq!(c.movers_reported, 1);
        assert!(!c.full_fallback, "one mover must stay on the patch path");
        assert!(
            c.rows_patched + c.movers_skipped >= 1 && c.rows_patched < 60,
            "patched rows ({}) must be local, not whole-network",
            c.rows_patched
        );
        assert_eq!(c.changed, net.last_changed_count());
        assert_eq!(c.dirty, net.last_dirty_count());
        // No motion at all: nothing to do anywhere.
        net.refresh_movers(&[]);
        let c = net.pipeline_counters();
        assert_eq!(
            (c.movers_reported, c.rows_patched, c.changed, c.dirty),
            (0, 0, 0, 0)
        );
        assert!(!c.full_fallback);
    }

    #[test]
    fn annulus_filter_skips_isolated_jiggle_exactly() {
        // A at a cell center with one deep-inside-range neighbor, nothing
        // anywhere near the range annulus: a half-meter hop is provably
        // link-inert and the tick must touch zero rows.
        let field = Field::square(300.0);
        let pos = vec![
            Point2::new(75.0, 75.0),
            Point2::new(100.0, 75.0),
            Point2::new(200.0, 200.0),
        ];
        let mut net = Network::from_positions(field, pos, 50.0, 2);
        net.positions_mut()[0] = Point2::new(75.5, 75.0);
        net.refresh_movers(&[NodeId::new(0)]);
        let c = net.pipeline_counters();
        assert_eq!(c.movers_skipped, 1, "{c:?}");
        assert_eq!(c.rows_patched, 0, "{c:?}");
        assert_eq!((c.changed, c.dirty), (0, 0));
        assert!(!c.full_fallback);
        let reference = Network::from_positions(field, net.positions().to_vec(), 50.0, 2);
        assert_tables_equal(&net, &reference);
        // The skip re-baselined node 0: a second hop that breaks the
        // link to node 1 must be kept and patched.
        net.positions_mut()[0] = Point2::new(45.0, 75.0);
        net.refresh_movers(&[NodeId::new(0)]);
        let reference = Network::from_positions(field, net.positions().to_vec(), 50.0, 2);
        assert_tables_equal(&net, &reference);
    }

    #[test]
    fn annulus_filter_equivalence_under_creep_motion() {
        // Sub-decimeter ticks engage the profit gate even with everyone
        // reported moving; the filtered patch must stay bit-identical to
        // the rebuild-everything reference, and the filter must actually
        // be doing something (skips observed).
        use mobility::walk::RandomWalk;
        let mk = || {
            RandomWalk::new(
                60,
                Field::square(300.0),
                0.02,
                0.05,
                5.0,
                RngStream::seed_from_u64(77),
            )
        };
        let (mut mi, mut mf) = (mk(), mk());
        let mut inc = Network::from_scenario(&small_scenario(), 2, 91);
        let mut full = Network::from_scenario(&small_scenario(), 2, 91);
        let (mut skipped, mut patch_ticks) = (0usize, 0usize);
        for _ in 0..12 {
            inc.advance(&mut mi, SimDuration::from_secs(1));
            full.advance_positions_only(&mut mf, SimDuration::from_secs(1));
            full.refresh_full();
            let c = inc.pipeline_counters();
            // A tick whose survivors still exceed the patch budget may
            // legitimately fall back — wrong gate guesses cost time, not
            // correctness — but creep motion must mostly stay patched.
            skipped += c.movers_skipped;
            patch_ticks += usize::from(!c.full_fallback);
            assert_tables_equal(&inc, &full);
            assert_eq!(inc.adj().canonical_csr(), full.adj().canonical_csr());
        }
        assert!(
            patch_ticks >= 6,
            "creep ticks should mostly stay incremental ({patch_ticks}/12 did)"
        );
        assert!(
            skipped > 0,
            "creep motion should let the annulus filter skip movers"
        );
    }

    #[test]
    fn kernel_counters_and_plane_track_refresh_paths() {
        let mut net = Network::from_scenario(&small_scenario(), 2, 19);
        assert!(
            net.position_plane().is_coherent(net.positions()),
            "construction must leave the plane coherent"
        );
        // The report-free refresh runs the kernel rebuild: every CSR
        // candidate lane goes through the f32 classifier.
        let mut rwp = RandomWaypoint::new(
            60,
            net.field(),
            5.0,
            15.0,
            0.0,
            RngStream::seed_from_u64(23),
        );
        net.advance_positions_only(&mut rwp, SimDuration::from_secs(2));
        net.refresh();
        let c = net.pipeline_counters();
        assert!(c.kernel_lanes > 0, "kernel rebuild must classify lanes");
        assert!(c.kernel_lanes >= c.kernel_exact);
        assert!(net.position_plane().is_coherent(net.positions()));
        // The scalar reference path reports no kernel work but still
        // re-mirrors the plane.
        net.advance_positions_only(&mut rwp, SimDuration::from_secs(2));
        net.refresh_full();
        let c = net.pipeline_counters();
        assert_eq!((c.kernel_lanes, c.kernel_exact), (0, 0));
        assert!(net.position_plane().is_coherent(net.positions()));
        // A mover patch classifies only the re-queried rows' lanes.
        let p = net.positions()[7];
        net.positions_mut()[7] = Point2::new((p.x + 40.0).min(299.0), p.y);
        net.refresh_movers(&[NodeId::new(7)]);
        let c = net.pipeline_counters();
        assert!(!c.full_fallback);
        assert!(
            c.movers_skipped == 1 || c.kernel_lanes > 0,
            "a kept mover must route its re-queries through the kernel: {c:?}"
        );
        assert!(net.position_plane().is_coherent(net.positions()));
    }

    #[test]
    fn set_radius_recomputes_tables() {
        let mut net = Network::from_scenario(&small_scenario(), 1, 11);
        let small = net.tables().mean_size();
        net.set_radius(3);
        assert_eq!(net.radius(), 3);
        let large = net.tables().mean_size();
        assert!(large > small, "bigger R must not shrink neighborhoods");
        net.set_radius(3); // no-op path
        assert_eq!(net.radius(), 3);
    }

    #[test]
    fn is_link_matches_adjacency() {
        let net = Network::from_scenario(&small_scenario(), 2, 13);
        for a in NodeId::all(net.node_count()) {
            for &b in net.adj().neighbors(a) {
                assert!(net.is_link(a, b));
            }
        }
    }
}

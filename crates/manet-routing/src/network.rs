//! The network world: positions + connectivity + neighborhood tables.
//!
//! [`Network`] is the single mutable world object every experiment drives.
//! It owns the node positions, the unit-disk adjacency (with its spatial
//! grid), and the converged R-hop neighborhood tables, and it knows how to
//! advance mobility: move nodes, rebuild connectivity, recompute tables.

use mobility::model::MobilityModel;
use net_topology::geometry::{Field, Point2};
use net_topology::graph::Adjacency;
use net_topology::grid::SpatialGrid;
use net_topology::node::NodeId;
use net_topology::placement::place_uniform;
use net_topology::scenario::Scenario;
use sim_core::rng::SeedSplitter;
use sim_core::time::SimDuration;

use crate::neighborhood::NeighborhoodTables;

/// A MANET snapshot plus the machinery to evolve it under mobility.
pub struct Network {
    field: Field,
    tx_range: f64,
    radius: u16,
    positions: Vec<Point2>,
    adj: Adjacency,
    grid: SpatialGrid,
    tables: NeighborhoodTables,
}

impl Network {
    /// Instantiate a scenario: uniform random placement from `seed`, R-hop
    /// tables with zone radius `radius`.
    pub fn from_scenario(scenario: &Scenario, radius: u16, seed: u64) -> Self {
        let field = scenario.field();
        let mut rng = SeedSplitter::new(seed).stream("placement", 0);
        let positions = place_uniform(scenario.nodes, field, &mut rng);
        Self::from_positions(field, positions, scenario.tx_range, radius)
    }

    /// Build from explicit positions.
    ///
    /// # Panics
    /// Panics unless `tx_range` is positive and finite.
    pub fn from_positions(field: Field, positions: Vec<Point2>, tx_range: f64, radius: u16) -> Self {
        assert!(tx_range > 0.0 && tx_range.is_finite(), "invalid tx range {tx_range}");
        let mut grid = SpatialGrid::new(field, tx_range);
        let adj = Adjacency::build_with_grid(&mut grid, &positions, tx_range);
        let tables = NeighborhoodTables::compute(&adj, radius);
        Network { field, tx_range, radius, positions, adj, grid, tables }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// The simulation field.
    pub fn field(&self) -> Field {
        self.field
    }

    /// The transmission range in meters.
    pub fn tx_range(&self) -> f64 {
        self.tx_range
    }

    /// The neighborhood radius R.
    pub fn radius(&self) -> u16 {
        self.radius
    }

    /// Node positions.
    pub fn positions(&self) -> &[Point2] {
        &self.positions
    }

    /// The current unit-disk adjacency.
    #[inline]
    pub fn adj(&self) -> &Adjacency {
        &self.adj
    }

    /// The current converged neighborhood tables.
    #[inline]
    pub fn tables(&self) -> &NeighborhoodTables {
        &self.tables
    }

    /// Change the zone radius and recompute tables (used by R-sweeps).
    pub fn set_radius(&mut self, radius: u16) {
        if radius != self.radius {
            self.radius = radius;
            self.tables = NeighborhoodTables::compute(&self.adj, radius);
        }
    }

    /// Advance mobility by `dt`: move nodes, rebuild connectivity and
    /// recompute neighborhood tables. No-op for static models.
    pub fn advance(&mut self, model: &mut dyn MobilityModel, dt: SimDuration) {
        if model.is_static() {
            return;
        }
        model.advance(&mut self.positions, dt);
        self.adj
            .rebuild_with_grid(&mut self.grid, &self.positions, self.tx_range);
        self.tables = NeighborhoodTables::compute(&self.adj, self.radius);
    }

    /// Move nodes *without* refreshing connectivity or tables (used to
    /// model stale state between proactive refreshes; callers must follow
    /// with [`Network::refresh`]).
    pub fn advance_positions_only(&mut self, model: &mut dyn MobilityModel, dt: SimDuration) {
        model.advance(&mut self.positions, dt);
    }

    /// Rebuild connectivity and tables from current positions.
    pub fn refresh(&mut self) {
        self.adj
            .rebuild_with_grid(&mut self.grid, &self.positions, self.tx_range);
        self.tables = NeighborhoodTables::compute(&self.adj, self.radius);
    }

    /// Are `a` and `b` currently within direct radio range?
    #[inline]
    pub fn is_link(&self, a: NodeId, b: NodeId) -> bool {
        self.adj.is_neighbor(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::statics::StaticModel;
    use mobility::waypoint::RandomWaypoint;
    use sim_core::rng::RngStream;

    fn small_scenario() -> Scenario {
        Scenario::new(60, 300.0, 300.0, 60.0)
    }

    #[test]
    fn from_scenario_builds_consistent_state() {
        let net = Network::from_scenario(&small_scenario(), 2, 42);
        assert_eq!(net.node_count(), 60);
        assert_eq!(net.radius(), 2);
        assert_eq!(net.tx_range(), 60.0);
        assert_eq!(net.tables().node_count(), 60);
        assert_eq!(net.positions().len(), 60);
        // tables must agree with adjacency: 1-hop members are exactly neighbors + self
        let tables_r1 = NeighborhoodTables::compute(net.adj(), 1);
        for id in NodeId::all(60) {
            assert_eq!(
                tables_r1.of(id).size(),
                net.adj().degree(id) + 1,
                "1-hop neighborhood = direct neighbors + self"
            );
        }
    }

    #[test]
    fn deterministic_instantiation() {
        let a = Network::from_scenario(&small_scenario(), 2, 7);
        let b = Network::from_scenario(&small_scenario(), 2, 7);
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.adj().link_count(), b.adj().link_count());
    }

    #[test]
    fn static_advance_is_noop() {
        let mut net = Network::from_scenario(&small_scenario(), 2, 1);
        let before = net.positions().to_vec();
        let links = net.adj().link_count();
        net.advance(&mut StaticModel, SimDuration::from_secs(10));
        assert_eq!(net.positions(), &before[..]);
        assert_eq!(net.adj().link_count(), links);
    }

    #[test]
    fn mobile_advance_updates_everything() {
        let mut net = Network::from_scenario(&small_scenario(), 2, 1);
        let before = net.positions().to_vec();
        let mut rwp = RandomWaypoint::new(
            60,
            net.field(),
            5.0,
            15.0,
            0.0,
            RngStream::seed_from_u64(3),
        );
        net.advance(&mut rwp, SimDuration::from_secs(5));
        assert_ne!(net.positions(), &before[..], "nodes should have moved");
        // adjacency is consistent with moved positions
        for a in NodeId::all(net.node_count()) {
            for &b in net.adj().neighbors(a) {
                let d = net.positions()[a.index()].dist(net.positions()[b.index()]);
                assert!(d <= net.tx_range() + 1e-9);
            }
        }
    }

    #[test]
    fn positions_only_then_refresh_matches_full_advance() {
        let mut a = Network::from_scenario(&small_scenario(), 2, 5);
        let mut b = Network::from_scenario(&small_scenario(), 2, 5);
        let mk = || RandomWaypoint::new(60, Field::square(300.0), 5.0, 15.0, 0.0, RngStream::seed_from_u64(9));
        let (mut ma, mut mb) = (mk(), mk());
        a.advance(&mut ma, SimDuration::from_secs(3));
        b.advance_positions_only(&mut mb, SimDuration::from_secs(3));
        b.refresh();
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.adj().link_count(), b.adj().link_count());
    }

    #[test]
    fn set_radius_recomputes_tables() {
        let mut net = Network::from_scenario(&small_scenario(), 1, 11);
        let small = net.tables().mean_size();
        net.set_radius(3);
        assert_eq!(net.radius(), 3);
        let large = net.tables().mean_size();
        assert!(large > small, "bigger R must not shrink neighborhoods");
        net.set_radius(3); // no-op path
        assert_eq!(net.radius(), 3);
    }

    #[test]
    fn is_link_matches_adjacency() {
        let net = Network::from_scenario(&small_scenario(), 2, 13);
        for a in NodeId::all(net.node_count()) {
            for &b in net.adj().neighbors(a) {
                assert!(net.is_link(a, b));
            }
        }
    }
}

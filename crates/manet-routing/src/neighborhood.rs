//! R-hop neighborhood (zone) tables.
//!
//! A node's *neighborhood* is every node within R hops (§III.B); its *edge
//! nodes* are those at exactly R hops. `NeighborhoodTables` materializes,
//! for every node at once:
//!
//! * zone membership (the "is the source / a contact / an edge node inside
//!   my neighborhood?" overlap checks of contact selection),
//! * hop distances and BFS parents (for intra-zone path extraction — the
//!   paths returned by queries and spliced in by local recovery).
//!
//! The tables represent the *converged* state of the proactive intra-zone
//! protocol; [`crate::dsdv`] shows a real protocol converging to them.
//!
//! ## Memory model: O(zone) per node
//!
//! Every per-node structure here is sized by the *zone*, never by the
//! network: sorted member ids, hop distances, BFS parents, edge nodes, and
//! a small Bloom fingerprint ([`sim_core::util::BloomSet`], ~1 byte per
//! member) over the member ids. Total memory is O(Σ zone sizes) — at
//! Table-1 densities roughly a few hundred bytes per node regardless of N,
//! which is what lets the simulator hold N = 10⁵ worlds in laptop RAM.
//! (The previous design carried an N-bit membership bitset per node:
//! O(N²/8) bytes total, ~1.25 GB at N = 10⁵ — the "O(N²) memory wall".)
//!
//! Membership tests stay cheap without the bitset: the Bloom fingerprint
//! answers the common *negative* case ("that node is nowhere near my
//! zone") in two word reads, and only possible members pay the
//! O(log zone) binary search that confirms exactly. No false negatives;
//! a false positive merely costs the binary search.
//!
//! ## Refresh
//!
//! Tables are (re)computed with per-worker [`BfsScratch`] workspaces fanned
//! out over the persistent worker pool in [`sim_core::par`], and
//! [`NeighborhoodTables::recompute_nodes`] rebuilds an arbitrary subset —
//! the primitive behind the incremental mobility refresh in
//! [`crate::network`].

use net_topology::bfs::{BfsScratch, BfsView};
use net_topology::graph::Adjacency;
use net_topology::node::NodeId;
use sim_core::par::parallel_map_with;
use sim_core::util::BloomSet;

/// Neighborhood state of one node — all fields O(zone size).
#[derive(Clone, Debug)]
pub struct Neighborhood {
    owner: NodeId,
    /// Member ids in ascending order (owner included).
    ids: Vec<NodeId>,
    /// Bloom fingerprint over `ids` (fast-negative membership probe).
    filter: BloomSet,
    /// Hop distance of `ids[k]` from the owner.
    dist: Vec<u16>,
    /// BFS-tree parent of `ids[k]` (the owner is its own parent).
    parent: Vec<NodeId>,
    /// Nodes at exactly R hops, sorted by id.
    edge_nodes: Vec<NodeId>,
}

impl Neighborhood {
    /// Capture one node's neighborhood from a hop-limited BFS view.
    fn from_view(owner: NodeId, view: BfsView<'_>, radius: u16) -> Self {
        let mut ids = view.visited().to_vec();
        ids.sort_unstable();
        let mut filter = BloomSet::with_capacity(ids.len());
        let mut dist = Vec::with_capacity(ids.len());
        let mut parent = Vec::with_capacity(ids.len());
        let mut edge_nodes = Vec::new();
        for &v in &ids {
            filter.insert(u64::from(v.0));
            let d = view.distance(v).expect("visited node has a distance");
            dist.push(d);
            parent.push(view.parent(v).expect("visited node has a parent"));
            if d == radius {
                edge_nodes.push(v);
            }
        }
        Neighborhood {
            owner,
            ids,
            filter,
            dist,
            parent,
            edge_nodes,
        }
    }

    /// Position of `node` in the sorted member arrays.
    #[inline]
    fn pos(&self, node: NodeId) -> Option<usize> {
        self.ids.binary_search(&node).ok()
    }

    /// Is `node` within R hops of the owner (the owner itself counts)?
    ///
    /// Two-stage test: the Bloom fingerprint rejects most non-members in
    /// two word reads; survivors are confirmed by binary search on the
    /// sorted member array.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.filter.may_contain(u64::from(node.0)) && self.pos(node).is_some()
    }

    /// Is *any* of `nodes` a member? The batch form of the overlap checks
    /// in contact selection (`Contact_List` / `Edge_List` against a
    /// candidate's zone).
    #[inline]
    pub fn contains_any(&self, nodes: &[NodeId]) -> bool {
        nodes.iter().any(|&v| self.contains(v))
    }

    /// Member ids in ascending order, owner included.
    pub fn members(&self) -> &[NodeId] {
        &self.ids
    }

    /// Number of members including the owner.
    pub fn size(&self) -> usize {
        self.ids.len()
    }

    /// Nodes at exactly R hops from the owner.
    pub fn edge_nodes(&self) -> &[NodeId] {
        &self.edge_nodes
    }

    /// Hop distance to a member (`None` if outside the neighborhood).
    pub fn distance(&self, node: NodeId) -> Option<u16> {
        self.pos(node).map(|k| self.dist[k])
    }

    /// Hop-shortest intra-zone path from the owner to `node` (inclusive).
    pub fn path_to(&self, node: NodeId) -> Option<Vec<NodeId>> {
        let mut k = self.pos(node)?;
        let mut path = Vec::with_capacity(self.dist[k] as usize + 1);
        let mut cur = node;
        path.push(cur);
        while cur != self.owner {
            cur = self.parent[k];
            path.push(cur);
            k = self.pos(cur).expect("parents stay inside the neighborhood");
        }
        path.reverse();
        Some(path)
    }

    /// Members in ascending id order (owner included).
    pub fn iter_members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ids.iter().copied()
    }

    /// Approximate heap bytes held by this neighborhood (memory
    /// observability for the scale scenarios).
    pub fn approx_heap_bytes(&self) -> usize {
        self.ids.capacity() * std::mem::size_of::<NodeId>()
            + self.dist.capacity() * std::mem::size_of::<u16>()
            + self.parent.capacity() * std::mem::size_of::<NodeId>()
            + self.edge_nodes.capacity() * std::mem::size_of::<NodeId>()
            + self.filter.heap_bytes()
    }
}

/// Per-node neighborhood tables for a whole network snapshot.
#[derive(Clone, Debug)]
pub struct NeighborhoodTables {
    radius: u16,
    tables: Vec<Neighborhood>,
}

/// Chunk length for fanning `len` work items out over the workers:
/// enough chunks to load every worker several times over (so stragglers
/// rebalance), but large enough to amortize the queue lock.
fn chunk_len(len: usize) -> usize {
    (len / (sim_core::par::max_workers() * 4)).max(32)
}

/// Split `0..n` into contiguous ranges of [`chunk_len`] size.
fn node_chunks(n: usize) -> Vec<std::ops::Range<usize>> {
    let chunk = chunk_len(n);
    (0..n.div_ceil(chunk))
        .map(|c| c * chunk..((c + 1) * chunk).min(n))
        .collect()
}

impl NeighborhoodTables {
    /// Compute R-hop tables for every node: one hop-limited BFS per node,
    /// fanned out over the worker pool with one [`BfsScratch`] each.
    pub fn compute(adj: &Adjacency, radius: u16) -> Self {
        let n = adj.node_count();
        let per_chunk = parallel_map_with(node_chunks(n), BfsScratch::new, |scratch, range| {
            range
                .map(|i| {
                    let src = NodeId::from(i);
                    Neighborhood::from_view(src, scratch.khop(adj, src, radius), radius)
                })
                .collect::<Vec<_>>()
        });
        NeighborhoodTables {
            radius,
            tables: per_chunk.into_iter().flatten().collect(),
        }
    }

    /// Recompute the neighborhoods of `nodes` only (in parallel, reusing
    /// per-worker scratch), leaving every other table untouched. The caller
    /// guarantees `nodes` covers every node whose R-hop view changed —
    /// see `Network::refresh` for how that set is derived.
    pub fn recompute_nodes(&mut self, adj: &Adjacency, nodes: &[NodeId]) {
        let n = adj.node_count();
        assert_eq!(n, self.tables.len(), "node count changed; use compute()");
        let radius = self.radius;
        // Small dirty sets: one scratch on the caller's thread beats even
        // the pool's publish/wake cost.
        if nodes.len() < 96 {
            let mut scratch = BfsScratch::with_capacity(n);
            for &src in nodes {
                self.tables[src.index()] =
                    Neighborhood::from_view(src, scratch.khop(adj, src, radius), radius);
            }
            return;
        }
        let chunks: Vec<&[NodeId]> = nodes.chunks(chunk_len(nodes.len())).collect();
        let rebuilt = parallel_map_with(chunks, BfsScratch::new, |scratch, chunk| {
            chunk
                .iter()
                .map(|&src| Neighborhood::from_view(src, scratch.khop(adj, src, radius), radius))
                .collect::<Vec<_>>()
        });
        for nb in rebuilt.into_iter().flatten() {
            let slot = nb.owner.index();
            self.tables[slot] = nb;
        }
    }

    /// The zone radius R these tables were built with.
    pub fn radius(&self) -> u16 {
        self.radius
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.tables.len()
    }

    /// The neighborhood of `owner`.
    #[inline]
    pub fn of(&self, owner: NodeId) -> &Neighborhood {
        &self.tables[owner.index()]
    }

    /// Convenience: is `node` inside `owner`'s neighborhood?
    #[inline]
    pub fn contains(&self, owner: NodeId, node: NodeId) -> bool {
        self.of(owner).contains(node)
    }

    /// Mean neighborhood size (owner included) over all nodes.
    pub fn mean_size(&self) -> f64 {
        if self.tables.is_empty() {
            return 0.0;
        }
        self.tables.iter().map(|t| t.size()).sum::<usize>() as f64 / self.tables.len() as f64
    }

    /// Approximate total heap bytes of all neighborhood state — O(Σ zone),
    /// not O(N²) (memory observability for the scale scenarios).
    pub fn approx_heap_bytes(&self) -> usize {
        self.tables
            .iter()
            .map(Neighborhood::approx_heap_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_topology::bfs::full_bfs;
    use proptest::prelude::*;

    /// 0-1-2-3-4 path.
    fn path5() -> Adjacency {
        let mut adj = Adjacency::with_nodes(5);
        for i in 0..4u32 {
            adj.add_edge(NodeId(i), NodeId(i + 1));
        }
        adj
    }

    #[test]
    fn membership_and_edges_on_path() {
        let tables = NeighborhoodTables::compute(&path5(), 2);
        let nb0 = tables.of(NodeId(0));
        assert!(nb0.contains(NodeId(0)));
        assert!(nb0.contains(NodeId(1)));
        assert!(nb0.contains(NodeId(2)));
        assert!(!nb0.contains(NodeId(3)));
        assert_eq!(nb0.size(), 3);
        assert_eq!(nb0.edge_nodes(), &[NodeId(2)]);
        let nb2 = tables.of(NodeId(2));
        assert_eq!(nb2.size(), 5);
        assert_eq!(nb2.edge_nodes(), &[NodeId(0), NodeId(4)]);
        assert_eq!(tables.radius(), 2);
        assert_eq!(tables.node_count(), 5);
    }

    #[test]
    fn distances_and_paths() {
        let tables = NeighborhoodTables::compute(&path5(), 3);
        let nb0 = tables.of(NodeId(0));
        assert_eq!(nb0.distance(NodeId(3)), Some(3));
        assert_eq!(nb0.distance(NodeId(4)), None);
        assert_eq!(
            nb0.path_to(NodeId(3)),
            Some(vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)])
        );
        assert_eq!(nb0.path_to(NodeId(4)), None);
    }

    #[test]
    fn radius_zero_is_self_only() {
        let tables = NeighborhoodTables::compute(&path5(), 0);
        let nb = tables.of(NodeId(2));
        assert_eq!(nb.size(), 1);
        assert!(nb.contains(NodeId(2)));
        assert!(!nb.contains(NodeId(1)));
        assert_eq!(nb.edge_nodes(), &[NodeId(2)]); // the owner is its own edge at R=0
    }

    #[test]
    fn isolated_node() {
        let mut adj = Adjacency::with_nodes(3);
        adj.add_edge(NodeId(0), NodeId(1));
        let tables = NeighborhoodTables::compute(&adj, 2);
        let nb = tables.of(NodeId(2));
        assert_eq!(nb.size(), 1);
        assert!(nb.edge_nodes().is_empty()); // nothing at exactly 2 hops
    }

    #[test]
    fn mean_size() {
        let tables = NeighborhoodTables::compute(&path5(), 1);
        // sizes: 2,3,3,3,2 -> mean 2.6
        assert!((tables.mean_size() - 2.6).abs() < 1e-12);
    }

    #[test]
    fn iter_members_matches_members_slice() {
        let tables = NeighborhoodTables::compute(&path5(), 2);
        let nb = tables.of(NodeId(1));
        let from_iter: Vec<NodeId> = nb.iter_members().collect();
        assert_eq!(from_iter, nb.members());
        // sorted ascending, and contains() agrees with the slice
        for w in from_iter.windows(2) {
            assert!(w[0] < w[1]);
        }
        for m in nb.members() {
            assert!(nb.contains(*m));
        }
    }

    #[test]
    fn contains_any_matches_individual_checks() {
        let tables = NeighborhoodTables::compute(&path5(), 1);
        let nb = tables.of(NodeId(2));
        assert!(nb.contains_any(&[NodeId(0), NodeId(3)])); // 3 is a member
        assert!(!nb.contains_any(&[NodeId(0), NodeId(4)]));
        assert!(!nb.contains_any(&[]));
    }

    #[test]
    fn heap_bytes_scale_with_zone_not_network() {
        // Same zone structure embedded in a much larger id space must not
        // grow per-node memory: O(zone), not O(N).
        let small = NeighborhoodTables::compute(&path5(), 2);
        let mut big_adj = Adjacency::with_nodes(5000);
        for i in 0..4u32 {
            big_adj.add_edge(NodeId(i), NodeId(i + 1));
        }
        let big = NeighborhoodTables::compute(&big_adj, 2);
        assert_eq!(
            small.of(NodeId(0)).approx_heap_bytes(),
            big.of(NodeId(0)).approx_heap_bytes(),
            "per-node memory must not depend on network size"
        );
    }

    #[test]
    fn recompute_nodes_updates_only_listed_tables() {
        let mut adj = path5();
        let mut tables = NeighborhoodTables::compute(&adj, 1);
        // Add edge 0-4, then refresh only nodes 0 and 4.
        adj.add_edge(NodeId(0), NodeId(4));
        tables.recompute_nodes(&adj, &[NodeId(0), NodeId(4)]);
        assert!(tables.of(NodeId(0)).contains(NodeId(4)));
        assert!(tables.of(NodeId(4)).contains(NodeId(0)));
        // node 2's table was intentionally left stale (not in the list)
        assert_eq!(tables.of(NodeId(2)).size(), 3);
    }

    fn random_graph(n: usize, edges: &[(u32, u32)]) -> Adjacency {
        let mut adj = Adjacency::with_nodes(n);
        for &(a, b) in edges {
            let a = a % n as u32;
            let b = b % n as u32;
            if a != b {
                adj.add_edge(NodeId(a), NodeId(b));
            }
        }
        adj
    }

    proptest! {
        /// Membership ⇔ full-BFS distance ≤ R, and edge nodes are exactly
        /// the distance-R members.
        #[test]
        fn prop_tables_match_bfs(
            edges in proptest::collection::vec((0u32..25, 0u32..25), 0..70),
            radius in 0u16..5,
        ) {
            let adj = random_graph(25, &edges);
            let tables = NeighborhoodTables::compute(&adj, radius);
            for owner in NodeId::all(25) {
                let truth = full_bfs(&adj, owner);
                let nb = tables.of(owner);
                for v in NodeId::all(25) {
                    let expect = matches!(truth.distance(v), Some(d) if d <= radius);
                    prop_assert_eq!(nb.contains(v), expect);
                }
                let mut expect_edges: Vec<NodeId> = NodeId::all(25)
                    .filter(|&v| truth.distance(v) == Some(radius))
                    .collect();
                expect_edges.sort_unstable();
                prop_assert_eq!(nb.edge_nodes(), &expect_edges[..]);
            }
        }

        /// Neighborhood membership is symmetric: b ∈ nbhd(a) ⇔ a ∈ nbhd(b).
        #[test]
        fn prop_membership_symmetric(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 0..60),
            radius in 0u16..5,
        ) {
            let adj = random_graph(20, &edges);
            let tables = NeighborhoodTables::compute(&adj, radius);
            for a in NodeId::all(20) {
                for b in NodeId::all(20) {
                    prop_assert_eq!(tables.contains(a, b), tables.contains(b, a));
                }
            }
        }

        /// Intra-zone paths from the compact representation are valid
        /// hop-by-hop routes of length == distance.
        #[test]
        fn prop_paths_valid(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 0..60),
            radius in 1u16..4,
        ) {
            let adj = random_graph(20, &edges);
            let tables = NeighborhoodTables::compute(&adj, radius);
            for owner in NodeId::all(20) {
                let nb = tables.of(owner);
                for m in nb.iter_members() {
                    let path = nb.path_to(m).expect("member has a path");
                    prop_assert_eq!(path[0], owner);
                    prop_assert_eq!(*path.last().unwrap(), m);
                    prop_assert_eq!(path.len() as u16 - 1, nb.distance(m).unwrap());
                    for w in path.windows(2) {
                        prop_assert!(adj.is_neighbor(w[0], w[1]));
                    }
                }
            }
        }

        /// `contains_any` over arbitrary probe sets equals the any() of
        /// per-node `contains` — the contract the selection overlap checks
        /// rely on.
        #[test]
        fn prop_contains_any_equals_pointwise(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 0..60),
            probes in proptest::collection::vec(0u32..40, 0..12),
            owner in 0u32..20,
            radius in 0u16..4,
        ) {
            let adj = random_graph(20, &edges);
            let tables = NeighborhoodTables::compute(&adj, radius);
            let nb = tables.of(NodeId(owner));
            let probe_ids: Vec<NodeId> = probes.iter().map(|&p| NodeId(p)).collect();
            let pointwise = probe_ids.iter().any(|&v| nb.contains(v));
            prop_assert_eq!(nb.contains_any(&probe_ids), pointwise);
        }
    }
}

//! R-hop neighborhood (zone) tables.
//!
//! A node's *neighborhood* is every node within R hops (§III.B); its *edge
//! nodes* are those at exactly R hops. `NeighborhoodTables` materializes,
//! for every node at once:
//!
//! * a membership bitset (the O(1) "is the source / a contact / an edge node
//!   inside my neighborhood?" overlap checks of contact selection),
//! * hop distances and BFS parents (for intra-zone path extraction — the
//!   paths returned by queries and spliced in by local recovery).
//!
//! The tables represent the *converged* state of the proactive intra-zone
//! protocol; [`crate::dsdv`] shows a real protocol converging to them.

use net_topology::bfs::{khop_bfs, BfsResult};
use net_topology::graph::Adjacency;
use net_topology::node::NodeId;
use sim_core::util::BitSet;

/// Neighborhood state of one node.
#[derive(Clone, Debug)]
pub struct Neighborhood {
    /// Membership bitset over all node ids (includes the owner itself).
    members: BitSet,
    /// Nodes at exactly R hops, sorted by id.
    edge_nodes: Vec<NodeId>,
    /// Underlying hop-limited BFS (distances + parents).
    bfs: BfsResult,
}

impl Neighborhood {
    /// Is `node` within R hops of the owner (the owner itself counts)?
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(node.index())
    }

    /// Membership bitset (self included).
    pub fn members(&self) -> &BitSet {
        &self.members
    }

    /// Number of members including the owner.
    pub fn size(&self) -> usize {
        self.bfs.visited_count()
    }

    /// Nodes at exactly R hops from the owner.
    pub fn edge_nodes(&self) -> &[NodeId] {
        &self.edge_nodes
    }

    /// Hop distance to a member (`None` if outside the neighborhood).
    pub fn distance(&self, node: NodeId) -> Option<u16> {
        self.bfs.distance(node)
    }

    /// Hop-shortest intra-zone path from the owner to `node` (inclusive).
    pub fn path_to(&self, node: NodeId) -> Option<Vec<NodeId>> {
        self.bfs.path_to(node)
    }

    /// Members in discovery order (owner first).
    pub fn iter_members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.bfs.visited().iter().copied()
    }
}

/// Per-node neighborhood tables for a whole network snapshot.
#[derive(Clone, Debug)]
pub struct NeighborhoodTables {
    radius: u16,
    tables: Vec<Neighborhood>,
}

impl NeighborhoodTables {
    /// Compute R-hop tables for every node (one hop-limited BFS per node).
    pub fn compute(adj: &Adjacency, radius: u16) -> Self {
        let n = adj.node_count();
        let tables = NodeId::all(n)
            .map(|src| {
                let bfs = khop_bfs(adj, src, radius);
                let mut members = BitSet::new(n);
                let mut edge_nodes = Vec::new();
                for &v in bfs.visited() {
                    members.insert(v.index());
                    if bfs.distance(v) == Some(radius) {
                        edge_nodes.push(v);
                    }
                }
                edge_nodes.sort_unstable();
                Neighborhood { members, edge_nodes, bfs }
            })
            .collect();
        NeighborhoodTables { radius, tables }
    }

    /// The zone radius R these tables were built with.
    pub fn radius(&self) -> u16 {
        self.radius
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.tables.len()
    }

    /// The neighborhood of `owner`.
    #[inline]
    pub fn of(&self, owner: NodeId) -> &Neighborhood {
        &self.tables[owner.index()]
    }

    /// Convenience: is `node` inside `owner`'s neighborhood?
    #[inline]
    pub fn contains(&self, owner: NodeId, node: NodeId) -> bool {
        self.of(owner).contains(node)
    }

    /// Mean neighborhood size (owner included) over all nodes.
    pub fn mean_size(&self) -> f64 {
        if self.tables.is_empty() {
            return 0.0;
        }
        self.tables.iter().map(|t| t.size()).sum::<usize>() as f64 / self.tables.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_topology::bfs::full_bfs;
    use proptest::prelude::*;

    /// 0-1-2-3-4 path.
    fn path5() -> Adjacency {
        let mut adj = Adjacency::with_nodes(5);
        for i in 0..4u32 {
            adj.add_edge(NodeId(i), NodeId(i + 1));
        }
        adj
    }

    #[test]
    fn membership_and_edges_on_path() {
        let tables = NeighborhoodTables::compute(&path5(), 2);
        let nb0 = tables.of(NodeId(0));
        assert!(nb0.contains(NodeId(0)));
        assert!(nb0.contains(NodeId(1)));
        assert!(nb0.contains(NodeId(2)));
        assert!(!nb0.contains(NodeId(3)));
        assert_eq!(nb0.size(), 3);
        assert_eq!(nb0.edge_nodes(), &[NodeId(2)]);
        let nb2 = tables.of(NodeId(2));
        assert_eq!(nb2.size(), 5);
        assert_eq!(nb2.edge_nodes(), &[NodeId(0), NodeId(4)]);
        assert_eq!(tables.radius(), 2);
        assert_eq!(tables.node_count(), 5);
    }

    #[test]
    fn distances_and_paths() {
        let tables = NeighborhoodTables::compute(&path5(), 3);
        let nb0 = tables.of(NodeId(0));
        assert_eq!(nb0.distance(NodeId(3)), Some(3));
        assert_eq!(nb0.distance(NodeId(4)), None);
        assert_eq!(
            nb0.path_to(NodeId(3)),
            Some(vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)])
        );
        assert_eq!(nb0.path_to(NodeId(4)), None);
    }

    #[test]
    fn radius_zero_is_self_only() {
        let tables = NeighborhoodTables::compute(&path5(), 0);
        let nb = tables.of(NodeId(2));
        assert_eq!(nb.size(), 1);
        assert!(nb.contains(NodeId(2)));
        assert!(!nb.contains(NodeId(1)));
        assert_eq!(nb.edge_nodes(), &[NodeId(2)]); // the owner is its own edge at R=0
    }

    #[test]
    fn isolated_node() {
        let mut adj = Adjacency::with_nodes(3);
        adj.add_edge(NodeId(0), NodeId(1));
        let tables = NeighborhoodTables::compute(&adj, 2);
        let nb = tables.of(NodeId(2));
        assert_eq!(nb.size(), 1);
        assert!(nb.edge_nodes().is_empty()); // nothing at exactly 2 hops
    }

    #[test]
    fn mean_size() {
        let tables = NeighborhoodTables::compute(&path5(), 1);
        // sizes: 2,3,3,3,2 -> mean 2.6
        assert!((tables.mean_size() - 2.6).abs() < 1e-12);
    }

    #[test]
    fn iter_members_matches_bitset() {
        let tables = NeighborhoodTables::compute(&path5(), 2);
        let nb = tables.of(NodeId(1));
        let mut from_iter: Vec<usize> = nb.iter_members().map(|n| n.index()).collect();
        from_iter.sort_unstable();
        assert_eq!(from_iter, nb.members().to_vec());
    }

    fn random_graph(n: usize, edges: &[(u32, u32)]) -> Adjacency {
        let mut adj = Adjacency::with_nodes(n);
        for &(a, b) in edges {
            let a = a % n as u32;
            let b = b % n as u32;
            if a != b {
                adj.add_edge(NodeId(a), NodeId(b));
            }
        }
        adj
    }

    proptest! {
        /// Membership ⇔ full-BFS distance ≤ R, and edge nodes are exactly
        /// the distance-R members.
        #[test]
        fn prop_tables_match_bfs(
            edges in proptest::collection::vec((0u32..25, 0u32..25), 0..70),
            radius in 0u16..5,
        ) {
            let adj = random_graph(25, &edges);
            let tables = NeighborhoodTables::compute(&adj, radius);
            for owner in NodeId::all(25) {
                let truth = full_bfs(&adj, owner);
                let nb = tables.of(owner);
                for v in NodeId::all(25) {
                    let expect = matches!(truth.distance(v), Some(d) if d <= radius);
                    prop_assert_eq!(nb.contains(v), expect);
                }
                let mut expect_edges: Vec<NodeId> = NodeId::all(25)
                    .filter(|&v| truth.distance(v) == Some(radius))
                    .collect();
                expect_edges.sort_unstable();
                prop_assert_eq!(nb.edge_nodes(), &expect_edges[..]);
            }
        }

        /// Neighborhood membership is symmetric: b ∈ nbhd(a) ⇔ a ∈ nbhd(b).
        #[test]
        fn prop_membership_symmetric(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 0..60),
            radius in 0u16..5,
        ) {
            let adj = random_graph(20, &edges);
            let tables = NeighborhoodTables::compute(&adj, radius);
            for a in NodeId::all(20) {
                for b in NodeId::all(20) {
                    prop_assert_eq!(tables.contains(a, b), tables.contains(b, a));
                }
            }
        }
    }
}

//! Global flooding search — baseline #1 of Fig 15.
//!
//! The classic reactive discovery of AODV/DSR route requests: the source
//! broadcasts the query; every node hearing it for the first time
//! rebroadcasts once (duplicate suppression); the target answers along the
//! reverse path. Every rebroadcast is one control message, so a flood over
//! a connected component of size C costs C transmissions (the target does
//! not rebroadcast) regardless of where the target sits — which is exactly
//! why the paper calls flooding unscalable.

use net_topology::bfs::full_bfs;
use net_topology::graph::Adjacency;
use net_topology::node::NodeId;
use sim_core::stats::{MsgKind, MsgStats};
use sim_core::time::SimTime;

/// Result of one flooding search.
#[derive(Clone, Debug, PartialEq)]
pub struct FloodOutcome {
    /// Was the target reached?
    pub found: bool,
    /// Broadcast transmissions performed (one per flooding node).
    pub transmissions: u64,
    /// Reply messages along the reverse path (target→source hops).
    pub reply_messages: u64,
    /// Hop distance source→target if found.
    pub hops_to_target: Option<u16>,
}

impl FloodOutcome {
    /// Total control messages: flood + reply.
    pub fn total_messages(&self) -> u64 {
        self.transmissions + self.reply_messages
    }
}

/// Flood from `source` looking for `target`; records messages into `stats`
/// at virtual time `at`.
pub fn flood_search(
    adj: &Adjacency,
    source: NodeId,
    target: NodeId,
    stats: &mut MsgStats,
    at: SimTime,
) -> FloodOutcome {
    if source == target {
        return FloodOutcome {
            found: true,
            transmissions: 0,
            reply_messages: 0,
            hops_to_target: Some(0),
        };
    }
    let bfs = full_bfs(adj, source);
    let found = bfs.reached(target);
    // Every node in the component rebroadcasts exactly once, except the
    // target (it answers instead of forwarding).
    let component = bfs.visited_count() as u64;
    let transmissions = if found { component - 1 } else { component };
    let (reply, hops) = if found {
        let d = bfs.distance(target).expect("reached");
        (d as u64, Some(d))
    } else {
        (0, None)
    };
    stats.record_n(at, MsgKind::Flood, transmissions);
    stats.record_n(at, MsgKind::Flood, reply);
    FloodOutcome {
        found,
        transmissions,
        reply_messages: reply,
        hops_to_target: hops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sim_core::time::SimDuration;

    fn stats() -> MsgStats {
        MsgStats::new(SimDuration::from_secs(2))
    }

    fn path5() -> Adjacency {
        let mut adj = Adjacency::with_nodes(5);
        for i in 0..4u32 {
            adj.add_edge(NodeId(i), NodeId(i + 1));
        }
        adj
    }

    #[test]
    fn finds_target_on_path() {
        let adj = path5();
        let mut st = stats();
        let out = flood_search(&adj, NodeId(0), NodeId(4), &mut st, SimTime::ZERO);
        assert!(out.found);
        assert_eq!(out.hops_to_target, Some(4));
        // component = 5; all but target broadcast = 4; reply = 4 hops
        assert_eq!(out.transmissions, 4);
        assert_eq!(out.reply_messages, 4);
        assert_eq!(out.total_messages(), 8);
        assert_eq!(st.total(MsgKind::Flood), 8);
    }

    #[test]
    fn miss_in_disconnected_component() {
        let mut adj = Adjacency::with_nodes(6);
        adj.add_edge(NodeId(0), NodeId(1));
        adj.add_edge(NodeId(1), NodeId(2));
        adj.add_edge(NodeId(4), NodeId(5));
        let mut st = stats();
        let out = flood_search(&adj, NodeId(0), NodeId(5), &mut st, SimTime::ZERO);
        assert!(!out.found);
        assert_eq!(out.hops_to_target, None);
        // whole component of the source floods: nodes {0,1,2}
        assert_eq!(out.transmissions, 3);
        assert_eq!(out.reply_messages, 0);
    }

    #[test]
    fn self_query_is_free() {
        let adj = path5();
        let mut st = stats();
        let out = flood_search(&adj, NodeId(2), NodeId(2), &mut st, SimTime::ZERO);
        assert!(out.found);
        assert_eq!(out.total_messages(), 0);
        assert_eq!(st.grand_total(), 0);
    }

    #[test]
    fn adjacent_target_costs_component_anyway() {
        // Flooding has no early termination: even a 1-hop target floods the
        // whole component (minus the target itself).
        let adj = path5();
        let mut st = stats();
        let out = flood_search(&adj, NodeId(0), NodeId(1), &mut st, SimTime::ZERO);
        assert!(out.found);
        assert_eq!(out.transmissions, 4);
        assert_eq!(out.reply_messages, 1);
    }

    fn random_graph(n: usize, edges: &[(u32, u32)]) -> Adjacency {
        let mut adj = Adjacency::with_nodes(n);
        for &(a, b) in edges {
            let a = a % n as u32;
            let b = b % n as u32;
            if a != b {
                adj.add_edge(NodeId(a), NodeId(b));
            }
        }
        adj
    }

    proptest! {
        /// Flooding finds the target iff it is in the source's component,
        /// and costs component-size messages (±1 for the target).
        #[test]
        fn prop_flood_semantics(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 0..50),
            s in 0u32..20, t in 0u32..20,
        ) {
            let adj = random_graph(20, &edges);
            let bfs = full_bfs(&adj, NodeId(s));
            let mut st = stats();
            let out = flood_search(&adj, NodeId(s), NodeId(t), &mut st, SimTime::ZERO);
            prop_assert_eq!(out.found, bfs.reached(NodeId(t)));
            if s != t {
                let c = bfs.visited_count() as u64;
                prop_assert_eq!(out.transmissions, if out.found { c - 1 } else { c });
            }
        }
    }
}

//! Expanding-ring search (ERS).
//!
//! §III.C.4 compares CARD's depth-of-search escalation to "the expanding
//! ring search … However, querying in CARD is much more efficient … as the
//! queries are not flooded with different TTLs but are directed to
//! individual nodes". This module implements that comparison point: a
//! TTL-staged flood with duplicate suppression per stage, used by the
//! `ablation_expanding_ring` bench.

use net_topology::bfs::full_bfs;
use net_topology::graph::Adjacency;
use net_topology::node::NodeId;
use sim_core::stats::{MsgKind, MsgStats};
use sim_core::time::SimTime;

/// Result of one expanding-ring search.
#[derive(Clone, Debug, PartialEq)]
pub struct ErsOutcome {
    /// Was the target reached by some ring?
    pub found: bool,
    /// Total broadcast transmissions across all stages.
    pub transmissions: u64,
    /// Reply messages (target back to source) if found.
    pub reply_messages: u64,
    /// Number of TTL stages actually executed.
    pub stages_used: usize,
    /// Hop distance to the target if found.
    pub hops_to_target: Option<u16>,
}

impl ErsOutcome {
    /// Total control messages: rings + reply.
    pub fn total_messages(&self) -> u64 {
        self.transmissions + self.reply_messages
    }
}

/// Run an expanding-ring search from `source` for `target` with the given
/// increasing TTL schedule (e.g. `[1, 2, 4, 8, 16]`).
///
/// Stage semantics: a flood with TTL `L` is rebroadcast by every node at
/// hop distance `< L` from the source (each exactly once per stage), and
/// reaches every node at distance `≤ L`. Stages run in order until the
/// target is reached or the schedule is exhausted. Earlier stages are *not*
/// free: their transmissions accumulate — that is exactly the inefficiency
/// CARD's directed DSQs avoid.
///
/// # Panics
/// Panics if `ttl_schedule` is empty or not strictly increasing.
pub fn expanding_ring_search(
    adj: &Adjacency,
    source: NodeId,
    target: NodeId,
    ttl_schedule: &[u16],
    stats: &mut MsgStats,
    at: SimTime,
) -> ErsOutcome {
    assert!(!ttl_schedule.is_empty(), "empty TTL schedule");
    assert!(
        ttl_schedule.windows(2).all(|w| w[0] < w[1]),
        "TTL schedule must be strictly increasing"
    );

    if source == target {
        return ErsOutcome {
            found: true,
            transmissions: 0,
            reply_messages: 0,
            stages_used: 0,
            hops_to_target: Some(0),
        };
    }

    let bfs = full_bfs(adj, source);
    let target_dist = bfs.distance(target);
    // Precompute the cumulative count of nodes by distance.
    let max_d = bfs.max_distance();
    let mut count_at = vec![0u64; max_d as usize + 1];
    for &v in bfs.visited() {
        count_at[bfs.distance(v).unwrap() as usize] += 1;
    }

    let mut transmissions = 0u64;
    let mut stages_used = 0usize;
    for &ttl in ttl_schedule {
        stages_used += 1;
        // Nodes at distance < ttl rebroadcast once each (the source counts,
        // at distance 0). Nodes exactly at ttl receive but do not forward.
        let forwarding: u64 = count_at
            .iter()
            .take((ttl as usize).min(count_at.len()))
            .sum();
        transmissions += forwarding;
        if let Some(d) = target_dist {
            if d <= ttl {
                let reply = d as u64;
                stats.record_n(at, MsgKind::ExpandingRing, transmissions + reply);
                return ErsOutcome {
                    found: true,
                    transmissions,
                    reply_messages: reply,
                    stages_used,
                    hops_to_target: Some(d),
                };
            }
        }
    }

    stats.record_n(at, MsgKind::ExpandingRing, transmissions);
    ErsOutcome {
        found: false,
        transmissions,
        reply_messages: 0,
        stages_used,
        hops_to_target: None,
    }
}

/// A doubling TTL schedule `1, 2, 4, …` capped at `max_ttl` (always ends
/// exactly at `max_ttl`).
pub fn doubling_schedule(max_ttl: u16) -> Vec<u16> {
    assert!(max_ttl >= 1);
    let mut out = Vec::new();
    let mut ttl = 1u16;
    while ttl < max_ttl {
        out.push(ttl);
        ttl = ttl.saturating_mul(2);
    }
    out.push(max_ttl);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimDuration;

    fn stats() -> MsgStats {
        MsgStats::new(SimDuration::from_secs(2))
    }

    fn path10() -> Adjacency {
        let mut adj = Adjacency::with_nodes(10);
        for i in 0..9u32 {
            adj.add_edge(NodeId(i), NodeId(i + 1));
        }
        adj
    }

    #[test]
    fn near_target_found_in_first_ring() {
        let adj = path10();
        let mut st = stats();
        let out = expanding_ring_search(
            &adj,
            NodeId(0),
            NodeId(1),
            &[1, 2, 4],
            &mut st,
            SimTime::ZERO,
        );
        assert!(out.found);
        assert_eq!(out.stages_used, 1);
        assert_eq!(out.hops_to_target, Some(1));
        // Stage TTL=1: only the source transmits.
        assert_eq!(out.transmissions, 1);
        assert_eq!(out.reply_messages, 1);
    }

    #[test]
    fn far_target_accumulates_stage_cost() {
        let adj = path10();
        let mut st = stats();
        let out = expanding_ring_search(
            &adj,
            NodeId(0),
            NodeId(8),
            &[1, 2, 4, 8],
            &mut st,
            SimTime::ZERO,
        );
        assert!(out.found);
        assert_eq!(out.stages_used, 4);
        // stage1: 1 tx; stage2: 2; stage4: 4; stage8: 8 → 15 total
        assert_eq!(out.transmissions, 15);
        assert_eq!(out.hops_to_target, Some(8));
        assert_eq!(st.total(MsgKind::ExpandingRing), out.total_messages());
    }

    #[test]
    fn miss_exhausts_schedule() {
        let adj = path10();
        let mut st = stats();
        let out =
            expanding_ring_search(&adj, NodeId(0), NodeId(9), &[1, 2], &mut st, SimTime::ZERO);
        assert!(!out.found, "n9 is 9 hops away, TTL 2 cannot reach it");
        assert_eq!(out.stages_used, 2);
        assert_eq!(out.reply_messages, 0);
    }

    #[test]
    fn disconnected_target_never_found() {
        let mut adj = Adjacency::with_nodes(4);
        adj.add_edge(NodeId(0), NodeId(1));
        // 2,3 disconnected
        adj.add_edge(NodeId(2), NodeId(3));
        let mut st = stats();
        let out = expanding_ring_search(
            &adj,
            NodeId(0),
            NodeId(3),
            &[1, 2, 4],
            &mut st,
            SimTime::ZERO,
        );
        assert!(!out.found);
    }

    #[test]
    fn self_query_free() {
        let adj = path10();
        let mut st = stats();
        let out = expanding_ring_search(&adj, NodeId(4), NodeId(4), &[1], &mut st, SimTime::ZERO);
        assert!(out.found);
        assert_eq!(out.total_messages(), 0);
        assert_eq!(out.stages_used, 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_increasing_schedule_rejected() {
        let adj = path10();
        expanding_ring_search(
            &adj,
            NodeId(0),
            NodeId(1),
            &[2, 2],
            &mut stats(),
            SimTime::ZERO,
        );
    }

    #[test]
    fn doubling_schedule_shape() {
        assert_eq!(doubling_schedule(1), vec![1]);
        assert_eq!(doubling_schedule(8), vec![1, 2, 4, 8]);
        assert_eq!(doubling_schedule(10), vec![1, 2, 4, 8, 10]);
        assert_eq!(doubling_schedule(16), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn ers_cheaper_than_flood_for_near_targets() {
        use crate::flooding::flood_search;
        let adj = path10();
        let mut st1 = stats();
        let mut st2 = stats();
        let ers = expanding_ring_search(
            &adj,
            NodeId(0),
            NodeId(1),
            &doubling_schedule(9),
            &mut st1,
            SimTime::ZERO,
        );
        let fl = flood_search(&adj, NodeId(0), NodeId(1), &mut st2, SimTime::ZERO);
        assert!(ers.total_messages() < fl.total_messages());
    }
}

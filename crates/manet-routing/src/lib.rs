//! # manet-routing — routing substrates for the CARD reproduction
//!
//! CARD sits on top of a *proactive intra-neighborhood* routing layer and is
//! evaluated against two reactive discovery baselines. This crate implements
//! all of them:
//!
//! * [`neighborhood`] — R-hop neighborhood (zone) tables: membership,
//!   distances, edge nodes and intra-zone paths. These tables are the
//!   idealized converged state of a proactive protocol such as DSDV, which
//!   is exactly what the paper assumes (§III.C: "Each node proactively
//!   (using a protocol such as DSDV) maintains state for all the nodes in
//!   its neighborhood");
//! * [`dsdv`] — a real sequence-numbered distance-vector protocol, run in
//!   synchronous rounds, demonstrating that the oracle tables are attainable
//!   and at what message cost;
//! * [`network`] — [`network::Network`]: positions + connectivity +
//!   neighborhood tables + mobility stepping, the world object every
//!   experiment drives;
//! * [`flooding`] — global flooding search (baseline #1 of Fig 15);
//! * [`zrp`] — ZRP-style bordercasting with query detection QD1/QD2
//!   (baseline #2 of Fig 15, after Pearlman & Haas);
//! * [`expanding_ring`] — TTL-staged expanding ring search (the comparison
//!   point of §III.C.4, used in ablation benches).

#![warn(missing_docs)]
pub mod dsdv;
pub mod expanding_ring;
pub mod flooding;
pub mod neighborhood;
pub mod network;
pub mod zrp;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::dsdv::DsdvSim;
    pub use crate::expanding_ring::{expanding_ring_search, ErsOutcome};
    pub use crate::flooding::{flood_search, FloodOutcome};
    pub use crate::neighborhood::NeighborhoodTables;
    pub use crate::network::Network;
    pub use crate::zrp::{bordercast_search, BordercastConfig, BordercastOutcome, QueryDetection};
}

pub use dsdv::DsdvSim;
pub use expanding_ring::{expanding_ring_search, ErsOutcome};
pub use flooding::{flood_search, FloodOutcome};
pub use neighborhood::NeighborhoodTables;
pub use network::Network;
pub use zrp::{bordercast_search, BordercastConfig, BordercastOutcome, QueryDetection};

//! # manet-routing — routing substrates for the CARD reproduction
//!
//! CARD sits on top of a *proactive intra-neighborhood* routing layer and is
//! evaluated against two reactive discovery baselines. This crate implements
//! all of them:
//!
//! * [`neighborhood`] — R-hop neighborhood (zone) tables: membership,
//!   distances, edge nodes and intra-zone paths. These tables are the
//!   idealized converged state of a proactive protocol such as DSDV, which
//!   is exactly what the paper assumes (§III.C: "Each node proactively
//!   (using a protocol such as DSDV) maintains state for all the nodes in
//!   its neighborhood");
//! * [`dsdv`] — a real sequence-numbered distance-vector protocol, run in
//!   synchronous rounds, demonstrating that the oracle tables are attainable
//!   and at what message cost;
//! * [`network`] — [`network::Network`]: positions + connectivity +
//!   neighborhood tables + mobility stepping, the world object every
//!   experiment drives;
//! * [`flooding`] — global flooding search (baseline #1 of Fig 15);
//! * [`zrp`] — ZRP-style bordercasting with query detection QD1/QD2
//!   (baseline #2 of Fig 15, after Pearlman & Haas);
//! * [`expanding_ring`] — TTL-staged expanding ring search (the comparison
//!   point of §III.C.4, used in ablation benches).
//!
//! ## Memory model: O(zone) per node
//!
//! The paper's scalability claim (§III.C) rests on neighborhood state
//! staying *local* while the network grows; this crate enforces that for
//! the simulation's own memory too. Every per-node structure in
//! [`neighborhood`] is sized by the zone — sorted member ids, distances,
//! BFS parents, edge nodes, and a small Bloom fingerprint (~1 byte per
//! member) for fast-negative membership probes. Nothing per-node scales
//! with N (the former per-node N-bit membership bitset, O(N²/8) bytes in
//! total and ~1.25 GB at N = 10⁵, is gone), which is what lets
//! `repro --scale` run 10⁵-node worlds in tens of megabytes. Membership
//! tests are fingerprint-then-binary-search: no false negatives, and a
//! false positive only costs the O(log zone) confirm.
//!
//! ## Mover-driven incremental neighborhood refresh
//!
//! On a mobility tick, [`network::Network::advance`] (1) has the mobility
//! model report exactly which nodes changed position, (2) patches the
//! spatial grid and the CSR adjacency around those movers
//! (`Adjacency::patch_with_grid`: residency checks and row re-queries
//! only for movers and their cell-ball neighbors — the changed-row set
//! falls out of the patch, no O(N) diff), (3) marks as dirty exactly the
//! union of the (R−1)-hop balls around the changed nodes in the old and
//! new graphs, and (4) rebuilds only the dirty tables, fanned out over
//! the persistent `sim_core::par` worker pool with per-worker BFS
//! scratch. [`network::Network::refresh`] keeps the report-free variant
//! (wholesale rebuild + all-rows diff) for callers that mutate positions
//! directly, and every stage falls back to it on churn past the
//! thresholds.
//!
//! **Invariant:** after any refresh path, the tables are identical —
//! membership, distances, edge-node sets and path lengths — to what
//! [`network::Network::refresh_full`] (recompute everything) produces.
//! The (R−1)-ball is sufficient because a node's R-hop BFS only relaxes
//! edges incident to nodes at depth ≤ R−1; if no changed node is that
//! close in either snapshot, induction over BFS depth shows every frontier
//! is unchanged. `refresh_full` stays in the API as the reference path and
//! bench baseline; randomized equivalence is enforced by unit tests here
//! and `tests/topology_refresh.rs` at the workspace root.

#![warn(missing_docs)]
pub mod dsdv;
pub mod expanding_ring;
pub mod flooding;
pub mod neighborhood;
pub mod network;
pub mod zrp;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::dsdv::DsdvSim;
    pub use crate::expanding_ring::{expanding_ring_search, ErsOutcome};
    pub use crate::flooding::{flood_search, FloodOutcome};
    pub use crate::neighborhood::NeighborhoodTables;
    pub use crate::network::{Network, PipelineCounters};
    pub use crate::zrp::{bordercast_search, BordercastConfig, BordercastOutcome, QueryDetection};
}

pub use dsdv::DsdvSim;
pub use expanding_ring::{expanding_ring_search, ErsOutcome};
pub use flooding::{flood_search, FloodOutcome};
pub use neighborhood::NeighborhoodTables;
pub use network::{Network, PipelineCounters};
pub use zrp::{bordercast_search, BordercastConfig, BordercastOutcome, QueryDetection};

//! A zone-limited DSDV-style distance-vector protocol.
//!
//! The paper assumes "a protocol such as DSDV \[1\]" keeps each node's
//! neighborhood table current, and *excludes* that protocol's messages from
//! its overhead accounting (§IV.B counts only contact selection +
//! maintenance). The experiments therefore use the converged
//! [`crate::neighborhood::NeighborhoodTables`] directly — but to demonstrate
//! the substrate is real, this module implements the protocol itself:
//! sequence-numbered distance-vector updates, propagated hop-by-hop, with
//! propagation truncated at the zone radius R (entries at distance R are not
//! re-advertised, exactly the zone scoping IARP applies).
//!
//! Simplifications vs. full DSDV (documented, deliberate): updates happen in
//! synchronous rounds (one full-table broadcast per node per round) rather
//! than on independent timers, and broken links are handled by purging
//! routes through vanished neighbors at the start of a round instead of
//! odd-sequence-number poisoning. Neither changes the converged state,
//! which is what CARD consumes.

use net_topology::graph::Adjacency;
use net_topology::node::NodeId;
use std::collections::HashMap;

use crate::neighborhood::NeighborhoodTables;

/// One route entry: distance, first hop and origin sequence number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteEntry {
    /// Hop distance to the destination.
    pub dist: u16,
    /// Next hop toward the destination.
    pub next_hop: NodeId,
    /// Destination-origin sequence number (freshness).
    pub seq: u64,
}

/// Synchronous-round DSDV simulation over all nodes.
pub struct DsdvSim {
    radius: u16,
    /// Per node: destination -> entry. The self-route is implicit.
    tables: Vec<HashMap<NodeId, RouteEntry>>,
    /// Per node: own sequence number (bumped every round).
    own_seq: Vec<u64>,
    /// Total broadcast messages sent so far.
    messages: u64,
    rounds: u64,
}

impl DsdvSim {
    /// A cold-start protocol instance for `n` nodes with zone radius R.
    ///
    /// # Panics
    /// Panics if `radius == 0`.
    pub fn new(n: usize, radius: u16) -> Self {
        assert!(radius >= 1, "zone radius must be >= 1");
        DsdvSim {
            radius,
            tables: vec![HashMap::new(); n],
            own_seq: vec![0; n],
            messages: 0,
            rounds: 0,
        }
    }

    /// The zone radius R.
    pub fn radius(&self) -> u16 {
        self.radius
    }

    /// Total update broadcasts so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Look up `node`'s route to `dest` (self-routes excluded).
    pub fn route(&self, node: NodeId, dest: NodeId) -> Option<RouteEntry> {
        self.tables[node.index()].get(&dest).copied()
    }

    /// Number of destinations `node` currently knows (excluding itself).
    pub fn table_size(&self, node: NodeId) -> usize {
        self.tables[node.index()].len()
    }

    /// Execute one synchronous round over the current topology:
    /// 1. purge routes through vanished neighbors,
    /// 2. every node broadcasts its table (one message each),
    /// 3. receivers merge advertisements (newer seq wins; equal seq keeps
    ///    the shorter route), truncated at the zone radius.
    ///
    /// Returns `true` if any table changed (i.e. not yet converged).
    pub fn run_round(&mut self, adj: &Adjacency) -> bool {
        let n = self.tables.len();
        assert_eq!(n, adj.node_count(), "topology size changed");
        self.rounds += 1;

        // 1. Link-break handling.
        let mut changed = false;
        for u in 0..n {
            let before = self.tables[u].len();
            let keep = |e: &RouteEntry| adj.is_neighbor(NodeId::from(u), e.next_hop);
            self.tables[u].retain(|_, e| keep(e));
            if self.tables[u].len() != before {
                changed = true;
            }
        }

        // 2. Build all advertisements against the pre-round tables.
        //    Each node advertises itself (dist 0, fresh seq) plus every
        //    entry with dist < R (a receiver stores dist+1 <= R).
        let mut adverts: Vec<Vec<(NodeId, u16, u64)>> = Vec::with_capacity(n);
        for u in 0..n {
            self.own_seq[u] += 1;
            let mut ad = Vec::with_capacity(self.tables[u].len() + 1);
            ad.push((NodeId::from(u), 0, self.own_seq[u]));
            for (dest, e) in &self.tables[u] {
                if e.dist < self.radius {
                    ad.push((*dest, e.dist, e.seq));
                }
            }
            adverts.push(ad);
        }
        self.messages += n as u64;

        // 3. Merge at every receiver.
        for u in 0..n {
            let uid = NodeId::from(u);
            for &v in adj.neighbors(uid) {
                for &(dest, dist, seq) in &adverts[v.index()] {
                    if dest == uid {
                        continue;
                    }
                    let cand = RouteEntry {
                        dist: dist + 1,
                        next_hop: v,
                        seq,
                    };
                    if cand.dist > self.radius {
                        continue;
                    }
                    match self.tables[u].get(&dest) {
                        Some(cur)
                            if cur.seq > cand.seq
                                || (cur.seq == cand.seq && cur.dist <= cand.dist) => {}
                        _ => {
                            // Only mark changed when the route materially
                            // differs (seq bumps alone are routine).
                            let materially_new = match self.tables[u].get(&dest) {
                                Some(cur) => cur.dist != cand.dist || cur.next_hop != cand.next_hop,
                                None => true,
                            };
                            if materially_new {
                                changed = true;
                            }
                            self.tables[u].insert(dest, cand);
                        }
                    }
                }
            }
        }
        changed
    }

    /// Run rounds until no table changes or `max_rounds` is hit. Returns the
    /// number of rounds executed in this call.
    pub fn run_until_converged(&mut self, adj: &Adjacency, max_rounds: usize) -> usize {
        for i in 0..max_rounds {
            if !self.run_round(adj) {
                return i + 1;
            }
        }
        max_rounds
    }

    /// Does every node's converged table match the BFS oracle: same member
    /// set (minus self) and same distances?
    pub fn matches_oracle(&self, oracle: &NeighborhoodTables) -> bool {
        let n = self.tables.len();
        for u in 0..n {
            let uid = NodeId::from(u);
            let nb = oracle.of(uid);
            // every oracle member (except self) has a table entry with the
            // right distance
            for m in nb.iter_members() {
                if m == uid {
                    continue;
                }
                match self.route(uid, m) {
                    Some(e) if Some(e.dist) == nb.distance(m) => {}
                    _ => return false,
                }
            }
            // and no spurious entries
            if self.table_size(uid) != nb.size() - 1 {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: u32) -> Adjacency {
        let mut adj = Adjacency::with_nodes(n as usize);
        for i in 0..n - 1 {
            adj.add_edge(NodeId(i), NodeId(i + 1));
        }
        adj
    }

    #[test]
    fn converges_to_oracle_on_path() {
        let adj = path(8);
        let oracle = NeighborhoodTables::compute(&adj, 3);
        let mut dsdv = DsdvSim::new(8, 3);
        let rounds = dsdv.run_until_converged(&adj, 20);
        assert!(rounds <= 5, "R+1 rounds should suffice, took {rounds}");
        assert!(dsdv.matches_oracle(&oracle));
        assert_eq!(dsdv.messages(), 8 * dsdv.rounds());
    }

    #[test]
    fn distances_truncate_at_radius() {
        let adj = path(10);
        let mut dsdv = DsdvSim::new(10, 2);
        dsdv.run_until_converged(&adj, 20);
        // node 0 must know 1 and 2 but not 3
        assert_eq!(dsdv.route(NodeId(0), NodeId(1)).unwrap().dist, 1);
        assert_eq!(dsdv.route(NodeId(0), NodeId(2)).unwrap().dist, 2);
        assert!(dsdv.route(NodeId(0), NodeId(3)).is_none());
        assert_eq!(dsdv.table_size(NodeId(0)), 2);
    }

    #[test]
    fn next_hops_are_valid_neighbors() {
        let adj = path(8);
        let mut dsdv = DsdvSim::new(8, 3);
        dsdv.run_until_converged(&adj, 20);
        for u in NodeId::all(8) {
            for dest in NodeId::all(8) {
                if let Some(e) = dsdv.route(u, dest) {
                    assert!(
                        adj.is_neighbor(u, e.next_hop),
                        "{u}->{dest} via non-neighbor"
                    );
                    // next hop is strictly closer to dest
                    if let Some(e2) = dsdv.route(e.next_hop, dest) {
                        assert_eq!(e2.dist, e.dist - 1);
                    } else {
                        assert_eq!(e.dist, 1, "if next hop has no route, dest IS the next hop");
                    }
                }
            }
        }
    }

    #[test]
    fn reconverges_after_link_break() {
        // 0-1-2 triangle edge and a chain: removing an edge lengthens routes.
        let mut adj = Adjacency::with_nodes(4);
        adj.add_edge(NodeId(0), NodeId(1));
        adj.add_edge(NodeId(1), NodeId(2));
        adj.add_edge(NodeId(0), NodeId(2)); // shortcut
        adj.add_edge(NodeId(2), NodeId(3));
        let mut dsdv = DsdvSim::new(4, 3);
        dsdv.run_until_converged(&adj, 20);
        assert_eq!(dsdv.route(NodeId(0), NodeId(2)).unwrap().dist, 1);

        adj.remove_edge(NodeId(0), NodeId(2));
        dsdv.run_until_converged(&adj, 20);
        let oracle = NeighborhoodTables::compute(&adj, 3);
        assert!(dsdv.matches_oracle(&oracle), "must reconverge after break");
        assert_eq!(dsdv.route(NodeId(0), NodeId(2)).unwrap().dist, 2);
    }

    #[test]
    fn reconverges_after_link_appears() {
        let mut adj = path(5);
        let mut dsdv = DsdvSim::new(5, 4);
        dsdv.run_until_converged(&adj, 20);
        assert_eq!(dsdv.route(NodeId(0), NodeId(4)).unwrap().dist, 4);
        adj.add_edge(NodeId(0), NodeId(4));
        dsdv.run_until_converged(&adj, 20);
        assert_eq!(dsdv.route(NodeId(0), NodeId(4)).unwrap().dist, 1);
        let oracle = NeighborhoodTables::compute(&adj, 4);
        assert!(dsdv.matches_oracle(&oracle));
    }

    #[test]
    fn message_cost_is_n_per_round() {
        let adj = path(6);
        let mut dsdv = DsdvSim::new(6, 2);
        dsdv.run_round(&adj);
        assert_eq!(dsdv.messages(), 6);
        dsdv.run_round(&adj);
        assert_eq!(dsdv.messages(), 12);
        assert_eq!(dsdv.rounds(), 2);
    }

    #[test]
    fn isolated_nodes_have_empty_tables() {
        let adj = Adjacency::with_nodes(3); // no edges
        let mut dsdv = DsdvSim::new(3, 2);
        dsdv.run_until_converged(&adj, 5);
        for u in NodeId::all(3) {
            assert_eq!(dsdv.table_size(u), 0);
        }
        let oracle = NeighborhoodTables::compute(&adj, 2);
        assert!(dsdv.matches_oracle(&oracle));
    }

    #[test]
    #[should_panic(expected = "zone radius")]
    fn zero_radius_rejected() {
        DsdvSim::new(3, 0);
    }

    #[test]
    fn converges_on_random_topology() {
        use net_topology::scenario::Scenario;
        let (_, adj) = Scenario::new(80, 300.0, 300.0, 60.0).instantiate(3);
        let oracle = NeighborhoodTables::compute(&adj, 3);
        let mut dsdv = DsdvSim::new(80, 3);
        dsdv.run_until_converged(&adj, 30);
        assert!(dsdv.matches_oracle(&oracle));
    }
}

//! Dense node identifiers.
//!
//! Nodes are numbered `0..N`, so a `NodeId` doubles as an index into the
//! per-node arrays (positions, adjacency, tables) that every layer of the
//! reproduction uses. A `u32` keeps hot structures compact (the paper's
//! networks top out at thousands of nodes).

use core::fmt;

/// A node handle: a dense index in `0..N`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Construct from a dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index as `usize` (for array access).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Iterator over all ids `0..n`.
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> {
        (0..n as u32).map(NodeId)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        debug_assert!(v <= u32::MAX as usize);
        NodeId(v as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(NodeId::from(42u32), id);
        assert_eq!(NodeId::from(42usize), id);
    }

    #[test]
    fn all_enumerates_dense_range() {
        let ids: Vec<NodeId> = NodeId::all(3).collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(NodeId::all(0).count(), 0);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", NodeId(7)), "n7");
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        let mut v = vec![NodeId(3), NodeId(1), NodeId(2)];
        v.sort();
        assert_eq!(v, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }
}

//! The unit-disk connectivity graph.
//!
//! [`Adjacency`] stores, for each node, the sorted list of nodes within
//! transmission range. It is rebuilt from positions (via [`SpatialGrid`])
//! whenever mobility moves nodes, and queried constantly by every protocol
//! layer (`is_neighbor` is the "is the next hop still there?" check in
//! contact maintenance).

use crate::geometry::{Field, Point2};
use crate::grid::SpatialGrid;
use crate::node::NodeId;

/// Symmetric adjacency lists for the unit-disk graph.
#[derive(Clone, Debug, Default)]
pub struct Adjacency {
    neighbors: Vec<Vec<NodeId>>,
}

impl Adjacency {
    /// An empty graph over `n` nodes.
    pub fn with_nodes(n: usize) -> Self {
        Adjacency { neighbors: vec![Vec::new(); n] }
    }

    /// Build from positions with the given transmission `range`, using a
    /// spatial grid (O(N · avg-degree)).
    pub fn build(field: Field, positions: &[Point2], range: f64) -> Self {
        let mut grid = SpatialGrid::new(field, range);
        grid.rebuild(positions);
        Self::build_with_grid(&mut grid, positions, range)
    }

    /// Build from positions, reusing a caller-owned grid (the grid is
    /// rebuilt from `positions` first). Useful on mobility ticks to avoid
    /// reallocating the grid each time.
    pub fn build_with_grid(grid: &mut SpatialGrid, positions: &[Point2], range: f64) -> Self {
        grid.rebuild(positions);
        let mut adj = Adjacency::with_nodes(positions.len());
        for (i, &p) in positions.iter().enumerate() {
            let id = NodeId::from(i);
            let list = &mut adj.neighbors[i];
            grid.for_each_within(positions, p, range, Some(id), |nb| list.push(nb));
            list.sort_unstable();
        }
        adj
    }

    /// Rebuild in place (reusing allocations) from new positions.
    pub fn rebuild_with_grid(&mut self, grid: &mut SpatialGrid, positions: &[Point2], range: f64) {
        grid.rebuild(positions);
        self.neighbors.resize_with(positions.len(), Vec::new);
        for (i, &p) in positions.iter().enumerate() {
            let id = NodeId::from(i);
            let list = &mut self.neighbors[i];
            list.clear();
            grid.for_each_within(positions, p, range, Some(id), |nb| list.push(nb));
            list.sort_unstable();
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.neighbors.len()
    }

    /// Sorted direct (1-hop) neighbors of `node`.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.neighbors[node.index()]
    }

    /// Degree of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.neighbors[node.index()].len()
    }

    /// Are `a` and `b` directly connected? (binary search on the sorted list)
    #[inline]
    pub fn is_neighbor(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors[a.index()].binary_search(&b).is_ok()
    }

    /// Total number of undirected links.
    pub fn link_count(&self) -> usize {
        self.neighbors.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Average node degree.
    pub fn avg_degree(&self) -> f64 {
        if self.neighbors.is_empty() {
            return 0.0;
        }
        self.neighbors.iter().map(Vec::len).sum::<usize>() as f64 / self.neighbors.len() as f64
    }

    /// Add an undirected edge (used by tests and synthetic topologies).
    ///
    /// # Panics
    /// Panics on self-loops.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        assert_ne!(a, b, "self-loop");
        for (x, y) in [(a, b), (b, a)] {
            let list = &mut self.neighbors[x.index()];
            if let Err(pos) = list.binary_search(&y) {
                list.insert(pos, y);
            }
        }
    }

    /// Remove an undirected edge if present.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) {
        for (x, y) in [(a, b), (b, a)] {
            let list = &mut self.neighbors[x.index()];
            if let Ok(pos) = list.binary_search(&y) {
                list.remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Three nodes in a line, 40 m apart, range 50 m: 0-1 and 1-2 connect,
    /// 0-2 (80 m) does not.
    fn line3() -> (Field, Vec<Point2>) {
        (
            Field::square(200.0),
            vec![
                Point2::new(10.0, 10.0),
                Point2::new(50.0, 10.0),
                Point2::new(90.0, 10.0),
            ],
        )
    }

    #[test]
    fn build_line_topology() {
        let (field, pos) = line3();
        let adj = Adjacency::build(field, &pos, 50.0);
        assert_eq!(adj.node_count(), 3);
        assert_eq!(adj.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(adj.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
        assert_eq!(adj.neighbors(NodeId(2)), &[NodeId(1)]);
        assert!(adj.is_neighbor(NodeId(0), NodeId(1)));
        assert!(!adj.is_neighbor(NodeId(0), NodeId(2)));
        assert_eq!(adj.link_count(), 2);
        assert!((adj.avg_degree() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(adj.degree(NodeId(1)), 2);
    }

    #[test]
    fn symmetry_of_links() {
        let (field, pos) = line3();
        let adj = Adjacency::build(field, &pos, 50.0);
        for a in NodeId::all(3) {
            for &b in adj.neighbors(a) {
                assert!(adj.is_neighbor(b, a), "{a}-{b} not symmetric");
            }
        }
    }

    #[test]
    fn rebuild_reflects_movement() {
        let (field, mut pos) = line3();
        let mut grid = SpatialGrid::new(field, 50.0);
        let mut adj = Adjacency::build_with_grid(&mut grid, &pos, 50.0);
        assert!(adj.is_neighbor(NodeId(0), NodeId(1)));
        // node 1 walks out of everyone's range
        pos[1] = Point2::new(190.0, 190.0);
        adj.rebuild_with_grid(&mut grid, &pos, 50.0);
        assert_eq!(adj.degree(NodeId(1)), 0);
        assert!(!adj.is_neighbor(NodeId(0), NodeId(1)));
    }

    #[test]
    fn add_remove_edge() {
        let mut adj = Adjacency::with_nodes(4);
        adj.add_edge(NodeId(0), NodeId(2));
        adj.add_edge(NodeId(0), NodeId(2)); // idempotent
        assert!(adj.is_neighbor(NodeId(0), NodeId(2)));
        assert!(adj.is_neighbor(NodeId(2), NodeId(0)));
        assert_eq!(adj.link_count(), 1);
        adj.remove_edge(NodeId(0), NodeId(2));
        assert_eq!(adj.link_count(), 0);
        adj.remove_edge(NodeId(0), NodeId(2)); // removing absent edge is fine
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        Adjacency::with_nodes(2).add_edge(NodeId(1), NodeId(1));
    }

    #[test]
    fn exact_range_boundary_connects() {
        let field = Field::square(100.0);
        let pos = vec![Point2::new(0.0, 0.0), Point2::new(50.0, 0.0)];
        let adj = Adjacency::build(field, &pos, 50.0);
        assert!(adj.is_neighbor(NodeId(0), NodeId(1)), "distance == range is connected");
    }

    proptest! {
        /// Grid-accelerated construction matches the O(N²) definition.
        #[test]
        fn prop_build_matches_naive(
            pts in proptest::collection::vec((0.0..710.0f64, 0.0..710.0f64), 1..80),
            range in 10.0..100.0f64,
        ) {
            let field = Field::square(710.0);
            let positions: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let adj = Adjacency::build(field, &positions, range);
            let r_sq = range * range;
            for i in 0..positions.len() {
                for j in 0..positions.len() {
                    if i == j { continue; }
                    let expect = positions[i].dist_sq(positions[j]) <= r_sq;
                    prop_assert_eq!(
                        adj.is_neighbor(NodeId::from(i), NodeId::from(j)),
                        expect,
                        "pair ({}, {})", i, j
                    );
                }
            }
        }
    }
}

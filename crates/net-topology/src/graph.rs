//! The unit-disk connectivity graph.
//!
//! [`Adjacency`] stores, for each node, the sorted list of nodes within
//! transmission range. It is rebuilt from positions (via [`SpatialGrid`])
//! whenever mobility moves nodes, and queried constantly by every protocol
//! layer (`is_neighbor` is the "is the next hop still there?" check in
//! contact maintenance).
//!
//! ## Layout
//!
//! The graph is kept in *compressed sparse row* (CSR) form: one flat
//! [`Vec<NodeId>`] of neighbor entries plus an `offsets` array with node
//! `i`'s neighbors at `edges[offsets[i]..offsets[i + 1]]`, each slice
//! sorted by id. Compared to a `Vec<Vec<NodeId>>`, this is two allocations
//! instead of `N + 1`, it rebuilds in place with zero per-node allocation
//! on every mobility tick, and BFS walks touch one contiguous cache-friendly
//! buffer. `add_edge` / `remove_edge` splice the flat buffer (O(E)); they
//! exist for tests and synthetic topologies, not for the mobility hot path,
//! which always rebuilds wholesale from the spatial grid.

use crate::geometry::{Field, Point2};
use crate::grid::SpatialGrid;
use crate::node::NodeId;

/// Symmetric adjacency for the unit-disk graph, in CSR layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Adjacency {
    /// Node `i`'s neighbors live at `edges[offsets[i] .. offsets[i + 1]]`.
    /// Always `node_count() + 1` entries; `offsets[0] == 0`.
    offsets: Vec<u32>,
    /// Flat neighbor entries, sorted by id within each node's slice.
    edges: Vec<NodeId>,
}

impl Default for Adjacency {
    fn default() -> Self {
        Adjacency {
            offsets: vec![0],
            edges: Vec::new(),
        }
    }
}

impl Adjacency {
    /// An empty graph over `n` nodes.
    pub fn with_nodes(n: usize) -> Self {
        Adjacency {
            offsets: vec![0; n + 1],
            edges: Vec::new(),
        }
    }

    /// Build from positions with the given transmission `range`, using a
    /// spatial grid (O(N · avg-degree)).
    pub fn build(field: Field, positions: &[Point2], range: f64) -> Self {
        let mut grid = SpatialGrid::new(field, range);
        Self::build_with_grid(&mut grid, positions, range)
    }

    /// Build from positions, reusing a caller-owned grid (the grid is
    /// rebuilt from `positions` first). Useful on mobility ticks to avoid
    /// reallocating the grid each time.
    pub fn build_with_grid(grid: &mut SpatialGrid, positions: &[Point2], range: f64) -> Self {
        let mut adj = Adjacency::with_nodes(positions.len());
        adj.rebuild_with_grid(grid, positions, range);
        adj
    }

    /// Rebuild in place (reusing both CSR buffers) from new positions.
    ///
    /// The grid is brought up to date with [`SpatialGrid::update`]: only
    /// nodes that crossed a cell boundary are re-bucketed (with automatic
    /// full-relayout fallback on heavy churn), so a low-motion mobility
    /// tick no longer rewrites every grid entry before the range queries.
    pub fn rebuild_with_grid(&mut self, grid: &mut SpatialGrid, positions: &[Point2], range: f64) {
        grid.update(positions);
        let n = positions.len();
        self.offsets.clear();
        self.offsets.reserve(n + 1);
        self.edges.clear();
        for (i, &p) in positions.iter().enumerate() {
            let id = NodeId::from(i);
            let start = self.edges.len();
            self.offsets.push(start as u32);
            let edges = &mut self.edges;
            grid.for_each_within(positions, p, range, Some(id), |nb| edges.push(nb));
            self.edges[start..].sort_unstable();
        }
        debug_assert!(
            self.edges.len() <= u32::MAX as usize,
            "edge count overflows CSR offsets"
        );
        self.offsets.push(self.edges.len() as u32);
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Sorted direct (1-hop) neighbors of `node`.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        &self.edges[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Degree of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        let i = node.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Are `a` and `b` directly connected? (binary search on the sorted slice)
    #[inline]
    pub fn is_neighbor(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Total number of undirected links.
    pub fn link_count(&self) -> usize {
        self.edges.len() / 2
    }

    /// Average node degree.
    pub fn avg_degree(&self) -> f64 {
        let n = self.node_count();
        if n == 0 {
            return 0.0;
        }
        self.edges.len() as f64 / n as f64
    }

    /// The raw CSR buffers `(offsets, edges)` (tests, benches, metrics).
    pub fn csr(&self) -> (&[u32], &[NodeId]) {
        (&self.offsets, &self.edges)
    }

    /// Do `a`'s neighbors differ between `self` and `other`? Nodes present
    /// in only one of the two graphs count as changed. This is the edge
    /// diff the incremental neighborhood refresh is built on.
    #[inline]
    pub fn neighbors_changed(&self, other: &Adjacency, a: NodeId) -> bool {
        if a.index() >= self.node_count() || a.index() >= other.node_count() {
            return true;
        }
        self.neighbors(a) != other.neighbors(a)
    }

    /// Insert `y` into `x`'s sorted slice if absent (O(E) splice).
    fn insert_half_edge(&mut self, x: NodeId, y: NodeId) {
        let i = x.index();
        let start = self.offsets[i] as usize;
        if let Err(pos) = self.neighbors(x).binary_search(&y) {
            self.edges.insert(start + pos, y);
            for off in &mut self.offsets[i + 1..] {
                *off += 1;
            }
        }
    }

    /// Remove `y` from `x`'s sorted slice if present (O(E) splice).
    fn remove_half_edge(&mut self, x: NodeId, y: NodeId) {
        let i = x.index();
        let start = self.offsets[i] as usize;
        if let Ok(pos) = self.neighbors(x).binary_search(&y) {
            self.edges.remove(start + pos);
            for off in &mut self.offsets[i + 1..] {
                *off -= 1;
            }
        }
    }

    /// Add an undirected edge (used by tests and synthetic topologies).
    ///
    /// # Panics
    /// Panics on self-loops.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        assert_ne!(a, b, "self-loop");
        self.insert_half_edge(a, b);
        self.insert_half_edge(b, a);
    }

    /// Remove an undirected edge if present.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) {
        self.remove_half_edge(a, b);
        self.remove_half_edge(b, a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Check the CSR structural invariants.
    fn assert_csr_invariants(adj: &Adjacency) {
        let (offsets, edges) = adj.csr();
        assert_eq!(offsets.len(), adj.node_count() + 1);
        assert_eq!(offsets[0], 0);
        assert_eq!(*offsets.last().unwrap() as usize, edges.len());
        for w in offsets.windows(2) {
            assert!(w[0] <= w[1], "offsets must be monotone");
        }
        for node in NodeId::all(adj.node_count()) {
            let nbs = adj.neighbors(node);
            for w in nbs.windows(2) {
                assert!(w[0] < w[1], "neighbor slice of {node} not strictly sorted");
            }
        }
    }

    /// Three nodes in a line, 40 m apart, range 50 m: 0-1 and 1-2 connect,
    /// 0-2 (80 m) does not.
    fn line3() -> (Field, Vec<Point2>) {
        (
            Field::square(200.0),
            vec![
                Point2::new(10.0, 10.0),
                Point2::new(50.0, 10.0),
                Point2::new(90.0, 10.0),
            ],
        )
    }

    #[test]
    fn build_line_topology() {
        let (field, pos) = line3();
        let adj = Adjacency::build(field, &pos, 50.0);
        assert_eq!(adj.node_count(), 3);
        assert_eq!(adj.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(adj.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
        assert_eq!(adj.neighbors(NodeId(2)), &[NodeId(1)]);
        assert!(adj.is_neighbor(NodeId(0), NodeId(1)));
        assert!(!adj.is_neighbor(NodeId(0), NodeId(2)));
        assert_eq!(adj.link_count(), 2);
        assert!((adj.avg_degree() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(adj.degree(NodeId(1)), 2);
        assert_csr_invariants(&adj);
    }

    #[test]
    fn symmetry_of_links() {
        let (field, pos) = line3();
        let adj = Adjacency::build(field, &pos, 50.0);
        for a in NodeId::all(3) {
            for &b in adj.neighbors(a) {
                assert!(adj.is_neighbor(b, a), "{a}-{b} not symmetric");
            }
        }
    }

    #[test]
    fn rebuild_reflects_movement() {
        let (field, mut pos) = line3();
        let mut grid = SpatialGrid::new(field, 50.0);
        let mut adj = Adjacency::build_with_grid(&mut grid, &pos, 50.0);
        assert!(adj.is_neighbor(NodeId(0), NodeId(1)));
        // node 1 walks out of everyone's range
        pos[1] = Point2::new(190.0, 190.0);
        adj.rebuild_with_grid(&mut grid, &pos, 50.0);
        assert_eq!(adj.degree(NodeId(1)), 0);
        assert!(!adj.is_neighbor(NodeId(0), NodeId(1)));
        assert_csr_invariants(&adj);
    }

    #[test]
    fn add_remove_edge() {
        let mut adj = Adjacency::with_nodes(4);
        adj.add_edge(NodeId(0), NodeId(2));
        adj.add_edge(NodeId(0), NodeId(2)); // idempotent
        assert!(adj.is_neighbor(NodeId(0), NodeId(2)));
        assert!(adj.is_neighbor(NodeId(2), NodeId(0)));
        assert_eq!(adj.link_count(), 1);
        assert_csr_invariants(&adj);
        adj.remove_edge(NodeId(0), NodeId(2));
        assert_eq!(adj.link_count(), 0);
        adj.remove_edge(NodeId(0), NodeId(2)); // removing absent edge is fine
        assert_csr_invariants(&adj);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        Adjacency::with_nodes(2).add_edge(NodeId(1), NodeId(1));
    }

    #[test]
    fn exact_range_boundary_connects() {
        let field = Field::square(100.0);
        let pos = vec![Point2::new(0.0, 0.0), Point2::new(50.0, 0.0)];
        let adj = Adjacency::build(field, &pos, 50.0);
        assert!(
            adj.is_neighbor(NodeId(0), NodeId(1)),
            "distance == range is connected"
        );
    }

    #[test]
    fn rebuild_handles_node_count_changes() {
        let field = Field::square(200.0);
        let mut grid = SpatialGrid::new(field, 50.0);
        let mut adj = Adjacency::build_with_grid(
            &mut grid,
            &[Point2::new(10.0, 10.0), Point2::new(40.0, 10.0)],
            50.0,
        );
        assert_eq!(adj.node_count(), 2);
        let more = vec![
            Point2::new(10.0, 10.0),
            Point2::new(40.0, 10.0),
            Point2::new(70.0, 10.0),
        ];
        adj.rebuild_with_grid(&mut grid, &more, 50.0);
        assert_eq!(adj.node_count(), 3);
        assert!(adj.is_neighbor(NodeId(1), NodeId(2)));
        assert_csr_invariants(&adj);
    }

    /// Reference O(N²) construction straight from the unit-disk definition.
    fn naive_build(positions: &[Point2], range: f64) -> Vec<Vec<NodeId>> {
        let r_sq = range * range;
        (0..positions.len())
            .map(|i| {
                (0..positions.len())
                    .filter(|&j| j != i && positions[i].dist_sq(positions[j]) <= r_sq)
                    .map(NodeId::from)
                    .collect()
            })
            .collect()
    }

    proptest! {
        /// Grid-accelerated CSR construction is edge-for-edge identical to
        /// the O(N²) definition: same neighbor slice for every node.
        #[test]
        fn prop_build_matches_naive(
            pts in proptest::collection::vec((0.0..710.0f64, 0.0..710.0f64), 1..80),
            range in 10.0..100.0f64,
        ) {
            let field = Field::square(710.0);
            let positions: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let adj = Adjacency::build(field, &positions, range);
            let naive = naive_build(&positions, range);
            for (i, expect) in naive.iter().enumerate() {
                prop_assert_eq!(
                    adj.neighbors(NodeId::from(i)),
                    &expect[..],
                    "neighbor slice of node {} differs", i
                );
            }
        }

        /// In-place rebuild from moved positions equals a fresh build, and
        /// the CSR invariants hold after every rebuild.
        #[test]
        fn prop_rebuild_equals_fresh_build(
            pts in proptest::collection::vec((0.0..710.0f64, 0.0..710.0f64), 1..60),
            moved in proptest::collection::vec((0.0..710.0f64, 0.0..710.0f64), 1..60),
            range in 10.0..100.0f64,
        ) {
            let field = Field::square(710.0);
            let first: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let second: Vec<Point2> = moved.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let mut grid = SpatialGrid::new(field, range);
            let mut adj = Adjacency::build_with_grid(&mut grid, &first, range);
            adj.rebuild_with_grid(&mut grid, &second, range);
            let fresh = Adjacency::build(field, &second, range);
            prop_assert_eq!(&adj, &fresh);
            assert_csr_invariants(&adj);
        }
    }
}

//! The unit-disk connectivity graph.
//!
//! [`Adjacency`] stores, for each node, the sorted list of nodes within
//! transmission range. It is kept up to date from positions (via
//! [`SpatialGrid`]) whenever mobility moves nodes, and queried constantly
//! by every protocol layer (`is_neighbor` is the "is the next hop still
//! there?" check in contact maintenance).
//!
//! ## Layout
//!
//! The graph is kept in *compressed sparse row* (CSR) form with per-row
//! slack: one flat [`Vec<NodeId>`] of neighbor entries, an `offsets` array
//! with node `i`'s row *capacity* spanning `edges[offsets[i] ..
//! offsets[i + 1]]`, and a `lens` array so only the first `lens[i]` slots
//! are live (sorted by id); the rest of each row is slack. Compared to a
//! `Vec<Vec<NodeId>>`, this is three allocations instead of `N + 1`,
//! rebuilds in place with zero per-node allocation, and BFS walks touch
//! one contiguous cache-friendly buffer.
//!
//! ## Mover-driven patching
//!
//! [`Adjacency::rebuild_with_grid`] re-queries the 3×3 cell ball of *every*
//! node — O(N · avg-degree) per call. It stays as the reference path, but
//! the mobility hot path is [`Adjacency::patch_with_grid`]: given the set
//! of nodes that actually moved this tick, only the movers and the nodes
//! whose link set a mover may have touched (found via the movers' old and
//! new 3×3 cell balls) are re-queried, and their rows are rewritten in
//! place inside the slack. A row outgrowing its slack triggers a whole-CSR
//! compaction that re-provisions slack (rare); mover churn past a
//! threshold falls back to the full rebuild, so heavy motion degrades to
//! exactly the old cost rather than to patch churn.
//!
//! `add_edge` / `remove_edge` splice a single row in place (growing the
//! CSR only when the row's slack is exhausted); they exist for tests and
//! synthetic topologies, not for the mobility hot path.

use crate::geometry::{Field, Point2};
use crate::grid::{self, GridUpdate, SpatialGrid};
use crate::node::NodeId;
use crate::plane::{KernelScratch, KernelStats, PositionPlane};
use sim_core::par;

/// Sentinel written into slack slots (never read on any query path; it
/// exists so stale ids in the gaps can't masquerade as live edges when
/// eyeballing dumps).
const FILLER: NodeId = NodeId(u32::MAX);

/// Churn fallback: if more than `max(N / PATCH_CHURN_DIVISOR,
/// PATCH_CHURN_FLOOR)` nodes moved in one tick, patching (roughly nine
/// cell scans plus one range query per mover) costs more than one full
/// rebuild (one range query per node), so
/// [`Adjacency::patch_with_grid`] falls back to the wholesale path. The
/// floor keeps tiny graphs — where the ratio test degenerates to "any
/// mover at all" — on the patch path, since a handful of rows is cheap
/// either way.
const PATCH_CHURN_DIVISOR: usize = 8;
/// See [`PATCH_CHURN_DIVISOR`].
const PATCH_CHURN_FLOOR: usize = 4;

/// Outcome of an [`Adjacency::patch_with_grid`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdjacencyUpdate {
    /// Only candidate rows (movers plus their cell-ball neighbors) were
    /// re-queried; the rest of the CSR was not touched.
    Patched {
        /// Rows re-queried against the grid this tick.
        rows_patched: usize,
        /// Rows whose neighbor set actually changed (⊆ `rows_patched`).
        rows_changed: usize,
        /// Whole-CSR re-layouts triggered by row-slack overflow.
        compactions: usize,
        /// What the spatial grid did underneath.
        grid: GridUpdate,
    },
    /// Full-rebuild fallback ran (node-count change or mover churn past
    /// the threshold). The caller must treat every row as potentially
    /// changed.
    Full {
        /// What the spatial grid did underneath (the grid may still have
        /// re-bucketed incrementally even though every CSR row was
        /// re-queried).
        grid: GridUpdate,
    },
}

/// Reusable workspace for [`Adjacency::patch_with_grid`] (epoch-stamped
/// candidate dedup plus row scratch — no allocation in the steady state).
///
/// The scratch doubles as the patch's **per-row undo log**: for every row
/// the patch actually rewrote, the pre-patch live neighbor slice is saved
/// (O(changed · degree) copies — exactly the data that changed, never the
/// whole CSR). Callers that need the *old* graph after a patch — the
/// mover-driven refresh walks it for the old-snapshot dirty ball — read it
/// back through [`PatchScratch::undo_count`] / [`PatchScratch::undo_entry`]
/// instead of keeping an O(E) snapshot copy.
#[derive(Clone, Debug, Default)]
pub struct PatchScratch {
    /// `stamp[i] == epoch` ⇔ node `i` is already a candidate this patch.
    stamp: Vec<u32>,
    epoch: u32,
    /// Candidate rows of the current patch, in discovery order.
    candidates: Vec<NodeId>,
    /// The freshly recomputed row being compared/written.
    row: Vec<NodeId>,
    /// Undo log: `(rewritten row, offset into undo_edges)` per changed row
    /// of the last patch, in the same order as the `changed` output.
    undo_rows: Vec<(NodeId, u32)>,
    /// Flat pre-patch row contents; row `k` of the log spans
    /// `undo_rows[k].1 .. undo_rows[k + 1].1` (or the buffer end).
    undo_edges: Vec<NodeId>,
}

impl PatchScratch {
    /// Fresh scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a new patch over `n` nodes: bump the epoch (recycling the
    /// stamp array without clearing it) and reset the candidate list and
    /// undo log.
    fn begin(&mut self, n: usize) {
        self.stamp.resize(n, 0);
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.candidates.clear();
        self.undo_rows.clear();
        self.undo_edges.clear();
    }

    /// Number of rows in the undo log of the last patch (equals the
    /// changed-row count of a [`AdjacencyUpdate::Patched`] outcome; stale
    /// after a [`AdjacencyUpdate::Full`] fallback, which logs nothing).
    pub fn undo_count(&self) -> usize {
        self.undo_rows.len()
    }

    /// The `k`-th undo entry: the rewritten row and its *pre-patch* live
    /// neighbor slice.
    ///
    /// # Panics
    /// Panics if `k >= undo_count()`.
    pub fn undo_entry(&self, k: usize) -> (NodeId, &[NodeId]) {
        let (node, start) = self.undo_rows[k];
        let end = self
            .undo_rows
            .get(k + 1)
            .map_or(self.undo_edges.len(), |&(_, s)| s as usize);
        (node, &self.undo_edges[start as usize..end])
    }
}

/// Symmetric adjacency for the unit-disk graph, in slack-row CSR layout.
#[derive(Debug)]
pub struct Adjacency {
    /// Node `i`'s row capacity spans `edges[offsets[i] .. offsets[i + 1]]`.
    /// Always `node_count() + 1` entries; `offsets[0] == 0`.
    offsets: Vec<u32>,
    /// Live neighbor count per row (`lens[i] <= offsets[i+1] - offsets[i]`).
    lens: Vec<u32>,
    /// Flat neighbor entries, sorted by id within each live row prefix;
    /// slack tails hold [`FILLER`].
    edges: Vec<NodeId>,
    /// Running total of live entries (`Σ lens`), so `link_count` /
    /// `avg_degree` stay O(1) instead of summing N rows. Maintained by
    /// every mutation; checked against the row sum in test invariants.
    live: usize,
    /// Per-row base slack applied by every layout pass (`row_slack`).
    /// The serial reference rebuild pins it at 1 (the historical policy);
    /// the parallel rebuild derives it from the degree histogram so big
    /// graphs provision enough headroom that patch-time row growth stops
    /// triggering whole-CSR `reprovision` storms. Pure layout — never
    /// affects logical equality or the canonical CSR.
    slack_base: u32,
}

impl Default for Adjacency {
    fn default() -> Self {
        Adjacency {
            offsets: vec![0],
            lens: Vec::new(),
            edges: Vec::new(),
            live: 0,
            slack_base: 1,
        }
    }
}

impl Clone for Adjacency {
    fn clone(&self) -> Self {
        Adjacency {
            offsets: self.offsets.clone(),
            lens: self.lens.clone(),
            edges: self.edges.clone(),
            live: self.live,
            slack_base: self.slack_base,
        }
    }

    /// Buffer-reusing clone: the mobility tick double-buffers snapshots
    /// with `clone_from` every tick, so this must be memcpy, not realloc.
    fn clone_from(&mut self, source: &Self) {
        self.offsets.clone_from(&source.offsets);
        self.lens.clone_from(&source.lens);
        self.edges.clone_from(&source.edges);
        self.live = source.live;
        self.slack_base = source.slack_base;
    }
}

/// Structural equality is *logical*: same node count and same live
/// neighbor slice per node. Slack sizing and slack contents are layout,
/// not graph, and must never affect comparisons.
impl PartialEq for Adjacency {
    fn eq(&self, other: &Self) -> bool {
        self.node_count() == other.node_count()
            && NodeId::all(self.node_count()).all(|v| self.neighbors(v) == other.neighbors(v))
    }
}
impl Eq for Adjacency {}

impl Adjacency {
    /// An empty graph over `n` nodes.
    pub fn with_nodes(n: usize) -> Self {
        Adjacency {
            offsets: vec![0; n + 1],
            lens: vec![0; n],
            edges: Vec::new(),
            live: 0,
            slack_base: 1,
        }
    }

    /// Slack slots provisioned for a row of `len` live edges during a
    /// layout pass (rebuild or compaction). The historical policy is
    /// `1 + len / 8` — tight, because every slack slot is a sentinel some
    /// scan skips; `slack_base` lifts the constant term when the degree
    /// histogram says patch-time growth would otherwise overflow rows
    /// routinely (see [`Adjacency::rebuild_with_grid_parallel`]).
    #[inline]
    fn row_slack(&self, len: u32) -> u32 {
        self.slack_base + len / 8
    }

    /// Degree-histogram-driven base slack: provision every row with
    /// headroom matching the *spread* of the degree distribution (p95 −
    /// median, quartered), so typical mover-induced row growth lands in
    /// slack instead of triggering a whole-CSR `reprovision`. Clamped so
    /// sparse graphs keep the historical tight layout and dense ones
    /// don't balloon memory.
    fn histogram_slack_base(lens: &[u32]) -> u32 {
        let n = lens.len();
        if n == 0 {
            return 1;
        }
        let max_deg = lens.iter().copied().max().unwrap_or(0) as usize;
        let mut hist = vec![0usize; max_deg + 1];
        for &len in lens {
            hist[len as usize] += 1;
        }
        let quantile = |q_num: usize, q_den: usize| -> u32 {
            let target = (n * q_num).div_ceil(q_den);
            let mut seen = 0usize;
            for (deg, &count) in hist.iter().enumerate() {
                seen += count;
                if seen >= target {
                    return deg as u32;
                }
            }
            max_deg as u32
        };
        let spread = quantile(95, 100).saturating_sub(quantile(50, 100));
        (1 + spread / 4).clamp(1, 8)
    }

    /// Sort one freshly queried neighbor row into canonical (ascending
    /// id) order. Typical rows are a handful of entries, where a plain
    /// insertion sort beats `sort_unstable`'s dispatch overhead — across
    /// the N=10⁴ rebuild the difference is a measurable fraction of the
    /// whole pass. Long rows fall back to `sort_unstable`.
    #[inline]
    fn sort_row(row: &mut [NodeId]) {
        if row.len() > 24 {
            row.sort_unstable();
            return;
        }
        for i in 1..row.len() {
            let v = row[i];
            let mut j = i;
            while j > 0 && row[j - 1] > v {
                row[j] = row[j - 1];
                j -= 1;
            }
            row[j] = v;
        }
    }

    /// Most movers a patch will take before the churn fallback becomes
    /// the cheaper path (see `PATCH_CHURN_DIVISOR`). Exposed so callers
    /// running pre-filters can predict whether a reduced mover set would
    /// keep the patch path viable.
    #[inline]
    pub fn patch_budget(n: usize) -> usize {
        (n / PATCH_CHURN_DIVISOR).max(PATCH_CHURN_FLOOR)
    }

    /// Would [`Adjacency::patch_with_grid`] take the patch path (rather
    /// than the churn fallback) for `movers` moved nodes out of `n`?
    /// Callers that must do per-tick work *before* patching (e.g. the
    /// double-buffer snapshot copy in `Network`) use this to skip that
    /// work when the fallback would run anyway.
    #[inline]
    pub fn patch_viable(n: usize, movers: usize) -> bool {
        movers <= Self::patch_budget(n)
    }

    /// The checked edge-capacity guard: CSR offsets are `u32`, so the
    /// total provisioned entry count must fit. A `debug_assert` here would
    /// vanish exactly in the release builds where a 4-billion-edge run
    /// could actually overflow, so this is a hard check on every layout
    /// pass (its cost is one compare per rebuild, not per edge).
    #[inline]
    fn check_edge_capacity(total: usize) {
        assert!(
            total <= u32::MAX as usize,
            "CSR edge capacity {total} overflows u32 offsets \
             (node count or graph density too large for this layout)"
        );
    }

    /// Build from positions with the given transmission `range`, using a
    /// spatial grid (O(N · avg-degree)).
    pub fn build(field: Field, positions: &[Point2], range: f64) -> Self {
        let mut grid = SpatialGrid::new(field, range);
        Self::build_with_grid(&mut grid, positions, range)
    }

    /// Build from positions, reusing a caller-owned grid (the grid is
    /// rebuilt from `positions` first). Useful on mobility ticks to avoid
    /// reallocating the grid each time.
    pub fn build_with_grid(grid: &mut SpatialGrid, positions: &[Point2], range: f64) -> Self {
        let mut adj = Adjacency::with_nodes(positions.len());
        adj.rebuild_with_grid(grid, positions, range);
        adj
    }

    /// Rebuild in place (reusing the CSR buffers) from new positions,
    /// re-querying the grid for **every** node and re-provisioning row
    /// slack. This is the wholesale reference path; the mobility hot path
    /// is [`Adjacency::patch_with_grid`].
    ///
    /// The grid is brought up to date with [`SpatialGrid::update`]: only
    /// nodes that crossed a cell boundary are re-bucketed (with automatic
    /// full-relayout fallback on heavy churn).
    ///
    /// Returns what the grid update did (incremental re-bucket vs full
    /// relayout) so callers can report it.
    ///
    /// # Panics
    /// Panics if the total provisioned edge capacity would overflow the
    /// `u32` CSR offsets.
    pub fn rebuild_with_grid(
        &mut self,
        grid: &mut SpatialGrid,
        positions: &[Point2],
        range: f64,
    ) -> GridUpdate {
        let grid_update = grid.update(positions);
        let n = positions.len();
        // The serial reference pins the historical tight slack policy.
        self.slack_base = 1;
        self.offsets.clear();
        self.offsets.reserve(n + 1);
        self.lens.clear();
        self.lens.reserve(n);
        self.edges.clear();
        self.live = 0;
        for (i, &p) in positions.iter().enumerate() {
            let id = NodeId::from(i);
            let start = self.edges.len();
            self.offsets.push(start as u32);
            let edges = &mut self.edges;
            grid.for_each_within(positions, p, range, Some(id), |nb| edges.push(nb));
            self.edges[start..].sort_unstable();
            let len = (self.edges.len() - start) as u32;
            self.lens.push(len);
            self.live += len as usize;
            self.edges
                .resize(self.edges.len() + self.row_slack(len) as usize, FILLER);
        }
        // One check for the whole layout: per-node `start` casts above are
        // only trusted once the final total fits (a panic here discards
        // the half-built state before anyone reads it).
        Self::check_edge_capacity(self.edges.len());
        self.offsets.push(self.edges.len() as u32);
        grid_update
    }

    /// The kernel + parallel counterpart of
    /// [`Adjacency::rebuild_with_grid`]: canonical-CSR-identical output
    /// (pinned by proptests here and in `tests/topology_refresh.rs`),
    /// built as
    ///
    /// 1. grid update, [`PositionPlane::rebuild`], and one entry-aligned
    ///    lane-mirror gather ([`SpatialGrid::fill_lane_mirror`]);
    /// 2. a *pair-emission* pass parallelized over row spans via
    ///    `sim_core::par` — each span streams its nodes' forward
    ///    half-balls ([`SpatialGrid::half_ball_rows`]) through the
    ///    batched two-phase f32 kernel (fast accept / fast reject / exact
    ///    f64 borderline resolution), emitting each in-range unordered
    ///    pair exactly once into a span-local list. Scanning half the
    ///    ball is sound because the kernel's verdict is exactly
    ///    symmetric: IEEE subtraction gives `a - b == -(b - a)`, so both
    ///    the f32 `d2` and the f64 borderline check see bit-identical
    ///    values from either endpoint;
    /// 3. a serial layout pass: both endpoints' degrees accumulated from
    ///    the pair lists, degree histogram → `slack_base` provisioning,
    ///    prefix-sum offsets, one `FILLER` memset, and a scatter that
    ///    lands every pair at both endpoints' write cursors;
    /// 4. a disjoint parallel sort: the edge buffer is split at span
    ///    boundaries and every row is sorted in place.
    ///
    /// Span results are consumed in span order and rows are sorted, so
    /// the output is deterministic and identical whether the fan-outs run
    /// on the whole pool or inline on a single core. Kernel lane/exact
    /// counters accumulate into `scratch.stats`.
    ///
    /// # Panics
    /// Panics if the total provisioned edge capacity would overflow the
    /// `u32` CSR offsets.
    pub fn rebuild_with_grid_parallel(
        &mut self,
        grid: &mut SpatialGrid,
        plane: &mut PositionPlane,
        positions: &[Point2],
        range: f64,
        scratch: &mut KernelScratch,
    ) -> GridUpdate {
        let grid_update = grid.update(positions);
        plane.rebuild(positions);
        grid.fill_lane_mirror(plane, scratch);
        let n = positions.len();
        let band = plane.band(range, grid.cell_side());
        let spans = par::shard_spans(n, par::max_workers());

        /// One span's worth of half-ball link pairs.
        struct SpanPairs {
            /// Every in-range unordered pair whose *first* endpoint sits
            /// in the span, each exactly once.
            pairs: Vec<(NodeId, NodeId)>,
            stats: KernelStats,
        }
        let entries = grid.entries_raw();
        let (mirror_x, mirror_y) = (&scratch.mirror_x[..], &scratch.mirror_y[..]);
        let grid_ref = &*grid;
        let results: Vec<SpanPairs> =
            par::parallel_map_with(spans.clone(), Vec::<(f32, NodeId)>::new, |cand, span| {
                let mut out = SpanPairs {
                    // ~6 pairs/node up front; the paper's densest
                    // scenarios average ~4 (half the ~8 degree), so one
                    // allocation usually survives the whole span.
                    pairs: Vec::with_capacity(span.len() * 6),
                    stats: KernelStats::default(),
                };
                for i in span {
                    let id = NodeId::from(i);
                    let center = positions[i];
                    let rows = grid_ref.half_ball_rows(center);
                    // Same-cell pairs deduplicate through the `id > i`
                    // filter; the east/south spans cannot contain `id`.
                    let min_ids = [i as u32 + 1, 0, 0];
                    for (&(lo, hi), &min_id) in rows.iter().zip(&min_ids) {
                        let (lo, hi) = (lo as usize, hi as usize);
                        grid::kernel_scan_row(
                            &entries[lo..hi],
                            &mirror_x[lo..hi],
                            &mirror_y[lo..hi],
                            band,
                            positions,
                            center,
                            min_id,
                            None,
                            cand,
                            &mut out.stats,
                            &mut |nb| out.pairs.push((id, nb)),
                        );
                    }
                }
                out
            });

        // Serial layout: accumulate both endpoints' degrees from the pair
        // lists, derive the slack base from the histogram, prefix-sum the
        // offsets, and memset the slack CSR.
        self.lens.clear();
        self.lens.resize(n, 0);
        for r in &results {
            scratch.stats.merge(r.stats);
            for &(a, b) in &r.pairs {
                self.lens[a.index()] += 1;
                self.lens[b.index()] += 1;
            }
        }
        self.slack_base = Self::histogram_slack_base(&self.lens);
        self.offsets.clear();
        self.offsets.reserve(n + 1);
        let mut total = 0usize;
        let mut live = 0usize;
        for i in 0..n {
            self.offsets.push(total as u32);
            let len = self.lens[i];
            live += len as usize;
            total += (len + self.row_slack(len)) as usize;
        }
        Self::check_edge_capacity(total);
        self.offsets.push(total as u32);
        self.live = live;
        let mut edges = std::mem::take(&mut self.edges);
        edges.clear();
        edges.resize(total, FILLER);

        // Serial scatter: every pair lands at both endpoints' write
        // cursors. Rows fill from their offsets, so slack stays FILLER
        // at each row's tail. Span order is deterministic and every row
        // gets sorted below, so the output cannot depend on how the
        // fan-out interleaved.
        let mut cursor: Vec<u32> = self.offsets[..n].to_vec();
        for r in &results {
            for &(a, b) in &r.pairs {
                let (ai, bi) = (a.index(), b.index());
                edges[cursor[ai] as usize] = b;
                cursor[ai] += 1;
                edges[cursor[bi] as usize] = a;
                cursor[bi] += 1;
            }
        }

        // Disjoint parallel sort: split the edge buffer at span
        // boundaries, then sort every row in place -> canonical CSR.
        struct SortShard<'a> {
            region: &'a mut [NodeId],
            lens: &'a [u32],
            /// `offsets[span.start .. span.end]`, for per-row placement.
            offsets: &'a [u32],
        }
        let mut shards: Vec<SortShard> = Vec::with_capacity(spans.len());
        let mut remaining: &mut [NodeId] = &mut edges;
        let mut consumed = 0usize;
        for span in &spans {
            let end = self.offsets[span.end] as usize;
            let (region, rest) = remaining.split_at_mut(end - consumed);
            remaining = rest;
            consumed = end;
            shards.push(SortShard {
                region,
                lens: &self.lens[span.clone()],
                offsets: &self.offsets[span.clone()],
            });
        }
        par::parallel_shard_map(&mut shards, |_, shard| {
            let base = shard.offsets.first().map_or(0, |&o| o as usize);
            for (k, &len) in shard.lens.iter().enumerate() {
                let dst = shard.offsets[k] as usize - base;
                Self::sort_row(&mut shard.region[dst..dst + len as usize]);
            }
        });
        self.edges = edges;
        grid_update
    }

    /// Patch the CSR in place after a mobility tick, given the nodes whose
    /// positions changed (`moved`, from
    /// `MobilityModel::advance_reporting`). Only the movers and the nodes
    /// whose link set a mover may have touched — the occupants of each
    /// mover's old and new 3×3 cell balls — are re-queried; everyone
    /// else's row is provably unchanged (an edge can only appear or
    /// disappear if at least one endpoint moved, and the untouched
    /// endpoint then sits in one of those balls).
    ///
    /// `changed` receives the rows whose neighbor set actually changed (in
    /// candidate-discovery order) — exactly the seed set an incremental
    /// neighborhood refresh needs, with no O(N) snapshot diff. Each changed
    /// row's *pre-patch* content is saved to `scratch`'s undo log
    /// ([`PatchScratch::undo_entry`]), so callers can reconstruct any old
    /// row without double-buffering the whole CSR.
    ///
    /// Falls back to [`Adjacency::rebuild_with_grid`] (returning
    /// [`AdjacencyUpdate::Full`] with the grid outcome, `changed` left
    /// empty) when the node count changed or the mover count exceeds
    /// `max(N / 8, 4)`.
    ///
    /// # Contract
    /// `self` must currently equal `build(field, previous_positions,
    /// range)`, the grid must be up to date with those previous positions,
    /// and `moved` must contain every node whose position differs between
    /// `previous_positions` and `positions` (supersets and duplicates are
    /// tolerated). The equivalence of this path with a fresh build is
    /// pinned by proptests here and in `tests/topology_refresh.rs`.
    ///
    /// # Panics
    /// Panics if a compaction would overflow the `u32` CSR offsets, or if
    /// `moved` names a node outside `0..positions.len()`.
    pub fn patch_with_grid(
        &mut self,
        grid: &mut SpatialGrid,
        positions: &[Point2],
        range: f64,
        moved: &[NodeId],
        changed: &mut Vec<NodeId>,
        scratch: &mut PatchScratch,
    ) -> AdjacencyUpdate {
        self.patch_with_grid_active(grid, positions, range, moved, moved, changed, scratch)
    }

    /// [`Adjacency::patch_with_grid`] with a pre-filtered candidate seed:
    /// rows are re-queried only around the `active` movers, while the
    /// grid's cell residency is still brought up to date from the full
    /// `moved` report. Churn viability is judged on `active` — this is
    /// how a sound pre-filter (e.g. the annulus filter in
    /// `manet-routing`) keeps small-displacement ticks on the patch path.
    ///
    /// # Contract
    /// In addition to the [`Adjacency::patch_with_grid`] contract on
    /// `moved`, every node whose link set changed must be an `active`
    /// mover or an occupant of an active mover's old/new 3×3 cell ball —
    /// i.e. the caller must *prove* each dropped mover has no changed
    /// incident link (no node near its range annulus). Passing
    /// `active = moved` recovers the unfiltered behavior.
    #[allow(clippy::too_many_arguments)] // thin pre-filter seam over patch_with_grid
    pub fn patch_with_grid_active(
        &mut self,
        grid: &mut SpatialGrid,
        positions: &[Point2],
        range: f64,
        moved: &[NodeId],
        active: &[NodeId],
        changed: &mut Vec<NodeId>,
        scratch: &mut PatchScratch,
    ) -> AdjacencyUpdate {
        changed.clear();
        let n = positions.len();
        if self.node_count() != n
            || grid.tracked_nodes() != n
            || !Self::patch_viable(n, active.len())
        {
            let grid_update = self.rebuild_with_grid(grid, positions, range);
            return AdjacencyUpdate::Full { grid: grid_update };
        }
        self.patch_core(
            grid, positions, range, moved, active, changed, scratch, None,
        )
    }

    /// [`Adjacency::patch_with_grid_active`] with the row re-queries run
    /// through the batched two-phase f32 kernel
    /// ([`SpatialGrid::for_each_within_kernel`]) instead of the scalar
    /// f64 scan, and the churn/count fallback routed to
    /// [`Adjacency::rebuild_with_grid_parallel`]. The plane is kept
    /// coherent from the same mover report that updates the grid, and
    /// kernel lane/exact counters accumulate into `kscratch.stats`.
    /// Same contract, same canonical CSR — pinned by the equivalence
    /// proptests against the scalar patch and the fresh build.
    #[allow(clippy::too_many_arguments)] // mirrors patch_with_grid_active + kernel state
    pub fn patch_with_grid_kernel(
        &mut self,
        grid: &mut SpatialGrid,
        plane: &mut PositionPlane,
        positions: &[Point2],
        range: f64,
        moved: &[NodeId],
        active: &[NodeId],
        changed: &mut Vec<NodeId>,
        scratch: &mut PatchScratch,
        kscratch: &mut KernelScratch,
    ) -> AdjacencyUpdate {
        changed.clear();
        let n = positions.len();
        if self.node_count() != n
            || grid.tracked_nodes() != n
            || !Self::patch_viable(n, active.len())
        {
            let grid_update =
                self.rebuild_with_grid_parallel(grid, plane, positions, range, kscratch);
            return AdjacencyUpdate::Full { grid: grid_update };
        }
        // Lane refresh is independent of the grid state, so it can run
        // before candidate seeding; the seeding below must still read the
        // *pre-update* grid residency.
        plane.update_reported(positions, moved);
        self.patch_core(
            grid,
            positions,
            range,
            moved,
            active,
            changed,
            scratch,
            Some((plane, kscratch)),
        )
    }

    /// Shared body of the scalar and kernel patch paths (fallbacks
    /// already handled by the wrappers). With `kernel` present, candidate
    /// rows are re-queried through the gather kernel; the rest —
    /// candidate seeding, grid update, slack rewrite, undo log — is
    /// byte-for-byte the same machinery.
    #[allow(clippy::too_many_arguments)]
    fn patch_core(
        &mut self,
        grid: &mut SpatialGrid,
        positions: &[Point2],
        range: f64,
        moved: &[NodeId],
        active: &[NodeId],
        changed: &mut Vec<NodeId>,
        scratch: &mut PatchScratch,
        mut kernel: Option<(&PositionPlane, &mut KernelScratch)>,
    ) -> AdjacencyUpdate {
        let n = positions.len();
        // 1. Candidate rows, deduped with epoch stamps: every mover, plus
        //    every occupant of the 3×3 cell balls around each mover's old
        //    and new cell — read from the *pre-update* grid, which is
        //    exact because non-movers keep their residency across the
        //    update and movers are included explicitly.
        scratch.begin(n);
        {
            let PatchScratch {
                stamp,
                epoch,
                candidates,
                ..
            } = scratch;
            let ep = *epoch;
            let mut add = |id: NodeId| {
                let s = &mut stamp[id.index()];
                if *s != ep {
                    *s = ep;
                    candidates.push(id);
                }
            };
            for &m in active {
                add(m);
            }
            for &m in active {
                let old_cell = grid.node_cell(m);
                let new_cell = grid.cell_at(positions[m.index()]);
                grid.for_each_in_cell_ball(old_cell, &mut add);
                if new_cell != old_cell {
                    grid.for_each_in_cell_ball(new_cell, &mut add);
                }
            }
        }

        // 2. Bring the grid up to date — O(movers), not O(N).
        let grid_update = grid.update_reported(positions, moved);

        // 3. Re-query each candidate against the new grid; rewrite rows
        //    that differ inside their slack (saving the old content to the
        //    undo log first), compacting on overflow.
        let mut compactions = 0usize;
        let PatchScratch {
            candidates,
            row,
            undo_rows,
            undo_edges,
            ..
        } = scratch;
        for &c in candidates.iter() {
            let i = c.index();
            row.clear();
            match kernel.as_mut() {
                Some((plane, ks)) => grid.for_each_within_kernel(
                    plane,
                    positions,
                    positions[i],
                    range,
                    Some(c),
                    ks,
                    |nb| row.push(nb),
                ),
                None => {
                    grid.for_each_within(positions, positions[i], range, Some(c), |nb| {
                        row.push(nb)
                    });
                }
            }
            Self::sort_row(row);
            let start = self.offsets[i] as usize;
            let len = self.lens[i] as usize;
            if self.edges[start..start + len] == row[..] {
                continue;
            }
            changed.push(c);
            undo_rows.push((c, undo_edges.len() as u32));
            undo_edges.extend_from_slice(&self.edges[start..start + len]);
            let cap = (self.offsets[i + 1] - self.offsets[i]) as usize;
            if row.len() > cap {
                compactions += 1;
                self.reprovision(i, row.len() as u32);
            }
            let start = self.offsets[i] as usize;
            self.edges[start..start + row.len()].copy_from_slice(row);
            if row.len() < len {
                // Shrunk row: re-stamp the vacated tail so stale ids can't
                // masquerade as live edges in raw dumps.
                self.edges[start + row.len()..start + len].fill(FILLER);
            }
            self.live = self.live - len + row.len();
            self.lens[i] = row.len() as u32;
        }
        AdjacencyUpdate::Patched {
            rows_patched: candidates.len(),
            rows_changed: changed.len(),
            compactions,
            grid: grid_update,
        }
    }

    /// Whole-CSR compaction: re-layout every row with fresh slack, sizing
    /// row `grow_row` for `need` live edges. Row contents are copied, not
    /// re-queried — O(E) memcpy, no grid work.
    fn reprovision(&mut self, grow_row: usize, need: u32) {
        let n = self.node_count();
        let mut new_offsets = Vec::with_capacity(n + 1);
        let mut total = 0usize;
        for i in 0..n {
            new_offsets.push(total as u32);
            let planned = if i == grow_row { need } else { self.lens[i] };
            total += (planned + self.row_slack(planned)) as usize;
        }
        Self::check_edge_capacity(total);
        new_offsets.push(total as u32);
        let mut new_edges = vec![FILLER; total];
        #[allow(clippy::needless_range_loop)] // index addresses parallel row arrays
        for i in 0..n {
            let src = self.offsets[i] as usize;
            let dst = new_offsets[i] as usize;
            let len = self.lens[i] as usize;
            new_edges[dst..dst + len].copy_from_slice(&self.edges[src..src + len]);
        }
        self.offsets = new_offsets;
        self.edges = new_edges;
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Sorted direct (1-hop) neighbors of `node`.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        let start = self.offsets[i] as usize;
        &self.edges[start..start + self.lens[i] as usize]
    }

    /// Degree of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.lens[node.index()] as usize
    }

    /// Are `a` and `b` directly connected? (binary search on the sorted slice)
    #[inline]
    pub fn is_neighbor(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Total number of live directed half-edges (`2 × link_count`).
    #[inline]
    fn half_edge_count(&self) -> usize {
        self.live
    }

    /// Total number of undirected links.
    pub fn link_count(&self) -> usize {
        self.half_edge_count() / 2
    }

    /// Average node degree.
    pub fn avg_degree(&self) -> f64 {
        let n = self.node_count();
        if n == 0 {
            return 0.0;
        }
        self.half_edge_count() as f64 / n as f64
    }

    /// The raw slack-CSR buffers `(offsets, lens, edges)`: row `i`'s
    /// capacity is `edges[offsets[i] .. offsets[i + 1]]`, its live prefix
    /// `lens[i]` entries (tests, benches, metrics).
    pub fn raw_csr(&self) -> (&[u32], &[u32], &[NodeId]) {
        (&self.offsets, &self.lens, &self.edges)
    }

    /// The *canonical* dense CSR `(offsets, edges)` — all slack squeezed
    /// out, so two logically equal graphs yield bit-identical buffers
    /// regardless of how they were built (fresh build, in-place rebuild,
    /// or any sequence of patches). The equivalence proptests compare
    /// these.
    pub fn canonical_csr(&self) -> (Vec<u32>, Vec<NodeId>) {
        let n = self.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::with_capacity(self.half_edge_count());
        for v in NodeId::all(n) {
            offsets.push(edges.len() as u32);
            edges.extend_from_slice(self.neighbors(v));
        }
        offsets.push(edges.len() as u32);
        (offsets, edges)
    }

    /// Do `a`'s neighbors differ between `self` and `other`? Nodes present
    /// in only one of the two graphs count as changed. This is the edge
    /// diff the incremental neighborhood refresh falls back on when no
    /// mover report is available.
    #[inline]
    pub fn neighbors_changed(&self, other: &Adjacency, a: NodeId) -> bool {
        if a.index() >= self.node_count() || a.index() >= other.node_count() {
            return true;
        }
        self.neighbors(a) != other.neighbors(a)
    }

    /// Insert `y` into `x`'s sorted row if absent (O(row) shift; grows the
    /// CSR only when the row's slack is exhausted).
    fn insert_half_edge(&mut self, x: NodeId, y: NodeId) {
        let i = x.index();
        let Err(pos) = self.neighbors(x).binary_search(&y) else {
            return;
        };
        let len = self.lens[i] as usize;
        let cap = (self.offsets[i + 1] - self.offsets[i]) as usize;
        if len == cap {
            self.reprovision(i, len as u32 + 1);
        }
        let start = self.offsets[i] as usize;
        self.edges
            .copy_within(start + pos..start + len, start + pos + 1);
        self.edges[start + pos] = y;
        self.lens[i] += 1;
        self.live += 1;
    }

    /// Remove `y` from `x`'s sorted row if present (O(row) shift; the
    /// vacated slot becomes slack).
    fn remove_half_edge(&mut self, x: NodeId, y: NodeId) {
        let i = x.index();
        let Ok(pos) = self.neighbors(x).binary_search(&y) else {
            return;
        };
        let start = self.offsets[i] as usize;
        let len = self.lens[i] as usize;
        self.edges
            .copy_within(start + pos + 1..start + len, start + pos);
        self.edges[start + len - 1] = FILLER;
        self.lens[i] -= 1;
        self.live -= 1;
    }

    /// Add an undirected edge (used by tests and synthetic topologies).
    ///
    /// # Panics
    /// Panics on self-loops.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        assert_ne!(a, b, "self-loop");
        self.insert_half_edge(a, b);
        self.insert_half_edge(b, a);
    }

    /// Remove an undirected edge if present.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) {
        self.remove_half_edge(a, b);
        self.remove_half_edge(b, a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Check the slack-CSR structural invariants.
    fn assert_csr_invariants(adj: &Adjacency) {
        let (offsets, lens, edges) = adj.raw_csr();
        assert_eq!(offsets.len(), adj.node_count() + 1);
        assert_eq!(lens.len(), adj.node_count());
        assert_eq!(
            adj.live,
            lens.iter().map(|&l| l as usize).sum::<usize>(),
            "live counter out of sync with row lengths"
        );
        assert_eq!(offsets[0], 0);
        assert_eq!(*offsets.last().unwrap() as usize, edges.len());
        for w in offsets.windows(2) {
            assert!(w[0] <= w[1], "offsets must be monotone");
        }
        for node in NodeId::all(adj.node_count()) {
            let i = node.index();
            assert!(
                lens[i] <= offsets[i + 1] - offsets[i],
                "row {node} live length exceeds capacity"
            );
            let nbs = adj.neighbors(node);
            for w in nbs.windows(2) {
                assert!(w[0] < w[1], "neighbor slice of {node} not strictly sorted");
            }
            for &nb in nbs {
                assert_ne!(nb, super::FILLER, "live slot holds the filler sentinel");
            }
            let tail = offsets[i] as usize + lens[i] as usize..offsets[i + 1] as usize;
            for &slot in &edges[tail] {
                assert_eq!(slot, super::FILLER, "slack slot holds a live-looking id");
            }
        }
    }

    /// Three nodes in a line, 40 m apart, range 50 m: 0-1 and 1-2 connect,
    /// 0-2 (80 m) does not.
    fn line3() -> (Field, Vec<Point2>) {
        (
            Field::square(200.0),
            vec![
                Point2::new(10.0, 10.0),
                Point2::new(50.0, 10.0),
                Point2::new(90.0, 10.0),
            ],
        )
    }

    #[test]
    fn build_line_topology() {
        let (field, pos) = line3();
        let adj = Adjacency::build(field, &pos, 50.0);
        assert_eq!(adj.node_count(), 3);
        assert_eq!(adj.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(adj.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
        assert_eq!(adj.neighbors(NodeId(2)), &[NodeId(1)]);
        assert!(adj.is_neighbor(NodeId(0), NodeId(1)));
        assert!(!adj.is_neighbor(NodeId(0), NodeId(2)));
        assert_eq!(adj.link_count(), 2);
        assert!((adj.avg_degree() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(adj.degree(NodeId(1)), 2);
        assert_csr_invariants(&adj);
    }

    #[test]
    fn symmetry_of_links() {
        let (field, pos) = line3();
        let adj = Adjacency::build(field, &pos, 50.0);
        for a in NodeId::all(3) {
            for &b in adj.neighbors(a) {
                assert!(adj.is_neighbor(b, a), "{a}-{b} not symmetric");
            }
        }
    }

    #[test]
    fn rebuild_reflects_movement() {
        let (field, mut pos) = line3();
        let mut grid = SpatialGrid::new(field, 50.0);
        let mut adj = Adjacency::build_with_grid(&mut grid, &pos, 50.0);
        assert!(adj.is_neighbor(NodeId(0), NodeId(1)));
        // node 1 walks out of everyone's range
        pos[1] = Point2::new(190.0, 190.0);
        adj.rebuild_with_grid(&mut grid, &pos, 50.0);
        assert_eq!(adj.degree(NodeId(1)), 0);
        assert!(!adj.is_neighbor(NodeId(0), NodeId(1)));
        assert_csr_invariants(&adj);
    }

    #[test]
    fn patch_reflects_movement() {
        let (field, mut pos) = line3();
        let mut grid = SpatialGrid::new(field, 50.0);
        let mut adj = Adjacency::build_with_grid(&mut grid, &pos, 50.0);
        let mut scratch = PatchScratch::new();
        let mut changed = Vec::new();
        // node 1 steps just out of node 0's range but stays near node 2
        pos[1] = Point2::new(95.0, 10.0);
        let out = adj.patch_with_grid(
            &mut grid,
            &pos,
            50.0,
            &[NodeId(1)],
            &mut changed,
            &mut scratch,
        );
        assert!(
            matches!(
                out,
                AdjacencyUpdate::Patched {
                    rows_changed: 2,
                    ..
                }
            ),
            "exactly nodes 0 and 1 change ({out:?})"
        );
        let mut sorted = changed.clone();
        sorted.sort();
        assert_eq!(sorted, vec![NodeId(0), NodeId(1)]);
        assert_eq!(adj, Adjacency::build(field, &pos, 50.0));
        assert_csr_invariants(&adj);
        // the undo log holds exactly the changed rows' pre-patch content
        assert_eq!(scratch.undo_count(), 2);
        for (k, &row) in changed.iter().enumerate() {
            let (node, old) = scratch.undo_entry(k);
            assert_eq!(node, row);
            // before the move, 0-1 and 1-2 were the links
            let expect: &[NodeId] = match node.raw() {
                0 => &[NodeId(1)],
                1 => &[NodeId(0), NodeId(2)],
                _ => unreachable!(),
            };
            assert_eq!(old, expect);
        }
        // no movement → nothing patched rows change
        let out = adj.patch_with_grid(&mut grid, &pos, 50.0, &[], &mut changed, &mut scratch);
        assert!(
            matches!(
                out,
                AdjacencyUpdate::Patched {
                    rows_patched: 0,
                    rows_changed: 0,
                    ..
                }
            ),
            "{out:?}"
        );
        assert!(changed.is_empty());
    }

    #[test]
    fn patch_with_active_subset_skips_provably_inert_movers() {
        let (field, mut pos) = line3();
        let mut grid = SpatialGrid::new(field, 50.0);
        let mut adj = Adjacency::build_with_grid(&mut grid, &pos, 50.0);
        let mut scratch = PatchScratch::new();
        let mut changed = Vec::new();
        // node 2 jiggles one meter: both its links keep their state, so a
        // caller that proved that may drop it from the candidate seed
        pos[2] = Point2::new(91.0, 10.0);
        let out = adj.patch_with_grid_active(
            &mut grid,
            &pos,
            50.0,
            &[NodeId(2)],
            &[],
            &mut changed,
            &mut scratch,
        );
        assert!(
            matches!(
                out,
                AdjacencyUpdate::Patched {
                    rows_patched: 0,
                    rows_changed: 0,
                    ..
                }
            ),
            "{out:?}"
        );
        assert!(changed.is_empty());
        assert_eq!(adj, Adjacency::build(field, &pos, 50.0));
        // the grid's residency still tracked the full mover report: a
        // follow-up patch around node 2's new position stays exact
        pos[2] = Point2::new(95.0, 10.0);
        adj.patch_with_grid(
            &mut grid,
            &pos,
            50.0,
            &[NodeId(2)],
            &mut changed,
            &mut scratch,
        );
        assert_eq!(adj, Adjacency::build(field, &pos, 50.0));
        assert_csr_invariants(&adj);
    }

    #[test]
    fn patch_falls_back_on_churn_and_node_count_change() {
        let field = Field::square(300.0);
        let pos: Vec<Point2> = (0..10)
            .map(|i| Point2::new(i as f64 * 30.0 + 5.0, 150.0))
            .collect();
        let mut grid = SpatialGrid::new(field, 50.0);
        let mut adj = Adjacency::build_with_grid(&mut grid, &pos, 50.0);
        let mut scratch = PatchScratch::new();
        let mut changed = Vec::new();
        // churn: more than N/8 movers
        let all: Vec<NodeId> = NodeId::all(10).collect();
        let out = adj.patch_with_grid(&mut grid, &pos, 50.0, &all, &mut changed, &mut scratch);
        assert!(matches!(out, AdjacencyUpdate::Full { .. }), "{out:?}");
        // node count change
        let fewer = &pos[..7];
        let out = adj.patch_with_grid(&mut grid, fewer, 50.0, &[], &mut changed, &mut scratch);
        assert!(matches!(out, AdjacencyUpdate::Full { .. }), "{out:?}");
        assert_eq!(adj.node_count(), 7);
        assert_eq!(adj, Adjacency::build(field, fewer, 50.0));
    }

    #[test]
    fn patch_compacts_on_row_overflow() {
        // A lone node gains many neighbors at once: its row outgrows any
        // slack a fresh build provisioned, forcing a compaction.
        let field = Field::square(400.0);
        let mut pos = vec![Point2::new(10.0, 10.0); 9];
        for (i, p) in pos.iter_mut().enumerate().skip(1) {
            *p = Point2::new(300.0 + (i as f64), 300.0);
        }
        let mut grid = SpatialGrid::new(field, 50.0);
        let mut adj = Adjacency::build_with_grid(&mut grid, &pos, 50.0);
        assert_eq!(adj.degree(NodeId(0)), 0);
        let mut scratch = PatchScratch::new();
        let mut changed = Vec::new();
        // node 0 teleports into the middle of the cluster
        pos[0] = Point2::new(304.0, 300.0);
        let out = adj.patch_with_grid(
            &mut grid,
            &pos,
            50.0,
            &[NodeId(0)],
            &mut changed,
            &mut scratch,
        );
        match out {
            AdjacencyUpdate::Patched {
                rows_changed,
                compactions,
                ..
            } => {
                assert_eq!(rows_changed, 9, "cluster + mover all gain an edge");
                assert!(compactions >= 1, "row 0 must overflow its empty-row slack");
            }
            AdjacencyUpdate::Full { .. } => panic!("one mover of nine must patch, not rebuild"),
        }
        assert_eq!(adj.degree(NodeId(0)), 8);
        assert_eq!(adj, Adjacency::build(field, &pos, 50.0));
        assert_csr_invariants(&adj);
    }

    #[test]
    fn add_remove_edge() {
        let mut adj = Adjacency::with_nodes(4);
        adj.add_edge(NodeId(0), NodeId(2));
        adj.add_edge(NodeId(0), NodeId(2)); // idempotent
        assert!(adj.is_neighbor(NodeId(0), NodeId(2)));
        assert!(adj.is_neighbor(NodeId(2), NodeId(0)));
        assert_eq!(adj.link_count(), 1);
        assert_csr_invariants(&adj);
        adj.remove_edge(NodeId(0), NodeId(2));
        assert_eq!(adj.link_count(), 0);
        adj.remove_edge(NodeId(0), NodeId(2)); // removing absent edge is fine
        assert_csr_invariants(&adj);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        Adjacency::with_nodes(2).add_edge(NodeId(1), NodeId(1));
    }

    #[test]
    fn exact_range_boundary_connects() {
        let field = Field::square(100.0);
        let pos = vec![Point2::new(0.0, 0.0), Point2::new(50.0, 0.0)];
        let adj = Adjacency::build(field, &pos, 50.0);
        assert!(
            adj.is_neighbor(NodeId(0), NodeId(1)),
            "distance == range is connected"
        );
    }

    #[test]
    fn rebuild_handles_node_count_changes() {
        let field = Field::square(200.0);
        let mut grid = SpatialGrid::new(field, 50.0);
        let mut adj = Adjacency::build_with_grid(
            &mut grid,
            &[Point2::new(10.0, 10.0), Point2::new(40.0, 10.0)],
            50.0,
        );
        assert_eq!(adj.node_count(), 2);
        let more = vec![
            Point2::new(10.0, 10.0),
            Point2::new(40.0, 10.0),
            Point2::new(70.0, 10.0),
        ];
        adj.rebuild_with_grid(&mut grid, &more, 50.0);
        assert_eq!(adj.node_count(), 3);
        assert!(adj.is_neighbor(NodeId(1), NodeId(2)));
        assert_csr_invariants(&adj);
    }

    #[test]
    fn parallel_rebuild_matches_serial_reference() {
        let (field, pos) = line3();
        let mut grid = SpatialGrid::new(field, 50.0);
        let serial = Adjacency::build_with_grid(&mut grid, &pos, 50.0);
        let mut grid2 = SpatialGrid::new(field, 50.0);
        let mut plane = PositionPlane::new();
        let mut scratch = KernelScratch::new();
        let mut parallel = Adjacency::with_nodes(pos.len());
        parallel.rebuild_with_grid_parallel(&mut grid2, &mut plane, &pos, 50.0, &mut scratch);
        assert_eq!(serial.canonical_csr(), parallel.canonical_csr());
        assert!(plane.is_coherent(&pos));
        assert!(scratch.stats.lanes > 0, "the kernel must classify lanes");
        assert_csr_invariants(&parallel);
        // empty graphs round-trip too
        let mut empty = Adjacency::default();
        empty.rebuild_with_grid_parallel(&mut grid2, &mut plane, &[], 50.0, &mut scratch);
        assert_eq!(empty.node_count(), 0);
        assert_csr_invariants(&empty);
    }

    #[test]
    fn histogram_slack_base_tracks_degree_spread() {
        // uniform degrees → no spread → historical tight base
        assert_eq!(Adjacency::histogram_slack_base(&[]), 1);
        assert_eq!(Adjacency::histogram_slack_base(&[5; 100]), 1);
        // wide spread (median 0, p95 at 40) → lifted but clamped base
        let mut lens = vec![0u32; 94];
        lens.extend_from_slice(&[40; 6]);
        assert_eq!(Adjacency::histogram_slack_base(&lens), 8);
        // moderate spread → proportional headroom
        let mut lens = vec![8u32; 90];
        lens.extend_from_slice(&[16; 10]);
        assert_eq!(Adjacency::histogram_slack_base(&lens), 3);
    }

    #[test]
    fn canonical_csr_is_layout_independent() {
        let (field, pos) = line3();
        // same logical graph, three different slack layouts
        let fresh = Adjacency::build(field, &pos, 50.0);
        let mut rebuilt = fresh.clone();
        let mut grid = SpatialGrid::new(field, 50.0);
        rebuilt.rebuild_with_grid(&mut grid, &pos, 50.0);
        let mut synthetic = Adjacency::with_nodes(3);
        synthetic.add_edge(NodeId(0), NodeId(1));
        synthetic.add_edge(NodeId(1), NodeId(2));
        assert_eq!(fresh.canonical_csr(), rebuilt.canonical_csr());
        assert_eq!(fresh.canonical_csr(), synthetic.canonical_csr());
        let (offsets, edges) = fresh.canonical_csr();
        assert_eq!(offsets, vec![0, 1, 3, 4]);
        assert_eq!(edges.len(), 4);
    }

    /// Reference O(N²) construction straight from the unit-disk definition.
    fn naive_build(positions: &[Point2], range: f64) -> Vec<Vec<NodeId>> {
        let r_sq = range * range;
        (0..positions.len())
            .map(|i| {
                (0..positions.len())
                    .filter(|&j| j != i && positions[i].dist_sq(positions[j]) <= r_sq)
                    .map(NodeId::from)
                    .collect()
            })
            .collect()
    }

    proptest! {
        /// Grid-accelerated CSR construction is edge-for-edge identical to
        /// the O(N²) definition: same neighbor slice for every node.
        #[test]
        fn prop_build_matches_naive(
            pts in proptest::collection::vec((0.0..710.0f64, 0.0..710.0f64), 1..80),
            range in 10.0..100.0f64,
        ) {
            let field = Field::square(710.0);
            let positions: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let adj = Adjacency::build(field, &positions, range);
            let naive = naive_build(&positions, range);
            for (i, expect) in naive.iter().enumerate() {
                prop_assert_eq!(
                    adj.neighbors(NodeId::from(i)),
                    &expect[..],
                    "neighbor slice of node {} differs", i
                );
            }
        }

        /// In-place rebuild from moved positions equals a fresh build, and
        /// the CSR invariants hold after every rebuild.
        #[test]
        fn prop_rebuild_equals_fresh_build(
            pts in proptest::collection::vec((0.0..710.0f64, 0.0..710.0f64), 1..60),
            moved in proptest::collection::vec((0.0..710.0f64, 0.0..710.0f64), 1..60),
            range in 10.0..100.0f64,
        ) {
            let field = Field::square(710.0);
            let first: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let second: Vec<Point2> = moved.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let mut grid = SpatialGrid::new(field, range);
            let mut adj = Adjacency::build_with_grid(&mut grid, &first, range);
            adj.rebuild_with_grid(&mut grid, &second, range);
            let fresh = Adjacency::build(field, &second, range);
            prop_assert_eq!(&adj, &fresh);
            assert_csr_invariants(&adj);
        }

        /// Multi-step mover-driven patching stays bit-identical (canonical
        /// CSR) to a fresh build, across per-step displacement magnitudes
        /// that keep some nodes still (exact mover reports), exercise the
        /// slack/compaction path, and trip the churn fallback.
        #[test]
        fn prop_patch_equals_fresh_build(
            pts in proptest::collection::vec((0.0..400.0f64, 0.0..400.0f64), 1..60),
            steps in proptest::collection::vec(
                proptest::collection::vec((-80.0..80.0f64, -80.0..80.0f64), 1..60),
                1..5),
            range in 30.0..60.0f64,
        ) {
            let field = Field::square(400.0);
            let mut positions: Vec<Point2> =
                pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let mut grid = SpatialGrid::new(field, range);
            let mut adj = Adjacency::build_with_grid(&mut grid, &positions, range);
            let mut scratch = PatchScratch::new();
            let mut changed = Vec::new();
            for step in &steps {
                // move an arbitrary subset (small draws mean "stay put",
                // so some nodes never move); report exactly who moved
                let mut movers = Vec::new();
                for (i, &(dx, dy)) in step.iter().cycle().take(positions.len()).enumerate() {
                    if dx.abs() + dy.abs() < 40.0 {
                        continue;
                    }
                    let p = &mut positions[i];
                    let before = *p;
                    p.x = (p.x + dx).clamp(0.0, 400.0);
                    p.y = (p.y + dy).clamp(0.0, 400.0);
                    if *p != before {
                        movers.push(NodeId::from(i));
                    }
                }
                let before = adj.clone();
                let out = adj.patch_with_grid(
                    &mut grid, &positions, range, &movers, &mut changed, &mut scratch);
                let fresh = Adjacency::build(field, &positions, range);
                prop_assert_eq!(adj.canonical_csr(), fresh.canonical_csr());
                assert_csr_invariants(&adj);
                if let AdjacencyUpdate::Patched { .. } = out {
                    // `changed` must be exactly the rows that differ from
                    // the pre-patch snapshot
                    let mut got = changed.clone();
                    got.sort();
                    let expect: Vec<NodeId> = NodeId::all(positions.len())
                        .filter(|&v| adj.neighbors_changed(&before, v))
                        .collect();
                    prop_assert_eq!(got, expect, "changed-row report is wrong");
                    // the undo log must reconstruct every changed row's
                    // pre-patch content, in the changed-row order
                    prop_assert_eq!(scratch.undo_count(), changed.len());
                    for (k, &row) in changed.iter().enumerate() {
                        let (node, old) = scratch.undo_entry(k);
                        prop_assert_eq!(node, row);
                        prop_assert_eq!(old, before.neighbors(node),
                            "undo row {} does not match the snapshot", node);
                    }
                }
            }
        }

        /// The parallel kernel rebuild and the kernel patch are
        /// bit-identical (canonical CSR) to the serial scalar reference
        /// across multi-step movement sequences that exercise the patch
        /// path, the churn fallback and node jumps — and the position
        /// plane stays coherent throughout.
        #[test]
        fn prop_kernel_paths_equal_scalar_reference(
            pts in proptest::collection::vec((0.0..400.0f64, 0.0..400.0f64), 1..60),
            steps in proptest::collection::vec(
                proptest::collection::vec((-80.0..80.0f64, -80.0..80.0f64), 1..60),
                1..5),
            range in 30.0..60.0f64,
        ) {
            let field = Field::square(400.0);
            let mut positions: Vec<Point2> =
                pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let mut grid_k = SpatialGrid::new(field, range);
            let mut plane = PositionPlane::new();
            let mut kscratch = KernelScratch::new();
            let mut kernel = Adjacency::with_nodes(positions.len());
            kernel.rebuild_with_grid_parallel(
                &mut grid_k, &mut plane, &positions, range, &mut kscratch);
            let mut grid_s = SpatialGrid::new(field, range);
            let mut scalar = Adjacency::build_with_grid(&mut grid_s, &positions, range);
            prop_assert_eq!(kernel.canonical_csr(), scalar.canonical_csr());
            let mut kpatch = PatchScratch::new();
            let mut spatch = PatchScratch::new();
            let (mut kchanged, mut schanged) = (Vec::new(), Vec::new());
            for step in &steps {
                let mut movers = Vec::new();
                for (i, &(dx, dy)) in step.iter().cycle().take(positions.len()).enumerate() {
                    if dx.abs() + dy.abs() < 40.0 {
                        continue;
                    }
                    let p = &mut positions[i];
                    let before = *p;
                    p.x = (p.x + dx).clamp(0.0, 400.0);
                    p.y = (p.y + dy).clamp(0.0, 400.0);
                    if *p != before {
                        movers.push(NodeId::from(i));
                    }
                }
                kernel.patch_with_grid_kernel(
                    &mut grid_k, &mut plane, &positions, range,
                    &movers, &movers, &mut kchanged, &mut kpatch, &mut kscratch);
                scalar.patch_with_grid_active(
                    &mut grid_s, &positions, range,
                    &movers, &movers, &mut schanged, &mut spatch);
                prop_assert_eq!(kernel.canonical_csr(), scalar.canonical_csr());
                prop_assert!(plane.is_coherent(&positions), "plane lost coherence");
                assert_csr_invariants(&kernel);
                // both paths agree on the changed-row report
                let mut kc = kchanged.clone();
                let mut sc = schanged.clone();
                kc.sort();
                sc.sort();
                prop_assert_eq!(kc, sc);
            }
        }

        /// Borderline-pair stress: positions dithered within (multiples
        /// of) the f32 error band around `range`, so many pair distances
        /// land where f32 cannot decide. Kernel link decisions must equal
        /// the exact f64 decisions bit for bit, and the borderline lanes
        /// must actually hit the exact-check path.
        #[test]
        fn prop_borderline_pairs_match_exact_decisions(
            seeds in proptest::collection::vec((0usize..40, -400i64..400), 8..40),
            base in 0.0..300.0f64,
        ) {
            let field = Field::square(710.0);
            let range = 50.0;
            // cluster the nodes along a line at spacings dithered within
            // ±4e-6 of the range (≈ the f32 band at these coordinates)
            let positions: Vec<Point2> = seeds.iter().map(|&(k, d)| {
                let dither = d as f64 * 1e-8;
                Point2::new(base + k as f64 * (range / 8.0) + dither, base + range + dither)
            }).collect();
            let mut grid_k = SpatialGrid::new(field, range);
            let mut plane = PositionPlane::new();
            let mut kscratch = KernelScratch::new();
            let mut kernel = Adjacency::with_nodes(positions.len());
            kernel.rebuild_with_grid_parallel(
                &mut grid_k, &mut plane, &positions, range, &mut kscratch);
            let exact = Adjacency::build(field, &positions, range);
            prop_assert_eq!(kernel.canonical_csr(), exact.canonical_csr());
            // the naive O(N²) definition agrees too (belt and braces)
            let r_sq = range * range;
            for (i, &p) in positions.iter().enumerate() {
                let expect: Vec<NodeId> = positions.iter().enumerate()
                    .filter(|&(j, q)| j != i && q.dist_sq(p) <= r_sq)
                    .map(|(j, _)| NodeId::from(j))
                    .collect();
                prop_assert_eq!(kernel.neighbors(NodeId::from(i)), &expect[..]);
            }
        }
    }
}

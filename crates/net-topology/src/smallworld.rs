//! Small-world metrics (Watts–Strogatz \[10\]\[11\]).
//!
//! CARD's founding idea (§I) is that contacts act as the random shortcuts
//! of a Watts–Strogatz small world: a network with high local clustering
//! gains drastically shorter characteristic path lengths from a handful of
//! long-range links. This module computes the two classic metrics on any
//! [`Adjacency`] — the experiment harness uses them to show that the
//! *contact-augmented* graph has small-world characteristics the bare
//! unit-disk graph lacks.

use crate::bfs::full_bfs;
use crate::graph::Adjacency;
use crate::node::NodeId;

/// Watts–Strogatz metrics of one graph snapshot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SmallWorldMetrics {
    /// Mean local clustering coefficient over nodes with degree ≥ 2.
    pub clustering: f64,
    /// Characteristic path length: mean hop distance over connected
    /// ordered pairs.
    pub path_length: f64,
    /// Fraction of ordered node pairs that are connected at all.
    pub connected_pair_fraction: f64,
}

/// Local clustering coefficient of `node`: the fraction of its neighbor
/// pairs that are themselves adjacent. `None` when degree < 2.
pub fn local_clustering(adj: &Adjacency, node: NodeId) -> Option<f64> {
    let neighbors = adj.neighbors(node);
    let k = neighbors.len();
    if k < 2 {
        return None;
    }
    let mut closed = 0usize;
    for (i, &a) in neighbors.iter().enumerate() {
        for &b in &neighbors[i + 1..] {
            if adj.is_neighbor(a, b) {
                closed += 1;
            }
        }
    }
    Some(closed as f64 / (k * (k - 1) / 2) as f64)
}

impl SmallWorldMetrics {
    /// Compute clustering and characteristic path length (one BFS per
    /// node, O(N·E)).
    pub fn compute(adj: &Adjacency) -> Self {
        let n = adj.node_count();
        let mut clustering_sum = 0.0;
        let mut clustering_count = 0usize;
        let mut hop_sum = 0u64;
        let mut pair_count = 0u64;
        let total_pairs = (n as u64).saturating_mul(n as u64 - 1).max(1);

        for node in NodeId::all(n) {
            if let Some(c) = local_clustering(adj, node) {
                clustering_sum += c;
                clustering_count += 1;
            }
            let bfs = full_bfs(adj, node);
            for &v in bfs.visited() {
                if v != node {
                    hop_sum += bfs.distance(v).unwrap() as u64;
                    pair_count += 1;
                }
            }
        }

        SmallWorldMetrics {
            clustering: if clustering_count == 0 {
                0.0
            } else {
                clustering_sum / clustering_count as f64
            },
            path_length: if pair_count == 0 {
                0.0
            } else {
                hop_sum as f64 / pair_count as f64
            },
            connected_pair_fraction: pair_count as f64 / total_pairs as f64,
        }
    }
}

/// Overlay extra "shortcut" edges (e.g. contact links) on a copy of the
/// base graph and return it. Used to measure how much contacts shrink the
/// characteristic path length.
pub fn with_shortcuts(adj: &Adjacency, shortcuts: &[(NodeId, NodeId)]) -> Adjacency {
    let mut out = adj.clone();
    for &(a, b) in shortcuts {
        if a != b {
            out.add_edge(a, b);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Adjacency {
        // 0-1-2 triangle, tail 2-3
        let mut adj = Adjacency::with_nodes(4);
        adj.add_edge(NodeId(0), NodeId(1));
        adj.add_edge(NodeId(1), NodeId(2));
        adj.add_edge(NodeId(0), NodeId(2));
        adj.add_edge(NodeId(2), NodeId(3));
        adj
    }

    #[test]
    fn clustering_of_triangle_members() {
        let adj = triangle_plus_tail();
        assert_eq!(local_clustering(&adj, NodeId(0)), Some(1.0));
        assert_eq!(local_clustering(&adj, NodeId(1)), Some(1.0));
        // node 2 has neighbors {0,1,3}: one closed pair of three
        assert_eq!(local_clustering(&adj, NodeId(2)), Some(1.0 / 3.0));
        // degree-1 node has no coefficient
        assert_eq!(local_clustering(&adj, NodeId(3)), None);
    }

    #[test]
    fn complete_graph_metrics() {
        let mut adj = Adjacency::with_nodes(5);
        for i in 0..5u32 {
            for j in i + 1..5 {
                adj.add_edge(NodeId(i), NodeId(j));
            }
        }
        let m = SmallWorldMetrics::compute(&adj);
        assert_eq!(m.clustering, 1.0);
        assert_eq!(m.path_length, 1.0);
        assert_eq!(m.connected_pair_fraction, 1.0);
    }

    #[test]
    fn path_graph_metrics() {
        let mut adj = Adjacency::with_nodes(4);
        for i in 0..3u32 {
            adj.add_edge(NodeId(i), NodeId(i + 1));
        }
        let m = SmallWorldMetrics::compute(&adj);
        assert_eq!(m.clustering, 0.0, "paths have no triangles");
        // ordered pairs: same as TopologyMetrics avg hops = 20/12
        assert!((m.path_length - 20.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn edgeless_graph() {
        let adj = Adjacency::with_nodes(3);
        let m = SmallWorldMetrics::compute(&adj);
        assert_eq!(m.clustering, 0.0);
        assert_eq!(m.path_length, 0.0);
        assert_eq!(m.connected_pair_fraction, 0.0);
    }

    #[test]
    fn shortcuts_shrink_path_length() {
        // long cycle: adding one chord cuts the characteristic path length
        let n = 20u32;
        let mut adj = Adjacency::with_nodes(n as usize);
        for i in 0..n {
            adj.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        let base = SmallWorldMetrics::compute(&adj);
        let shortcut = with_shortcuts(&adj, &[(NodeId(0), NodeId(10)), (NodeId(5), NodeId(15))]);
        let improved = SmallWorldMetrics::compute(&shortcut);
        assert!(
            improved.path_length < base.path_length,
            "shortcuts must reduce path length ({} -> {})",
            base.path_length,
            improved.path_length
        );
        // clustering is untouched on a triangle-free overlay... (chords may
        // create none here), connectivity unchanged
        assert_eq!(improved.connected_pair_fraction, 1.0);
    }

    #[test]
    fn with_shortcuts_ignores_self_loops() {
        let adj = triangle_plus_tail();
        let same = with_shortcuts(&adj, &[(NodeId(1), NodeId(1))]);
        assert_eq!(same.link_count(), adj.link_count());
    }

    #[test]
    fn unit_disk_graphs_are_clustered() {
        // Geometric graphs have high clustering — the "order" half of the
        // small-world story.
        let (_, adj) = crate::scenario::Scenario::new(200, 500.0, 500.0, 60.0).instantiate(3);
        let m = SmallWorldMetrics::compute(&adj);
        assert!(
            m.clustering > 0.4,
            "unit-disk clustering should be high, got {:.2}",
            m.clustering
        );
    }
}

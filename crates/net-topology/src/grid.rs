//! Spatial hash grid for neighbor queries.
//!
//! Rebuilding the unit-disk graph naively is O(N²) distance checks per
//! mobility tick. The grid partitions the field into square cells whose side
//! equals the transmission range; all neighbors of a point then lie in its
//! own cell or the 8 surrounding ones, giving O(N · avg-degree) rebuilds.
//!
//! Like [`crate::graph::Adjacency`], the buckets are stored in CSR form
//! (one flat entry array plus per-cell offsets), but with a little *slack*
//! capacity per cell so occupancy can change without relaying the whole
//! array.
//!
//! ## Mover-only updates
//!
//! The grid tracks every node's *cell residency* (`cell_of_node` +
//! `slot_of_node`). On a mobility tick, [`SpatialGrid::update`] compares
//! each node's new cell against its recorded one and re-buckets **only the
//! movers that crossed a cell boundary** — an O(1) swap-remove from the old
//! cell and an append into the new cell's slack. At the protocol's 100 ms
//! tick and pedestrian speeds, a node crosses a 50 m cell boundary every
//! few hundred ticks, so the per-tick bucketing cost collapses from
//! "rewrite all N entries" to "touch a handful of movers".
//!
//! [`SpatialGrid::update_reported`] goes one step further: when the
//! mobility model reports which nodes actually moved
//! (`MobilityModel::advance_reporting`), even the *detection* scan is
//! skipped — the residency check runs only over the reported movers, so a
//! tick where k nodes move costs O(k) grid work total.
//!
//! Past a churn threshold (> 1/8 of nodes crossing at once), on any cell
//! overflowing its slack, or when the node count changes, `update` falls
//! back to [`SpatialGrid::rebuild`] — a full counting-sort relayout that
//! re-provisions slack — so heavy churn degrades to exactly the old
//! full-rebuild cost rather than to splice churn.

use crate::geometry::{Field, Point2};
use crate::node::NodeId;
use crate::plane::{KernelBand, KernelScratch, KernelStats, PositionPlane};

/// Outcome of a [`SpatialGrid::update`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GridUpdate {
    /// Only nodes that crossed a cell boundary were re-bucketed.
    Incremental {
        /// Number of nodes moved between cells.
        movers: usize,
    },
    /// A full relayout ran (first build, node-count change, cell overflow,
    /// or churn past the threshold).
    Full,
}

/// Churn fallback: if more than `N / CHURN_DIVISOR` nodes cross a cell
/// boundary in one update, a full relayout is cheaper than mover-by-mover
/// surgery (and re-provisions slack while at it).
const CHURN_DIVISOR: usize = 8;

/// Sentinel filling every slack slot, so range scans can fuse a whole
/// 3-cell row (gaps included) and skip vacancies with one compare.
const VACANT: NodeId = NodeId(u32::MAX);

/// A uniform grid over a [`Field`] with cell side ≥ the query radius.
#[derive(Clone)]
pub struct SpatialGrid {
    cell_side: f64,
    /// `1 / cell_side`, so bucketing multiplies instead of divides.
    inv_side: f64,
    cols: usize,
    rows: usize,
    /// Cell `c`'s capacity spans `entries[starts[c] .. starts[c + 1]]`; only
    /// the first `lens[c]` slots are live (the rest is slack).
    starts: Vec<u32>,
    /// Live occupant count per cell.
    lens: Vec<u32>,
    /// Node ids, bucketed by cell (unordered within a cell).
    entries: Vec<NodeId>,
    /// Cell residency per node (the mover-detection state).
    cell_of_node: Vec<u32>,
    /// Position of each node inside `entries` (O(1) removal).
    slot_of_node: Vec<u32>,
    /// Scratch: per-cell write cursor for the full relayout pass.
    cursor: Vec<u32>,
    /// Scratch: `(node, new_cell)` movers of the current update.
    movers: Vec<(u32, u32)>,
    /// Rotating start index for [`SpatialGrid::audit_residency`], so
    /// repeated sampled audits sweep the whole population.
    audit_cursor: u32,
}

impl SpatialGrid {
    /// Build a grid for `field` sized for range queries of radius `range`.
    ///
    /// # Panics
    /// Panics unless `range` is positive and finite.
    pub fn new(field: Field, range: f64) -> Self {
        assert!(range > 0.0 && range.is_finite(), "invalid range {range}");
        let cols = (field.width() / range).ceil().max(1.0) as usize;
        let rows = (field.height() / range).ceil().max(1.0) as usize;
        SpatialGrid {
            cell_side: range,
            inv_side: 1.0 / range,
            cols,
            rows,
            starts: vec![0; cols * rows + 1],
            lens: vec![0; cols * rows],
            entries: Vec::new(),
            cell_of_node: Vec::new(),
            slot_of_node: Vec::new(),
            cursor: Vec::new(),
            movers: Vec::new(),
            audit_cursor: 0,
        }
    }

    /// Number of grid cells.
    pub fn cell_count(&self) -> usize {
        self.starts.len() - 1
    }

    #[inline]
    fn cell_of(&self, p: Point2) -> (usize, usize) {
        let cx = ((p.x * self.inv_side) as usize).min(self.cols - 1);
        let cy = ((p.y * self.inv_side) as usize).min(self.rows - 1);
        (cx, cy)
    }

    #[inline]
    fn cell_index(&self, p: Point2) -> u32 {
        let (cx, cy) = self.cell_of(p);
        (cy * self.cols + cx) as u32
    }

    /// Slack slots provisioned for a cell of `len` occupants during a full
    /// relayout, absorbing arrivals until the next relayout. Kept tight:
    /// every slack slot is scanned (as a sentinel) by range queries, which
    /// dominate the adjacency rebuild — overflowing into an occasional
    /// O(N) relayout is cheaper than padding every scan.
    #[inline]
    fn slack(len: u32) -> u32 {
        1 + len / 8
    }

    /// Full relayout: clear and re-bucket every node position (counting
    /// sort into the CSR buffers with per-cell slack; no allocation once
    /// the buffers have grown). Positions outside the field are clamped
    /// into the boundary cells.
    pub fn rebuild(&mut self, positions: &[Point2]) {
        let cells = self.cell_count();
        // Pass 1: record each node's cell and count occupants per cell.
        self.lens.fill(0);
        self.cell_of_node.clear();
        for &p in positions {
            let cell = self.cell_index(p);
            self.cell_of_node.push(cell);
            self.lens[cell as usize] += 1;
        }
        // Capacity boundaries with slack, via prefix sum.
        let mut acc = 0u32;
        for c in 0..cells {
            self.starts[c] = acc;
            acc += self.lens[c] + Self::slack(self.lens[c]);
        }
        self.starts[cells] = acc;
        // Pass 2: place nodes, advancing a per-cell write cursor. Every
        // slack slot is stamped `VACANT` so row scans can run fused.
        self.entries.clear();
        self.entries.resize(acc as usize, VACANT);
        self.slot_of_node.resize(positions.len(), 0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.starts[..cells]);
        for (i, &cell) in self.cell_of_node.iter().enumerate() {
            let slot = &mut self.cursor[cell as usize];
            self.entries[*slot as usize] = NodeId::from(i);
            self.slot_of_node[i] = *slot;
            *slot += 1;
        }
    }

    /// Bring the grid up to date with `positions`, re-bucketing only the
    /// nodes that crossed a cell boundary since the last
    /// `rebuild`/`update`. Falls back to a full relayout when the node
    /// count changed, churn exceeds the threshold, or a cell's slack
    /// overflows. Either way the resulting buckets are equivalent to a
    /// fresh [`SpatialGrid::rebuild`] (cell contents are unordered sets).
    ///
    /// This variant *scans all N residencies* to find the boundary
    /// crossers. When the caller already knows which nodes moved (a
    /// mobility model reporting its movers), prefer
    /// [`SpatialGrid::update_reported`], which skips the scan entirely.
    pub fn update(&mut self, positions: &[Point2]) -> GridUpdate {
        let n = positions.len();
        if self.cell_of_node.len() != n {
            self.rebuild(positions);
            return GridUpdate::Full;
        }
        // Detect boundary crossers (cheap: two divisions per node).
        let mut movers = std::mem::take(&mut self.movers);
        movers.clear();
        for (i, &p) in positions.iter().enumerate() {
            let new_cell = self.cell_index(p);
            if new_cell != self.cell_of_node[i] {
                movers.push((i as u32, new_cell));
            }
        }
        self.apply_movers(positions, movers)
    }

    /// Like [`SpatialGrid::update`], but the caller supplies the set of
    /// nodes whose positions may have changed (`reported`), so boundary
    /// crossing is checked only for those — O(movers), not O(N).
    ///
    /// # Contract
    /// `reported` must contain **every** node whose position changed since
    /// the grid last matched `positions` (a superset is fine — extra ids
    /// just cost one residency check each). Mobility models produce exact
    /// reports via `MobilityModel::advance_reporting`. An under-report
    /// leaves stale buckets; debug builds catch that with an O(N) sweep.
    pub fn update_reported(&mut self, positions: &[Point2], reported: &[NodeId]) -> GridUpdate {
        let n = positions.len();
        if self.cell_of_node.len() != n {
            self.rebuild(positions);
            return GridUpdate::Full;
        }
        let mut movers = std::mem::take(&mut self.movers);
        movers.clear();
        for &id in reported {
            let i = id.index();
            let new_cell = self.cell_index(positions[i]);
            if new_cell != self.cell_of_node[i] {
                movers.push((i as u32, new_cell));
            }
        }
        let out = self.apply_movers(positions, movers);
        #[cfg(debug_assertions)]
        for (i, &p) in positions.iter().enumerate() {
            debug_assert_eq!(
                self.cell_of_node[i],
                self.cell_index(p),
                "node {i} moved cells but was not in the reported mover set"
            );
        }
        out
    }

    /// Shared tail of `update`/`update_reported`: re-bucket the detected
    /// boundary crossers, falling back to a full relayout on churn or
    /// slack overflow. Takes ownership of the scratch mover list and
    /// stores it back for reuse.
    fn apply_movers(&mut self, positions: &[Point2], movers: Vec<(u32, u32)>) -> GridUpdate {
        let n = positions.len();
        if movers.len() > n / CHURN_DIVISOR {
            self.movers = movers;
            self.rebuild(positions);
            return GridUpdate::Full;
        }
        for k in 0..movers.len() {
            let (node, new_cell) = movers[k];
            let (node_u, old_cell, new_c) =
                (node as usize, self.cell_of_node[node as usize], new_cell);
            if self.lens[new_c as usize]
                >= self.starts[new_c as usize + 1] - self.starts[new_c as usize]
            {
                // Destination cell out of slack: full relayout re-provisions.
                self.movers = movers;
                self.rebuild(positions);
                return GridUpdate::Full;
            }
            // Swap-remove from the old cell (re-stamping the vacated slot)…
            let slot = self.slot_of_node[node_u];
            let last = self.starts[old_cell as usize] + self.lens[old_cell as usize] - 1;
            let displaced = self.entries[last as usize];
            self.entries[slot as usize] = displaced;
            self.slot_of_node[displaced.index()] = slot;
            self.entries[last as usize] = VACANT;
            self.lens[old_cell as usize] -= 1;
            // …and append into the new cell's slack.
            let dst = self.starts[new_c as usize] + self.lens[new_c as usize];
            self.entries[dst as usize] = NodeId::from(node_u);
            self.slot_of_node[node_u] = dst;
            self.cell_of_node[node_u] = new_c;
            self.lens[new_c as usize] += 1;
        }
        let count = movers.len();
        self.movers = movers;
        GridUpdate::Incremental { movers: count }
    }

    /// Sampled residency audit — the release-build counterpart of the
    /// debug-only O(N) sweep in [`SpatialGrid::update_reported`].
    ///
    /// Checks up to `samples` nodes (a rotating window starting where the
    /// previous audit stopped, so repeated calls sweep the whole
    /// population) against the contract that every node is bucketed in the
    /// cell its current position maps to. Returns the number of violations
    /// found; any non-zero count means a mobility model under-reported its
    /// movers and the grid is serving stale buckets. With `samples = N`
    /// this is exactly the debug sweep, as a count instead of an assert.
    pub fn audit_residency(&mut self, positions: &[Point2], samples: usize) -> usize {
        let n = self.cell_of_node.len().min(positions.len());
        debug_assert_eq!(
            self.cell_of_node.len(),
            positions.len(),
            "auditing against a position slice the grid does not track"
        );
        if n == 0 || samples == 0 {
            return 0;
        }
        let mut violations = 0;
        let mut i = self.audit_cursor as usize % n;
        for _ in 0..samples.min(n) {
            if self.cell_of_node[i] != self.cell_index(positions[i]) {
                violations += 1;
            }
            i += 1;
            if i == n {
                i = 0;
            }
        }
        self.audit_cursor = i as u32;
        violations
    }

    /// Targeted form of [`SpatialGrid::audit_residency`]: check exactly
    /// `nodes` against the residency contract instead of a rotating
    /// sample. Fault events (crash, rejoin) leave a node's position —
    /// and therefore its bucket — untouched, so the event sites are
    /// audited directly. Out-of-range ids are ignored; the sampling
    /// cursor does not advance.
    pub fn audit_nodes(&self, positions: &[Point2], nodes: &[NodeId]) -> usize {
        let n = self.cell_of_node.len().min(positions.len());
        let mut violations = 0;
        for &node in nodes {
            let i = node.index();
            if i < n && self.cell_of_node[i] != self.cell_index(positions[i]) {
                violations += 1;
            }
        }
        violations
    }

    /// Number of nodes the grid currently tracks residency for (the length
    /// of the position slice it was last rebuilt/updated with).
    #[inline]
    pub fn tracked_nodes(&self) -> usize {
        self.cell_of_node.len()
    }

    /// The cell `node` is currently bucketed in (its recorded residency as
    /// of the last `rebuild`/`update`).
    ///
    /// # Panics
    /// Panics if `node` is outside the tracked range.
    #[inline]
    pub fn node_cell(&self, node: NodeId) -> u32 {
        self.cell_of_node[node.index()]
    }

    /// The cell index position `p` buckets into (out-of-field positions
    /// clamp to the boundary cells, mirroring `rebuild`).
    #[inline]
    pub fn cell_at(&self, p: Point2) -> u32 {
        self.cell_index(p)
    }

    /// Conservative guarantee radius of the 3×3 cell ball around `p`'s
    /// cell: every node whose *bucketed position* lies within this
    /// distance of `p` is visited by
    /// [`SpatialGrid::for_each_in_cell_ball`]`(cell_at(p))`. The ball
    /// extends one full cell side beyond `p`'s cell, so the guarantee is
    /// the cell side plus `p`'s distance to its cell's nearest edge — and
    /// can drop below the cell side (even negative) for positions clamped
    /// into boundary cells from outside the field, where no guarantee
    /// holds. Callers gate range-annulus shortcuts on this value.
    #[inline]
    pub fn ball_coverage(&self, p: Point2) -> f64 {
        let (cx, cy) = self.cell_of(p);
        let fx = p.x - cx as f64 * self.cell_side;
        let fy = p.y - cy as f64 * self.cell_side;
        let margin = fx.min(self.cell_side - fx).min(fy).min(self.cell_side - fy);
        self.cell_side + margin
    }

    /// Visit every live occupant of the 3×3 cell ball centered on `cell` —
    /// the cells a range-≤`cell_side` query launched from anywhere inside
    /// `cell` can reach. No distance filtering: this is the *candidate*
    /// superset the CSR adjacency patcher uses to find nodes whose link
    /// set a mover may have touched.
    pub fn for_each_in_cell_ball(&self, cell: u32, mut visit: impl FnMut(NodeId)) {
        let cx = cell as usize % self.cols;
        let cy = cell as usize / self.cols;
        let x0 = cx.saturating_sub(1);
        let y0 = cy.saturating_sub(1);
        let x1 = (cx + 1).min(self.cols - 1);
        let y1 = (cy + 1).min(self.rows - 1);
        for gy in y0..=y1 {
            // Same fused-row trick as `for_each_within`: slack gaps hold
            // `VACANT` sentinels, so three cells scan as one slice.
            let lo = self.starts[gy * self.cols + x0] as usize;
            let hi = self.starts[gy * self.cols + x1 + 1] as usize;
            for &id in &self.entries[lo..hi] {
                if id != VACANT {
                    visit(id);
                }
            }
        }
    }

    /// Visit every node within `radius` of `center` (excluding `exclude`,
    /// typically the querying node itself). `radius` must not exceed the
    /// cell side the grid was built with.
    #[inline]
    pub fn for_each_within(
        &self,
        positions: &[Point2],
        center: Point2,
        radius: f64,
        exclude: Option<NodeId>,
        mut visit: impl FnMut(NodeId),
    ) {
        debug_assert!(
            radius <= self.cell_side + 1e-9,
            "query radius {radius} exceeds grid cell side {}",
            self.cell_side
        );
        let r_sq = radius * radius;
        let (cx, cy) = self.cell_of(center);
        let x0 = cx.saturating_sub(1);
        let y0 = cy.saturating_sub(1);
        let x1 = (cx + 1).min(self.cols - 1);
        let y1 = (cy + 1).min(self.rows - 1);
        for gy in y0..=y1 {
            // Cells x0..=x1 of this row are contiguous in the CSR buffers;
            // slack gaps between them hold `VACANT` sentinels, so the three
            // cells still scan as one fused slice.
            let lo = self.starts[gy * self.cols + x0] as usize;
            let hi = self.starts[gy * self.cols + x1 + 1] as usize;
            for &id in &self.entries[lo..hi] {
                if id == VACANT || Some(id) == exclude {
                    continue;
                }
                if positions[id.index()].dist_sq(center) <= r_sq {
                    visit(id);
                }
            }
        }
    }

    /// The cell side the grid was built with (the maximum query radius).
    #[inline]
    pub fn cell_side(&self) -> f64 {
        self.cell_side
    }

    /// The raw CSR entry array (kernel and bench plumbing): live node ids
    /// bucketed by cell, with every slack slot holding the vacant
    /// sentinel. Index it through [`SpatialGrid::ball_rows`].
    #[inline]
    pub fn entries_raw(&self) -> &[NodeId] {
        &self.entries
    }

    /// The fused entry-row spans of the 3×3 cell ball around `center`: up
    /// to three `(lo, hi)` ranges into [`SpatialGrid::entries_raw`], one
    /// per grid row, each covering three adjacent cells *including the
    /// interior slack gaps* (the gaps hold vacant sentinels, so a scan
    /// can stream the whole span). The trailing cell's slack is trimmed
    /// off the end — at typical occupancies that's a measurable fraction
    /// of the lanes a kernel would otherwise classify just to reject.
    /// Returns the spans and how many are valid.
    #[inline]
    pub fn ball_rows(&self, center: Point2) -> ([(u32, u32); 3], usize) {
        let (cx, cy) = self.cell_of(center);
        let x0 = cx.saturating_sub(1);
        let y0 = cy.saturating_sub(1);
        let x1 = (cx + 1).min(self.cols - 1);
        let y1 = (cy + 1).min(self.rows - 1);
        let mut spans = [(0u32, 0u32); 3];
        let mut count = 0;
        for gy in y0..=y1 {
            let last = gy * self.cols + x1;
            spans[count] = (
                self.starts[gy * self.cols + x0],
                self.starts[last] + self.lens[last],
            );
            count += 1;
        }
        (spans, count)
    }

    /// The *forward half* of the cell ball around `center`, for kernels
    /// that visit every unordered pair exactly once (the whole-CSR
    /// rebuild): the center's own cell, its east neighbor, and the fused
    /// south row (SW, S, SE). For nodes i ≠ j in range, exactly one of
    /// the two scans (from i or from j) covers the pair — east/south
    /// asymmetry resolves cross-cell pairs, and same-cell pairs are
    /// deduplicated by an `id > i` filter the caller applies to the own-
    /// cell span only. Own and east spans cover *live* entries exactly
    /// (no slack lanes); the south span is a fused row with interior
    /// slack and its tail trimmed. Absent neighbors (field edge) come
    /// back as empty spans.
    #[inline]
    pub fn half_ball_rows(&self, center: Point2) -> [(u32, u32); 3] {
        let (cx, cy) = self.cell_of(center);
        let own = cy * self.cols + cx;
        let own_span = (self.starts[own], self.starts[own] + self.lens[own]);
        let east_span = if cx + 1 < self.cols {
            let e = own + 1;
            (self.starts[e], self.starts[e] + self.lens[e])
        } else {
            (0, 0)
        };
        let south_span = if cy + 1 < self.rows {
            let x0 = cx.saturating_sub(1);
            let x1 = (cx + 1).min(self.cols - 1);
            let last = (cy + 1) * self.cols + x1;
            (
                self.starts[(cy + 1) * self.cols + x0],
                self.starts[last] + self.lens[last],
            )
        } else {
            (0, 0)
        };
        [own_span, east_span, south_span]
    }

    /// Fill `scratch`'s entry-aligned lane mirror from `plane`: one
    /// `(x, y)` f32 lane per CSR entry slot, with vacant slots mapped onto
    /// the plane's infinite sentinel lane (branch-free, and infinity
    /// classifies as "out of range" in every kernel pass for free). The
    /// mirror is valid until the grid or the plane next changes; the
    /// whole-CSR rebuild kernels fill it once and then stream contiguous
    /// slices instead of gathering per row.
    pub fn fill_lane_mirror(&self, plane: &PositionPlane, scratch: &mut KernelScratch) {
        let (xs, ys) = plane.lanes();
        let n = plane.len();
        scratch.mirror_x.clear();
        scratch.mirror_y.clear();
        scratch
            .mirror_x
            .extend(self.entries.iter().map(|&id| xs[id.index().min(n)]));
        scratch
            .mirror_y
            .extend(self.entries.iter().map(|&id| ys[id.index().min(n)]));
    }

    /// Kernel variant of [`SpatialGrid::for_each_within`] reading the
    /// prefilled lane mirror (see [`SpatialGrid::fill_lane_mirror`]):
    /// per fused row, squared f32 distances over contiguous mirror lanes
    /// are classified through `band` in one streaming pass — fast accept,
    /// fast reject, or exact f64 resolution for borderline lanes. Visits
    /// exactly the nodes the scalar path visits, in the same order.
    pub fn for_each_within_mirror(
        &self,
        band: KernelBand,
        positions: &[Point2],
        center: Point2,
        exclude: Option<NodeId>,
        scratch: &mut KernelScratch,
        mut visit: impl FnMut(NodeId),
    ) {
        let (spans, count) = self.ball_rows(center);
        let KernelScratch {
            mirror_x,
            mirror_y,
            cand,
            stats,
            ..
        } = scratch;
        for &(lo, hi) in &spans[..count] {
            let (lo, hi) = (lo as usize, hi as usize);
            kernel_scan_row(
                &self.entries[lo..hi],
                &mirror_x[lo..hi],
                &mirror_y[lo..hi],
                band,
                positions,
                center,
                0,
                exclude,
                cand,
                stats,
                &mut visit,
            );
        }
    }

    /// Kernel variant of [`SpatialGrid::for_each_within`] that gathers
    /// candidate lanes per row straight from the plane (no mirror
    /// required — the patch path uses this for its handful of row
    /// re-queries, where filling a whole-CSR mirror would cost O(N)).
    /// Computes its own band from the plane; visits exactly the nodes the
    /// scalar path visits, in the same order.
    #[allow(clippy::too_many_arguments)]
    pub fn for_each_within_kernel(
        &self,
        plane: &PositionPlane,
        positions: &[Point2],
        center: Point2,
        radius: f64,
        exclude: Option<NodeId>,
        scratch: &mut KernelScratch,
        mut visit: impl FnMut(NodeId),
    ) {
        debug_assert!(
            radius <= self.cell_side + 1e-9,
            "query radius {radius} exceeds grid cell side {}",
            self.cell_side
        );
        let band = plane.band(radius, self.cell_side);
        let (spans, count) = self.ball_rows(center);
        let (xs, ys) = plane.lanes();
        let sentinel = plane.len();
        let (cx, cy) = (center.x as f32, center.y as f32);
        let KernelScratch { cand, stats, .. } = scratch;
        for &(lo, hi) in &spans[..count] {
            let (lo, hi) = (lo as usize, hi as usize);
            let row = &self.entries[lo..hi];
            // Fused gather + branch-free compaction (see
            // `kernel_scan_row`): lanes pulled straight from the plane by
            // id, vacant ids hit the infinite sentinel lane and compact
            // themselves away.
            let n = row.len();
            stats.lanes += n as u64;
            if cand.len() < n {
                cand.resize(n, (0.0, NodeId::from(0usize)));
            }
            let buf = &mut cand[..n];
            let mut m = 0usize;
            for &id in row {
                let lane = id.index().min(sentinel);
                let dx = xs[lane] - cx;
                let dy = ys[lane] - cy;
                let d2 = dx * dx + dy * dy;
                // `m` advances at most once per lane, so it stays in bounds.
                buf[m] = (d2, id);
                m += (d2 <= band.hi) as usize;
            }
            for &(d2, id) in &buf[..m] {
                if Some(id) == exclude {
                    continue;
                }
                if d2 > band.lo {
                    stats.exact_checks += 1;
                    if positions[id.index()].dist_sq(center) > band.r_sq {
                        continue;
                    }
                }
                visit(id);
            }
        }
    }

    /// Collect every node within `radius` of `center` into a vector.
    pub fn within(
        &self,
        positions: &[Point2],
        center: Point2,
        radius: f64,
        exclude: Option<NodeId>,
    ) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.for_each_within(positions, center, radius, exclude, |id| out.push(id));
        out
    }
}

/// Fused distance-and-compact pass of the two-phase kernel over one
/// fused entry row. Pass 1 streams every lane branch-free: compute the
/// squared f32 distance from the mirrored lane coordinates, uncondition-
/// ally store `(d2, id)` into the candidate buffer, and advance the
/// write cursor only when `d2 <= band.hi` (most lanes reject, and a
/// conditional *increment* never mispredicts the way a conditional
/// *branch* over a ~20% accept rate does; a chunked mask variant was
/// measured slower at the ~12-lane rows the grid actually produces).
/// Vacant entries carry infinite lanes and compact themselves away for
/// free. Pass 2 resolves the handful of survivors in lane order
/// (matching the scalar visit order): skip ids below `min_id` (the
/// half-ball rebuild's same-cell deduplication — pass 0 to keep every
/// id) and the excluded id, fast-accept at `<= lo`, exact f64 `dist_sq`
/// for borderline lanes.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn kernel_scan_row(
    entries: &[NodeId],
    xs: &[f32],
    ys: &[f32],
    band: KernelBand,
    positions: &[Point2],
    center: Point2,
    min_id: u32,
    exclude: Option<NodeId>,
    cand: &mut Vec<(f32, NodeId)>,
    stats: &mut KernelStats,
    visit: &mut impl FnMut(NodeId),
) {
    let n = entries.len();
    // Equal-length reslice up front so the per-lane indexing below is
    // provably in bounds (one check here instead of three per lane).
    let (xs, ys) = (&xs[..n], &ys[..n]);
    stats.lanes += n as u64;
    let (cx, cy) = (center.x as f32, center.y as f32);
    if cand.len() < n {
        cand.resize(n, (0.0, NodeId::from(0usize)));
    }
    let buf = &mut cand[..n];
    let mut m = 0usize;
    for k in 0..n {
        let dx = xs[k] - cx;
        let dy = ys[k] - cy;
        let d2 = dx * dx + dy * dy;
        // `m <= k` always, so this store stays in bounds.
        buf[m] = (d2, entries[k]);
        m += (d2 <= band.hi) as usize;
    }
    for &(d2, id) in &buf[..m] {
        if (id.index() as u32) < min_id || Some(id) == exclude {
            continue;
        }
        if d2 > band.lo {
            stats.exact_checks += 1;
            if positions[id.index()].dist_sq(center) > band.r_sq {
                continue;
            }
        }
        visit(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn brute_force(
        positions: &[Point2],
        center: Point2,
        radius: f64,
        exclude: Option<NodeId>,
    ) -> Vec<NodeId> {
        let r_sq = radius * radius;
        positions
            .iter()
            .enumerate()
            .filter(|(i, p)| Some(NodeId::from(*i)) != exclude && p.dist_sq(center) <= r_sq)
            .map(|(i, _)| NodeId::from(i))
            .collect()
    }

    /// Every node's bucket matches its position, residency bookkeeping is
    /// self-consistent, and each node appears exactly once.
    fn assert_grid_invariants(grid: &SpatialGrid, positions: &[Point2]) {
        assert_eq!(grid.cell_of_node.len(), positions.len());
        assert_eq!(grid.slot_of_node.len(), positions.len());
        let mut seen = vec![false; positions.len()];
        for c in 0..grid.cell_count() {
            let lo = grid.starts[c] as usize;
            let hi = lo + grid.lens[c] as usize;
            assert!(
                hi <= grid.starts[c + 1] as usize,
                "cell {c} overflows capacity"
            );
            for (slot, &id) in grid.entries[lo..hi].iter().enumerate() {
                assert_ne!(id, super::VACANT, "live slot holds the sentinel");
                assert!(!seen[id.index()], "{id} bucketed twice");
                seen[id.index()] = true;
                assert_eq!(grid.cell_of_node[id.index()] as usize, c);
                assert_eq!(grid.slot_of_node[id.index()] as usize, lo + slot);
                assert_eq!(grid.cell_index(positions[id.index()]) as usize, c);
            }
            for &id in &grid.entries[hi..grid.starts[c + 1] as usize] {
                assert_eq!(id, super::VACANT, "slack slot holds a live id");
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "some node is missing from the grid"
        );
    }

    #[test]
    fn finds_neighbors_across_cells() {
        let field = Field::square(100.0);
        let mut grid = SpatialGrid::new(field, 10.0);
        let positions = vec![
            Point2::new(9.0, 9.0),   // cell (0,0)
            Point2::new(11.0, 11.0), // cell (1,1) — within 10m of node 0
            Point2::new(50.0, 50.0), // far away
        ];
        grid.rebuild(&positions);
        let mut found = grid.within(&positions, positions[0], 10.0, Some(NodeId(0)));
        found.sort();
        assert_eq!(found, vec![NodeId(1)]);
        assert_grid_invariants(&grid, &positions);
    }

    #[test]
    fn boundary_positions_are_bucketed() {
        let field = Field::square(100.0);
        let mut grid = SpatialGrid::new(field, 25.0);
        let positions = vec![Point2::new(100.0, 100.0), Point2::new(99.0, 99.0)];
        grid.rebuild(&positions);
        let found = grid.within(&positions, positions[0], 25.0, Some(NodeId(0)));
        assert_eq!(found, vec![NodeId(1)]);
    }

    #[test]
    fn exclude_self() {
        let field = Field::square(10.0);
        let mut grid = SpatialGrid::new(field, 5.0);
        let positions = vec![Point2::new(5.0, 5.0)];
        grid.rebuild(&positions);
        assert!(grid
            .within(&positions, positions[0], 5.0, Some(NodeId(0)))
            .is_empty());
        assert_eq!(
            grid.within(&positions, positions[0], 5.0, None),
            vec![NodeId(0)]
        );
    }

    #[test]
    fn cell_count_matches_dimensions() {
        let grid = SpatialGrid::new(Field::new(100.0, 50.0), 10.0);
        assert_eq!(grid.cell_count(), 10 * 5);
        // range larger than the field ⇒ a single cell
        let grid = SpatialGrid::new(Field::new(100.0, 50.0), 1000.0);
        assert_eq!(grid.cell_count(), 1);
    }

    #[test]
    fn empty_positions() {
        let field = Field::square(100.0);
        let mut grid = SpatialGrid::new(field, 10.0);
        grid.rebuild(&[]);
        assert!(grid
            .within(&[], Point2::new(5.0, 5.0), 10.0, None)
            .is_empty());
    }

    #[test]
    fn first_update_is_full_then_movers_only() {
        let field = Field::square(100.0);
        let mut grid = SpatialGrid::new(field, 10.0);
        let mut positions: Vec<Point2> = (0..40)
            .map(|i| Point2::new((i % 10) as f64 * 10.0 + 5.0, (i / 10) as f64 * 10.0 + 5.0))
            .collect();
        assert_eq!(grid.update(&positions), GridUpdate::Full);
        assert_grid_invariants(&grid, &positions);
        // no movement → zero movers
        assert_eq!(
            grid.update(&positions),
            GridUpdate::Incremental { movers: 0 }
        );
        // one node crosses a boundary, one jiggles within its cell
        positions[3] = Point2::new(positions[3].x + 10.0, positions[3].y);
        positions[7] = Point2::new(positions[7].x + 1.0, positions[7].y);
        assert_eq!(
            grid.update(&positions),
            GridUpdate::Incremental { movers: 1 }
        );
        assert_grid_invariants(&grid, &positions);
    }

    #[test]
    fn node_count_change_forces_full_relayout() {
        let field = Field::square(100.0);
        let mut grid = SpatialGrid::new(field, 10.0);
        let positions = vec![Point2::new(5.0, 5.0), Point2::new(55.0, 55.0)];
        grid.update(&positions);
        let more = vec![
            Point2::new(5.0, 5.0),
            Point2::new(55.0, 55.0),
            Point2::new(95.0, 95.0),
        ];
        assert_eq!(grid.update(&more), GridUpdate::Full);
        assert_grid_invariants(&grid, &more);
    }

    #[test]
    fn heavy_churn_falls_back_to_full_relayout() {
        let field = Field::square(100.0);
        let mut grid = SpatialGrid::new(field, 10.0);
        let positions: Vec<Point2> = (0..32).map(|i| Point2::new(5.0, i as f64 * 3.0)).collect();
        grid.update(&positions);
        // everyone crosses a cell boundary at once
        let moved: Vec<Point2> = positions
            .iter()
            .map(|p| Point2::new(p.x + 50.0, p.y))
            .collect();
        assert_eq!(grid.update(&moved), GridUpdate::Full);
        assert_grid_invariants(&grid, &moved);
    }

    #[test]
    fn slack_overflow_falls_back_to_full_relayout() {
        // 33 nodes spread over many cells, then 3 (≤ N/8 churn) pile into
        // one previously-single-occupant cell whose slack (2 + 1/4 = 2)
        // cannot hold them all.
        let field = Field::square(200.0);
        let mut grid = SpatialGrid::new(field, 10.0);
        let mut positions: Vec<Point2> = (0..33)
            .map(|i| Point2::new((i % 19) as f64 * 10.0 + 5.0, (i / 19) as f64 * 10.0 + 5.0))
            .collect();
        grid.update(&positions);
        for p in positions.iter_mut().take(3) {
            *p = Point2::new(195.0, 195.0);
        }
        let out = grid.update(&positions);
        assert_eq!(out, GridUpdate::Full, "overflow must re-provision slack");
        assert_grid_invariants(&grid, &positions);
        // and the result still answers queries correctly
        let mut got = grid.within(&positions, Point2::new(195.0, 195.0), 5.0, None);
        got.sort();
        assert_eq!(got, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn reported_update_rebuckets_only_reported_movers() {
        let field = Field::square(100.0);
        let mut grid = SpatialGrid::new(field, 10.0);
        let mut positions: Vec<Point2> = (0..40)
            .map(|i| Point2::new((i % 10) as f64 * 10.0 + 5.0, (i / 10) as f64 * 10.0 + 5.0))
            .collect();
        assert_eq!(grid.update_reported(&positions, &[]), GridUpdate::Full);
        // one node crosses a boundary, one jiggles within its cell; the
        // report names both, only the crosser is re-bucketed
        positions[3] = Point2::new(positions[3].x + 10.0, positions[3].y);
        positions[7] = Point2::new(positions[7].x + 1.0, positions[7].y);
        assert_eq!(
            grid.update_reported(&positions, &[NodeId(3), NodeId(7)]),
            GridUpdate::Incremental { movers: 1 }
        );
        assert_grid_invariants(&grid, &positions);
        // an empty report with no movement is a no-op
        assert_eq!(
            grid.update_reported(&positions, &[]),
            GridUpdate::Incremental { movers: 0 }
        );
    }

    #[test]
    fn ball_coverage_bounds_the_cell_ball_guarantee() {
        let field = Field::square(200.0);
        let mut grid = SpatialGrid::new(field, 25.0);
        let positions: Vec<Point2> = (0..60)
            .map(|i| Point2::new((i as f64 * 53.0) % 200.0, (i as f64 * 29.0) % 200.0))
            .collect();
        grid.rebuild(&positions);
        // In-field positions are guaranteed at least one cell side, at
        // most one and a half.
        for &p in &positions {
            let cov = grid.ball_coverage(p);
            assert!((25.0..=37.5 + 1e-9).contains(&cov), "coverage {cov}");
            // The guarantee itself: everything within `cov` of `p` shows
            // up in the ball.
            let mut ball = Vec::new();
            grid.for_each_in_cell_ball(grid.cell_at(p), |id| ball.push(id));
            for (i, &q) in positions.iter().enumerate() {
                if q.dist(p) <= cov {
                    assert!(
                        ball.contains(&NodeId::from(i)),
                        "node {i} within coverage of {p:?} missing from ball"
                    );
                }
            }
        }
        // Clamped positions forfeit the guarantee instead of lying.
        assert!(grid.ball_coverage(Point2::new(260.0, 100.0)) < 0.0);
    }

    #[test]
    fn cell_ball_covers_range_neighbors() {
        // Every node within `range` of a point must appear in the 3×3 cell
        // ball around that point's cell (the candidate superset contract).
        let field = Field::square(200.0);
        let mut grid = SpatialGrid::new(field, 25.0);
        let positions: Vec<Point2> = (0..50)
            .map(|i| Point2::new((i as f64 * 37.0) % 200.0, (i as f64 * 61.0) % 200.0))
            .collect();
        grid.rebuild(&positions);
        for (i, &p) in positions.iter().enumerate() {
            let mut ball = Vec::new();
            grid.for_each_in_cell_ball(grid.cell_at(p), |id| ball.push(id));
            assert_eq!(grid.node_cell(NodeId::from(i)), grid.cell_at(p));
            for id in grid.within(&positions, p, 25.0, None) {
                assert!(
                    ball.contains(&id),
                    "{id} within range of node {i} but missing from its cell ball"
                );
            }
        }
        assert_eq!(grid.tracked_nodes(), positions.len());
    }

    proptest! {
        /// The grid returns exactly the brute-force neighbor set, for any
        /// point cloud and any query point.
        #[test]
        fn prop_grid_equals_brute_force(
            pts in proptest::collection::vec((0.0..710.0f64, 0.0..710.0f64), 0..120),
            q in (0.0..710.0f64, 0.0..710.0f64),
            radius in 1.0..50.0f64,
        ) {
            let field = Field::square(710.0);
            let positions: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let mut grid = SpatialGrid::new(field, 50.0);
            grid.rebuild(&positions);
            let center = Point2::new(q.0, q.1);
            let mut got = grid.within(&positions, center, radius, None);
            got.sort();
            let mut expect = brute_force(&positions, center, radius, None);
            expect.sort();
            prop_assert_eq!(got, expect);
        }

        /// Mover-only updates answer queries identically to a fresh full
        /// rebuild, across arbitrary per-step displacement magnitudes
        /// (small jiggles stay incremental, big jumps trip the churn or
        /// slack fallbacks — both must stay exact).
        #[test]
        fn prop_update_equals_fresh_rebuild(
            pts in proptest::collection::vec((0.0..400.0f64, 0.0..400.0f64), 1..80),
            steps in proptest::collection::vec(
                proptest::collection::vec((-60.0..60.0f64, -60.0..60.0f64), 1..80), 1..5),
            q in (0.0..400.0f64, 0.0..400.0f64),
            radius in 1.0..40.0f64,
        ) {
            let field = Field::square(400.0);
            let mut positions: Vec<Point2> =
                pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let mut inc = SpatialGrid::new(field, 40.0);
            inc.update(&positions);
            for step in &steps {
                for (p, &(dx, dy)) in positions.iter_mut().zip(step.iter().cycle()) {
                    p.x = (p.x + dx).clamp(0.0, 400.0);
                    p.y = (p.y + dy).clamp(0.0, 400.0);
                }
                inc.update(&positions);
                let mut fresh = SpatialGrid::new(field, 40.0);
                fresh.rebuild(&positions);
                let center = Point2::new(q.0, q.1);
                let mut got = inc.within(&positions, center, radius, None);
                got.sort();
                let mut expect = fresh.within(&positions, center, radius, None);
                expect.sort();
                prop_assert_eq!(got, expect);
                assert_grid_invariants(&inc, &positions);
            }
        }

        /// `update_reported` with an exact mover report is equivalent to a
        /// fresh full rebuild, across displacement magnitudes that exercise
        /// the incremental path and the churn/overflow fallbacks alike.
        #[test]
        fn prop_reported_update_equals_fresh_rebuild(
            pts in proptest::collection::vec((0.0..400.0f64, 0.0..400.0f64), 1..80),
            steps in proptest::collection::vec(
                proptest::collection::vec((-60.0..60.0f64, -60.0..60.0f64), 1..80), 1..5),
            q in (0.0..400.0f64, 0.0..400.0f64),
            radius in 1.0..40.0f64,
        ) {
            let field = Field::square(400.0);
            let mut positions: Vec<Point2> =
                pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let mut inc = SpatialGrid::new(field, 40.0);
            inc.update_reported(&positions, &[]);
            for step in &steps {
                let mut movers = Vec::new();
                for (i, (p, &(dx, dy))) in
                    positions.iter_mut().zip(step.iter().cycle()).enumerate()
                {
                    let before = *p;
                    p.x = (p.x + dx).clamp(0.0, 400.0);
                    p.y = (p.y + dy).clamp(0.0, 400.0);
                    if *p != before {
                        movers.push(NodeId::from(i));
                    }
                }
                inc.update_reported(&positions, &movers);
                let mut fresh = SpatialGrid::new(field, 40.0);
                fresh.rebuild(&positions);
                let center = Point2::new(q.0, q.1);
                let mut got = inc.within(&positions, center, radius, None);
                got.sort();
                let mut expect = fresh.within(&positions, center, radius, None);
                expect.sort();
                prop_assert_eq!(got, expect);
                assert_grid_invariants(&inc, &positions);
            }
        }

        /// The two-phase f32 kernels (gather and mirror variants) visit
        /// exactly the nodes the scalar f64 scan visits, in the same
        /// order, for arbitrary point clouds, query centers and radii.
        #[test]
        fn prop_kernel_scans_equal_scalar_scan(
            pts in proptest::collection::vec((0.0..710.0f64, 0.0..710.0f64), 0..120),
            q in (0.0..710.0f64, 0.0..710.0f64),
            radius in 1.0..50.0f64,
            exclude_raw in 0u32..260,
        ) {
            let field = Field::square(710.0);
            let positions: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let mut grid = SpatialGrid::new(field, 50.0);
            grid.rebuild(&positions);
            let center = Point2::new(q.0, q.1);
            // the vendored proptest has no `option::of`; fold the upper
            // half of the range onto `None`
            let exclude = (exclude_raw < 130).then(|| NodeId::new(exclude_raw));
            let scalar = grid.within(&positions, center, radius, exclude);
            let plane = PositionPlane::with_positions(&positions);
            let mut scratch = KernelScratch::new();
            let mut gathered = Vec::new();
            grid.for_each_within_kernel(
                &plane, &positions, center, radius, exclude, &mut scratch,
                |id| gathered.push(id),
            );
            prop_assert_eq!(&scalar, &gathered, "gather kernel diverged");
            grid.fill_lane_mirror(&plane, &mut scratch);
            let band = plane.band(radius, grid.cell_side());
            let mut mirrored = Vec::new();
            grid.for_each_within_mirror(
                band, &positions, center, exclude, &mut scratch,
                |id| mirrored.push(id),
            );
            prop_assert_eq!(&scalar, &mirrored, "mirror kernel diverged");
            prop_assert!(scratch.stats.lanes >= scratch.stats.exact_checks);
        }
    }

    /// Regression for the release-build gap: `update_reported`'s
    /// under-report detection used to exist only as a `debug_assert` sweep,
    /// so release builds silently served stale buckets. The sampled
    /// `audit_residency` must (a) stay silent on an honest grid, (b) flag a
    /// stale bucket once its rotating window reaches it, and (c) with a
    /// full-population sample behave exactly like the debug sweep.
    #[test]
    fn sampled_audit_catches_under_reported_movers() {
        let field = Field::square(100.0);
        let mut grid = SpatialGrid::new(field, 10.0);
        let mut positions: Vec<Point2> = (0..16)
            .map(|i| Point2::new((i % 4) as f64 * 25.0 + 5.0, (i / 4) as f64 * 25.0 + 5.0))
            .collect();
        grid.rebuild(&positions);
        // An honest grid audits clean, whatever the sample size.
        assert_eq!(grid.audit_residency(&positions, 16), 0);
        assert_eq!(grid.audit_residency(&positions, 3), 0);
        // Under-report: node 9 crosses a cell boundary but is never passed
        // to `update_reported` (mutating `positions` directly models the
        // mobility bug the audit exists to catch — we cannot route this
        // through `update_reported` in debug builds, where the sweep
        // would assert first).
        positions[9] = Point2::new(95.0, 95.0);
        assert_eq!(
            grid.audit_residency(&positions, positions.len()),
            1,
            "full-sample audit must find exactly the one stale bucket"
        );
        // A small rotating window finds it within ceil(16/4) = 4 calls.
        let mut found = 0;
        for _ in 0..4 {
            found += grid.audit_residency(&positions, 4);
        }
        assert_eq!(found, 1, "rotating window must sweep the population");
        // Zero samples (audit disabled) and empty grids are no-ops.
        assert_eq!(grid.audit_residency(&positions, 0), 0);
        let mut empty = SpatialGrid::new(field, 10.0);
        empty.rebuild(&[]);
        assert_eq!(empty.audit_residency(&[], 8), 0);
    }

    /// Satellite audit: far-field-edge bucketing through the `inv_side`
    /// multiply. `cell_of` buckets in f64 with an explicit `.min(cols-1)`
    /// clamp, and that clamp is load-bearing: for many (width, range)
    /// pairs the rounded product `width * (1/range)` lands exactly on
    /// `cols` (e.g. 100 × fl(1/10) = 10.000000000000002), so an unclamped
    /// floor would index out of bounds for points on the far edge.
    #[test]
    fn far_edge_points_bucket_into_boundary_cells() {
        for &(w, range) in &[
            (100.0, 10.0),    // w * fl(1/range) > cols in f64
            (710.0, 50.0),    // the Table-1 scenario geometry
            (31_750.0, 50.0), // the N=10⁶ tier geometry
            (99.9, 3.33),     // non-divisible pair
            (1.0, 0.1),       // tiny field, product 10.000000000000002
        ] {
            let field = Field::new(w, w);
            let mut grid = SpatialGrid::new(field, range);
            let cols = (w / range).ceil().max(1.0) as usize;
            // the far corner and a neighbor just inside it
            let corner = Point2::new(w, w);
            let near = Point2::new(w - range * 0.5, w);
            let positions = vec![corner, near];
            grid.rebuild(&positions);
            assert_grid_invariants(&grid, &positions);
            assert!(
                (grid.cell_at(corner) as usize) < grid.cell_count(),
                "corner cell out of bounds for w={w} range={range}"
            );
            // the exact-edge product actually overshoots cols for these
            // pairs, proving the clamp is exercised, not decorative
            if (w * (1.0 / range)) as usize >= cols {
                assert_eq!(
                    grid.cell_at(corner) as usize % cols,
                    cols - 1,
                    "far edge must clamp into the last column"
                );
            }
            let found = grid.within(&positions, corner, range, Some(NodeId(0)));
            assert_eq!(found, vec![NodeId(1)], "w={w} range={range}");
        }
    }

    /// The f64 bucketing path is authoritative even where f32 rounding
    /// would overshoot the field edge: a point just inside the far edge
    /// whose f32 image rounds *past* it still buckets by its f64 value,
    /// and the kernels (whose lanes are that overshooting f32 image)
    /// still classify its links exactly like the scalar path.
    #[test]
    fn f32_overshooting_edge_points_stay_exact() {
        let w = 710.0;
        // x < w but (x as f32) > w
        let x = f64::from(710.0f32) - 1e-5;
        assert!((x as f32) as f64 > x, "pick a value f32 rounds upward");
        let positions = vec![Point2::new(x, w), Point2::new(w - 49.0, w)];
        let field = Field::square(w);
        let mut grid = SpatialGrid::new(field, 50.0);
        grid.rebuild(&positions);
        assert_grid_invariants(&grid, &positions);
        let scalar = grid.within(&positions, positions[0], 50.0, Some(NodeId(0)));
        let plane = PositionPlane::with_positions(&positions);
        let mut scratch = KernelScratch::new();
        let mut kernel = Vec::new();
        grid.for_each_within_kernel(
            &plane,
            &positions,
            positions[0],
            50.0,
            Some(NodeId(0)),
            &mut scratch,
            |id| kernel.push(id),
        );
        assert_eq!(scalar, kernel);
        assert_eq!(scalar, vec![NodeId(1)]);
    }
}

//! Spatial hash grid for neighbor queries.
//!
//! Rebuilding the unit-disk graph naively is O(N²) distance checks per
//! mobility tick. The grid partitions the field into square cells whose side
//! equals the transmission range; all neighbors of a point then lie in its
//! own cell or the 8 surrounding ones, giving O(N · avg-degree) rebuilds.
//!
//! Like [`crate::graph::Adjacency`], the buckets are stored in CSR form
//! (one flat entry array plus per-cell offsets) and rebuilt in place with a
//! counting pass + prefix sum, so a mobility tick re-buckets every node
//! with zero allocation and the 3×3-cell scans of
//! [`SpatialGrid::for_each_within`] walk contiguous memory.

use crate::geometry::{Field, Point2};
use crate::node::NodeId;

/// A uniform grid over a [`Field`] with cell side ≥ the query radius.
pub struct SpatialGrid {
    cell_side: f64,
    cols: usize,
    rows: usize,
    /// Cell `c`'s occupants live at `entries[starts[c] .. starts[c + 1]]`.
    starts: Vec<u32>,
    /// Node ids, bucketed by cell (row-major cell order).
    entries: Vec<NodeId>,
    /// Scratch: cell index per node, reused across rebuilds.
    cell_of_node: Vec<u32>,
    /// Scratch: per-cell write cursor for the placement pass.
    cursor: Vec<u32>,
}

impl SpatialGrid {
    /// Build a grid for `field` sized for range queries of radius `range`.
    ///
    /// # Panics
    /// Panics unless `range` is positive and finite.
    pub fn new(field: Field, range: f64) -> Self {
        assert!(range > 0.0 && range.is_finite(), "invalid range {range}");
        let cols = (field.width() / range).ceil().max(1.0) as usize;
        let rows = (field.height() / range).ceil().max(1.0) as usize;
        SpatialGrid {
            cell_side: range,
            cols,
            rows,
            starts: vec![0; cols * rows + 1],
            entries: Vec::new(),
            cell_of_node: Vec::new(),
            cursor: Vec::new(),
        }
    }

    /// Number of grid cells.
    pub fn cell_count(&self) -> usize {
        self.starts.len() - 1
    }

    #[inline]
    fn cell_of(&self, p: Point2) -> (usize, usize) {
        let cx = ((p.x / self.cell_side) as usize).min(self.cols - 1);
        let cy = ((p.y / self.cell_side) as usize).min(self.rows - 1);
        (cx, cy)
    }

    /// Clear and re-bucket every node position (counting sort into the CSR
    /// buffers; no allocation once the buffers have grown). Positions
    /// outside the field are clamped into the boundary cells.
    pub fn rebuild(&mut self, positions: &[Point2]) {
        let cells = self.cell_count();
        self.starts.fill(0);
        self.cell_of_node.clear();
        // Pass 1: record each node's cell and count occupants per cell
        // (counts shifted by one so the prefix sum below leaves
        // `starts[c]` = first entry of cell c).
        for &p in positions {
            let (cx, cy) = self.cell_of(p);
            let cell = (cy * self.cols + cx) as u32;
            self.cell_of_node.push(cell);
            self.starts[cell as usize + 1] += 1;
        }
        for c in 0..cells {
            self.starts[c + 1] += self.starts[c];
        }
        // Pass 2: place nodes, advancing a per-cell write cursor. No
        // clear first: counting sort writes every index 0..N exactly once,
        // so resize only ever initializes a grown tail.
        self.entries.resize(positions.len(), NodeId::new(0));
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.starts[..cells]);
        for (i, &cell) in self.cell_of_node.iter().enumerate() {
            let slot = &mut self.cursor[cell as usize];
            self.entries[*slot as usize] = NodeId::from(i);
            *slot += 1;
        }
    }

    /// Visit every node within `radius` of `center` (excluding `exclude`,
    /// typically the querying node itself). `radius` must not exceed the
    /// cell side the grid was built with.
    pub fn for_each_within(
        &self,
        positions: &[Point2],
        center: Point2,
        radius: f64,
        exclude: Option<NodeId>,
        mut visit: impl FnMut(NodeId),
    ) {
        debug_assert!(
            radius <= self.cell_side + 1e-9,
            "query radius {radius} exceeds grid cell side {}",
            self.cell_side
        );
        let r_sq = radius * radius;
        let (cx, cy) = self.cell_of(center);
        let x0 = cx.saturating_sub(1);
        let y0 = cy.saturating_sub(1);
        let x1 = (cx + 1).min(self.cols - 1);
        let y1 = (cy + 1).min(self.rows - 1);
        for gy in y0..=y1 {
            // Cells x0..=x1 of this row are contiguous in the CSR buffers,
            // so the three cells scan as one slice.
            let lo = self.starts[gy * self.cols + x0] as usize;
            let hi = self.starts[gy * self.cols + x1 + 1] as usize;
            for &id in &self.entries[lo..hi] {
                if Some(id) == exclude {
                    continue;
                }
                if positions[id.index()].dist_sq(center) <= r_sq {
                    visit(id);
                }
            }
        }
    }

    /// Collect every node within `radius` of `center` into a vector.
    pub fn within(
        &self,
        positions: &[Point2],
        center: Point2,
        radius: f64,
        exclude: Option<NodeId>,
    ) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.for_each_within(positions, center, radius, exclude, |id| out.push(id));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn brute_force(
        positions: &[Point2],
        center: Point2,
        radius: f64,
        exclude: Option<NodeId>,
    ) -> Vec<NodeId> {
        let r_sq = radius * radius;
        positions
            .iter()
            .enumerate()
            .filter(|(i, p)| Some(NodeId::from(*i)) != exclude && p.dist_sq(center) <= r_sq)
            .map(|(i, _)| NodeId::from(i))
            .collect()
    }

    #[test]
    fn finds_neighbors_across_cells() {
        let field = Field::square(100.0);
        let mut grid = SpatialGrid::new(field, 10.0);
        let positions = vec![
            Point2::new(9.0, 9.0),   // cell (0,0)
            Point2::new(11.0, 11.0), // cell (1,1) — within 10m of node 0
            Point2::new(50.0, 50.0), // far away
        ];
        grid.rebuild(&positions);
        let mut found = grid.within(&positions, positions[0], 10.0, Some(NodeId(0)));
        found.sort();
        assert_eq!(found, vec![NodeId(1)]);
    }

    #[test]
    fn boundary_positions_are_bucketed() {
        let field = Field::square(100.0);
        let mut grid = SpatialGrid::new(field, 25.0);
        let positions = vec![Point2::new(100.0, 100.0), Point2::new(99.0, 99.0)];
        grid.rebuild(&positions);
        let found = grid.within(&positions, positions[0], 25.0, Some(NodeId(0)));
        assert_eq!(found, vec![NodeId(1)]);
    }

    #[test]
    fn exclude_self() {
        let field = Field::square(10.0);
        let mut grid = SpatialGrid::new(field, 5.0);
        let positions = vec![Point2::new(5.0, 5.0)];
        grid.rebuild(&positions);
        assert!(grid
            .within(&positions, positions[0], 5.0, Some(NodeId(0)))
            .is_empty());
        assert_eq!(
            grid.within(&positions, positions[0], 5.0, None),
            vec![NodeId(0)]
        );
    }

    #[test]
    fn cell_count_matches_dimensions() {
        let grid = SpatialGrid::new(Field::new(100.0, 50.0), 10.0);
        assert_eq!(grid.cell_count(), 10 * 5);
        // range larger than the field ⇒ a single cell
        let grid = SpatialGrid::new(Field::new(100.0, 50.0), 1000.0);
        assert_eq!(grid.cell_count(), 1);
    }

    #[test]
    fn empty_positions() {
        let field = Field::square(100.0);
        let mut grid = SpatialGrid::new(field, 10.0);
        grid.rebuild(&[]);
        assert!(grid
            .within(&[], Point2::new(5.0, 5.0), 10.0, None)
            .is_empty());
    }

    proptest! {
        /// The grid returns exactly the brute-force neighbor set, for any
        /// point cloud and any query point.
        #[test]
        fn prop_grid_equals_brute_force(
            pts in proptest::collection::vec((0.0..710.0f64, 0.0..710.0f64), 0..120),
            q in (0.0..710.0f64, 0.0..710.0f64),
            radius in 1.0..50.0f64,
        ) {
            let field = Field::square(710.0);
            let positions: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let mut grid = SpatialGrid::new(field, 50.0);
            grid.rebuild(&positions);
            let center = Point2::new(q.0, q.1);
            let mut got = grid.within(&positions, center, radius, None);
            got.sort();
            let mut expect = brute_force(&positions, center, radius, None);
            expect.sort();
            prop_assert_eq!(got, expect);
        }
    }
}

//! Node placement strategies.
//!
//! The paper places nodes uniformly at random ([`place_uniform`] — the
//! initial distribution of the random-waypoint model). Grid and clustered
//! placements are provided for tests and for the resource-distribution
//! studies the paper lists as future work.

use crate::geometry::{Field, Point2};
use sim_core::rng::RngStream;

/// `n` positions i.i.d. uniform over the field.
pub fn place_uniform(n: usize, field: Field, rng: &mut RngStream) -> Vec<Point2> {
    (0..n)
        .map(|_| {
            Point2::new(
                rng.range_f64(0.0, field.width()),
                rng.range_f64(0.0, field.height()),
            )
        })
        .collect()
}

/// `n` positions on a near-square jittered grid (deterministic layout,
/// `jitter` meters of uniform noise per axis).
pub fn place_grid(n: usize, field: Field, jitter: f64, rng: &mut RngStream) -> Vec<Point2> {
    if n == 0 {
        return Vec::new();
    }
    let cols = (n as f64).sqrt().ceil() as usize;
    let rows = n.div_ceil(cols);
    let dx = field.width() / cols as f64;
    let dy = field.height() / rows as f64;
    (0..n)
        .map(|i| {
            let cx = (i % cols) as f64 * dx + dx / 2.0;
            let cy = (i / cols) as f64 * dy + dy / 2.0;
            let p = Point2::new(
                cx + rng.range_f64(-jitter, jitter),
                cy + rng.range_f64(-jitter, jitter),
            );
            field.clamp(p)
        })
        .collect()
}

/// `n` positions in `clusters` Gaussian-ish blobs (uniform disk of radius
/// `spread` around uniformly placed cluster centers). Nodes are assigned to
/// clusters round-robin.
pub fn place_clustered(
    n: usize,
    field: Field,
    clusters: usize,
    spread: f64,
    rng: &mut RngStream,
) -> Vec<Point2> {
    assert!(clusters > 0, "need at least one cluster");
    let centers: Vec<Point2> = (0..clusters)
        .map(|_| {
            Point2::new(
                rng.range_f64(0.0, field.width()),
                rng.range_f64(0.0, field.height()),
            )
        })
        .collect();
    (0..n)
        .map(|i| {
            let c = centers[i % clusters];
            // uniform point in a disk via rejection-free polar sampling
            let theta = rng.range_f64(0.0, std::f64::consts::TAU);
            let radius = spread * rng.next_f64().sqrt();
            field.clamp(Point2::new(
                c.x + radius * theta.cos(),
                c.y + radius * theta.sin(),
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rng() -> RngStream {
        RngStream::seed_from_u64(99)
    }

    #[test]
    fn uniform_in_bounds_and_count() {
        let field = Field::new(710.0, 500.0);
        let pts = place_uniform(500, field, &mut rng());
        assert_eq!(pts.len(), 500);
        assert!(pts.iter().all(|&p| field.contains(p)));
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let field = Field::square(100.0);
        let a = place_uniform(50, field, &mut RngStream::seed_from_u64(5));
        let b = place_uniform(50, field, &mut RngStream::seed_from_u64(5));
        assert_eq!(a, b);
        let c = place_uniform(50, field, &mut RngStream::seed_from_u64(6));
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_spreads_over_quadrants() {
        let field = Field::square(100.0);
        let pts = place_uniform(400, field, &mut rng());
        let q = |p: &Point2| (p.x > 50.0) as usize * 2 + (p.y > 50.0) as usize;
        let mut counts = [0usize; 4];
        for p in &pts {
            counts[q(p)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 50, "quadrant {i} suspiciously empty: {c}/400");
        }
    }

    #[test]
    fn grid_in_bounds() {
        let field = Field::square(100.0);
        let pts = place_grid(37, field, 2.0, &mut rng());
        assert_eq!(pts.len(), 37);
        assert!(pts.iter().all(|&p| field.contains(p)));
        assert!(place_grid(0, field, 0.0, &mut rng()).is_empty());
    }

    #[test]
    fn grid_zero_jitter_is_regular() {
        let field = Field::square(100.0);
        let pts = place_grid(4, field, 0.0, &mut rng());
        // 2x2 grid of 50m cells, centers at 25/75
        assert_eq!(pts[0], Point2::new(25.0, 25.0));
        assert_eq!(pts[1], Point2::new(75.0, 25.0));
        assert_eq!(pts[2], Point2::new(25.0, 75.0));
        assert_eq!(pts[3], Point2::new(75.0, 75.0));
    }

    #[test]
    fn clustered_in_bounds_and_clumped() {
        let field = Field::square(1000.0);
        let pts = place_clustered(200, field, 4, 50.0, &mut rng());
        assert_eq!(pts.len(), 200);
        assert!(pts.iter().all(|&p| field.contains(p)));
        // nodes of the same cluster (stride 4) stay within 2*spread of each other
        for i in (0..200).step_by(4).skip(1) {
            assert!(pts[0].dist(pts[i]) <= 100.0 + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn clustered_zero_clusters_panics() {
        place_clustered(10, Field::square(10.0), 0, 1.0, &mut rng());
    }

    proptest! {
        #[test]
        fn prop_all_placements_in_bounds(seed in any::<u64>(), n in 0usize..200) {
            let field = Field::new(710.0, 710.0);
            let mut r = RngStream::seed_from_u64(seed);
            for pts in [
                place_uniform(n, field, &mut r),
                place_grid(n, field, 5.0, &mut r),
                place_clustered(n.max(1), field, 3, 80.0, &mut r),
            ] {
                prop_assert!(pts.iter().all(|&p| field.contains(p)));
            }
        }
    }
}

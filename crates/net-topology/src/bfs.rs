//! Breadth-first search over the connectivity graph.
//!
//! Three operations cover every need of the upper layers:
//!
//! * [`khop_bfs`] — hop-limited BFS building a node's *neighborhood* (all
//!   nodes within R hops, with distances and BFS parents for path
//!   extraction). This is the idealized converged state of the proactive
//!   intra-zone protocol (DSDV) the paper assumes;
//! * [`full_bfs`] — unlimited BFS (connected components, eccentricities);
//! * [`shortest_path`] — hop-shortest path between two nodes, extracted
//!   from BFS parents.
//!
//! ## Scratch workspaces
//!
//! The mobility hot path runs thousands of BFS traversals per tick (one per
//! refreshed neighborhood), so allocating `O(N)` result vectors per call is
//! the dominant cost at scale. [`BfsScratch`] is a reusable workspace:
//! distances, parents, the queue and the discovery order all live in
//! buffers that persist across calls, and *visited* is tracked by an
//! epoch-stamped mark array (`mark[v] == current epoch`), so starting a new
//! traversal is O(1) — no clearing, no zeroing, no allocation once the
//! buffers have grown to the graph size. Results are read through the
//! borrowing [`BfsView`]; callers that need an owned result use the
//! [`BfsResult`]-returning convenience wrappers, which run on a
//! thread-local scratch and only allocate for the output itself.
//!
//! The paper's cost model (§III.C) depends on exactly this: neighborhood
//! maintenance must stay proportional to the *local* zone, not to the
//! network, as the system grows.

use crate::graph::Adjacency;
use crate::node::NodeId;
use std::cell::RefCell;
use std::collections::VecDeque;

/// Sentinel distance for unreached nodes.
pub const UNREACHED: u16 = u16::MAX;

/// Result of a (possibly hop-limited) BFS from one source.
#[derive(Clone, Debug)]
pub struct BfsResult {
    source: NodeId,
    /// Hop distance per node (`UNREACHED` if not visited).
    dist: Vec<u16>,
    /// BFS-tree parent per node (self for the source, meaningless when
    /// unreached).
    parent: Vec<NodeId>,
    /// Visited nodes in discovery order (the source is first).
    order: Vec<NodeId>,
}

impl BfsResult {
    /// The BFS source node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Hop distance to `node`, or `None` if it was not reached.
    #[inline]
    pub fn distance(&self, node: NodeId) -> Option<u16> {
        match self.dist[node.index()] {
            UNREACHED => None,
            d => Some(d),
        }
    }

    /// Was `node` reached?
    #[inline]
    pub fn reached(&self, node: NodeId) -> bool {
        self.dist[node.index()] != UNREACHED
    }

    /// All visited nodes in discovery (hence non-decreasing distance) order,
    /// including the source itself at distance 0.
    pub fn visited(&self) -> &[NodeId] {
        &self.order
    }

    /// Number of visited nodes (including the source).
    pub fn visited_count(&self) -> usize {
        self.order.len()
    }

    /// The maximum distance reached (the source's eccentricity for an
    /// unlimited BFS over its component). Zero for an isolated node.
    pub fn max_distance(&self) -> u16 {
        self.order
            .iter()
            .map(|&n| self.dist[n.index()])
            .max()
            .unwrap_or(0)
    }

    /// Path from the source to `target` (inclusive of both), following BFS
    /// parents; `None` if `target` was not reached.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        if !self.reached(target) {
            return None;
        }
        let mut path = Vec::with_capacity(self.dist[target.index()] as usize + 1);
        let mut cur = target;
        path.push(cur);
        while cur != self.source {
            cur = self.parent[cur.index()];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

/// Reusable BFS workspace: persistent buffers + epoch-stamped visited
/// marks, so repeated traversals allocate nothing (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct BfsScratch {
    /// Graph size of the last run (buffers may be larger).
    n: usize,
    /// Epoch stamp per node; `mark[v] == epoch` means visited this run.
    mark: Vec<u32>,
    /// Current epoch (bumped per run; marks are only valid against it).
    epoch: u32,
    /// Hop distance per node, valid only where `mark[v] == epoch`.
    dist: Vec<u16>,
    /// BFS-tree parent per node, valid only where `mark[v] == epoch`.
    parent: Vec<NodeId>,
    /// Visited nodes of the last run, in discovery order.
    order: Vec<NodeId>,
    queue: VecDeque<NodeId>,
    /// Sources of the last run (one entry for single-source traversals).
    sources: Vec<NodeId>,
}

impl BfsScratch {
    /// A fresh workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for graphs of `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        let mut s = Self::default();
        s.ensure(n);
        s
    }

    /// Grow buffers to cover `n` nodes and open a new epoch.
    fn begin(&mut self, n: usize) {
        self.ensure(n);
        self.n = n;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch counter wrapped: invalidate every stale mark once.
            self.mark.fill(0);
            self.epoch = 1;
        }
        self.order.clear();
        self.queue.clear();
        self.sources.clear();
    }

    fn ensure(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
            self.dist.resize(n, 0);
            self.parent.resize(n, NodeId::new(0));
        }
    }

    /// Hop-limited BFS from `source`; `max_hops = 0` visits just the source.
    pub fn khop<'a>(&'a mut self, adj: &Adjacency, source: NodeId, max_hops: u16) -> BfsView<'a> {
        self.run(adj, &[source], Some(max_hops));
        self.view()
    }

    /// Unlimited BFS from `source` over its connected component.
    pub fn full<'a>(&'a mut self, adj: &Adjacency, source: NodeId) -> BfsView<'a> {
        self.run(adj, &[source], None);
        self.view()
    }

    /// Multi-source hop-limited BFS: every node within `max_hops` of *any*
    /// source (all sources at distance 0). This is the "R-hop ball around
    /// the changed region" primitive of the incremental topology refresh.
    /// Duplicate sources are tolerated; an empty source set yields an
    /// empty traversal (on which [`BfsView::source`] must not be called).
    pub fn ball<'a>(
        &'a mut self,
        adj: &Adjacency,
        sources: &[NodeId],
        max_hops: u16,
    ) -> BfsView<'a> {
        self.run(adj, sources, Some(max_hops));
        self.view()
    }

    /// [`BfsScratch::ball`] over a *virtual* graph given by a neighbor
    /// closure instead of a materialized [`Adjacency`]: `neighbors(v)` must
    /// return `v`'s sorted neighbor slice for every `v` in `0..n`. This is
    /// how the mover-driven refresh walks the **old** graph without keeping
    /// an O(E) snapshot — the closure serves patched rows from a per-row
    /// undo log and everything else from the live CSR.
    pub fn ball_with<'a, 'g>(
        &'a mut self,
        n: usize,
        neighbors: impl Fn(NodeId) -> &'g [NodeId],
        sources: &[NodeId],
        max_hops: u16,
    ) -> BfsView<'a> {
        self.run_with(n, neighbors, sources, Some(max_hops));
        self.view()
    }

    /// The view of the most recent traversal.
    pub fn view(&self) -> BfsView<'_> {
        BfsView { s: self }
    }

    fn run(&mut self, adj: &Adjacency, sources: &[NodeId], limit: Option<u16>) {
        self.run_with(adj.node_count(), |u| adj.neighbors(u), sources, limit);
    }

    fn run_with<'g>(
        &mut self,
        n: usize,
        neighbors: impl Fn(NodeId) -> &'g [NodeId],
        sources: &[NodeId],
        limit: Option<u16>,
    ) {
        self.begin(n);
        let epoch = self.epoch;
        for &src in sources {
            if self.mark[src.index()] == epoch {
                continue; // duplicate source
            }
            self.mark[src.index()] = epoch;
            self.dist[src.index()] = 0;
            self.parent[src.index()] = src;
            self.order.push(src);
            self.queue.push_back(src);
            self.sources.push(src);
        }
        while let Some(u) = self.queue.pop_front() {
            let du = self.dist[u.index()];
            if let Some(l) = limit {
                if du >= l {
                    continue;
                }
            }
            for &v in neighbors(u) {
                if self.mark[v.index()] != epoch {
                    self.mark[v.index()] = epoch;
                    self.dist[v.index()] = du + 1;
                    self.parent[v.index()] = u;
                    self.order.push(v);
                    self.queue.push_back(v);
                }
            }
        }
    }
}

/// Borrowing read access to a [`BfsScratch`] traversal.
#[derive(Clone, Copy, Debug)]
pub struct BfsView<'a> {
    s: &'a BfsScratch,
}

impl BfsView<'_> {
    /// The first source of the traversal.
    ///
    /// # Panics
    /// Panics if the traversal had no sources (an empty [`BfsScratch::ball`]).
    pub fn source(&self) -> NodeId {
        assert!(!self.s.sources.is_empty(), "traversal had no sources");
        self.s.sources[0]
    }

    /// Was `node` reached?
    #[inline]
    pub fn reached(&self, node: NodeId) -> bool {
        self.s.mark[node.index()] == self.s.epoch
    }

    /// Hop distance to `node` (from the nearest source), or `None`.
    #[inline]
    pub fn distance(&self, node: NodeId) -> Option<u16> {
        if self.reached(node) {
            Some(self.s.dist[node.index()])
        } else {
            None
        }
    }

    /// BFS-tree parent of a reached node (a source is its own parent).
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        if self.reached(node) {
            Some(self.s.parent[node.index()])
        } else {
            None
        }
    }

    /// Visited nodes in discovery (non-decreasing distance) order.
    pub fn visited(&self) -> &[NodeId] {
        &self.s.order
    }

    /// Number of visited nodes (sources included).
    pub fn visited_count(&self) -> usize {
        self.s.order.len()
    }

    /// The maximum distance reached. Zero when only sources were visited.
    pub fn max_distance(&self) -> u16 {
        self.s
            .order
            .last()
            .map(|&n| self.s.dist[n.index()])
            .unwrap_or(0)
    }

    /// Path from the traversal's source set to `target` (both inclusive),
    /// or `None` when unreached.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        if !self.reached(target) {
            return None;
        }
        let mut path = Vec::with_capacity(self.s.dist[target.index()] as usize + 1);
        let mut cur = target;
        path.push(cur);
        while self.s.parent[cur.index()] != cur {
            cur = self.s.parent[cur.index()];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Export an owned [`BfsResult`] (allocates; single-source runs only).
    pub fn to_result(&self) -> BfsResult {
        let n = self.s.n;
        let mut dist = vec![UNREACHED; n];
        let source = self.source();
        let mut parent = vec![source; n];
        for &v in &self.s.order {
            dist[v.index()] = self.s.dist[v.index()];
            parent[v.index()] = self.s.parent[v.index()];
        }
        BfsResult {
            source,
            dist,
            parent,
            order: self.s.order.clone(),
        }
    }
}

thread_local! {
    /// Shared scratch for the owned-result convenience wrappers below.
    static LOCAL_SCRATCH: RefCell<BfsScratch> = RefCell::new(BfsScratch::new());
}

/// BFS from `source` visiting only nodes within `max_hops` hops.
/// `max_hops = 0` visits just the source.
///
/// Runs on a thread-local [`BfsScratch`]; only the returned [`BfsResult`]
/// is allocated. Hot paths that cannot afford that either should hold
/// their own scratch and use [`BfsScratch::khop`].
pub fn khop_bfs(adj: &Adjacency, source: NodeId, max_hops: u16) -> BfsResult {
    LOCAL_SCRATCH.with(|s| s.borrow_mut().khop(adj, source, max_hops).to_result())
}

/// Unlimited BFS from `source` over its whole connected component.
pub fn full_bfs(adj: &Adjacency, source: NodeId) -> BfsResult {
    LOCAL_SCRATCH.with(|s| s.borrow_mut().full(adj, source).to_result())
}

/// Hop-shortest path between `a` and `b` (inclusive), or `None` if they are
/// disconnected. Allocates only the returned path.
pub fn shortest_path(adj: &Adjacency, a: NodeId, b: NodeId) -> Option<Vec<NodeId>> {
    LOCAL_SCRATCH.with(|s| s.borrow_mut().full(adj, a).path_to(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// 0-1-2-3 path plus isolated node 4.
    fn path_graph() -> Adjacency {
        let mut adj = Adjacency::with_nodes(5);
        adj.add_edge(NodeId(0), NodeId(1));
        adj.add_edge(NodeId(1), NodeId(2));
        adj.add_edge(NodeId(2), NodeId(3));
        adj
    }

    #[test]
    fn distances_on_path() {
        let adj = path_graph();
        let bfs = full_bfs(&adj, NodeId(0));
        assert_eq!(bfs.distance(NodeId(0)), Some(0));
        assert_eq!(bfs.distance(NodeId(1)), Some(1));
        assert_eq!(bfs.distance(NodeId(2)), Some(2));
        assert_eq!(bfs.distance(NodeId(3)), Some(3));
        assert_eq!(bfs.distance(NodeId(4)), None);
        assert!(!bfs.reached(NodeId(4)));
        assert_eq!(bfs.max_distance(), 3);
        assert_eq!(bfs.visited_count(), 4);
        assert_eq!(bfs.source(), NodeId(0));
    }

    #[test]
    fn khop_limits_radius() {
        let adj = path_graph();
        let bfs = khop_bfs(&adj, NodeId(0), 2);
        assert_eq!(bfs.distance(NodeId(2)), Some(2));
        assert_eq!(bfs.distance(NodeId(3)), None);
        assert_eq!(bfs.visited_count(), 3);

        let self_only = khop_bfs(&adj, NodeId(0), 0);
        assert_eq!(self_only.visited(), &[NodeId(0)]);
    }

    #[test]
    fn discovery_order_distances_nondecreasing() {
        let adj = path_graph();
        let bfs = full_bfs(&adj, NodeId(1));
        let dists: Vec<u16> = bfs
            .visited()
            .iter()
            .map(|&v| bfs.distance(v).unwrap())
            .collect();
        for w in dists.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn path_extraction() {
        let adj = path_graph();
        let bfs = full_bfs(&adj, NodeId(0));
        assert_eq!(
            bfs.path_to(NodeId(3)),
            Some(vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)])
        );
        assert_eq!(bfs.path_to(NodeId(0)), Some(vec![NodeId(0)]));
        assert_eq!(bfs.path_to(NodeId(4)), None);
        assert_eq!(
            shortest_path(&adj, NodeId(3), NodeId(0)),
            Some(vec![NodeId(3), NodeId(2), NodeId(1), NodeId(0)])
        );
        assert_eq!(shortest_path(&adj, NodeId(0), NodeId(4)), None);
    }

    #[test]
    fn isolated_source() {
        let adj = path_graph();
        let bfs = full_bfs(&adj, NodeId(4));
        assert_eq!(bfs.visited(), &[NodeId(4)]);
        assert_eq!(bfs.max_distance(), 0);
    }

    #[test]
    fn cycle_takes_shorter_arc() {
        // 6-cycle: distance from 0 to 3 is 3, to 4 is 2, to 5 is 1.
        let mut adj = Adjacency::with_nodes(6);
        for i in 0..6u32 {
            adj.add_edge(NodeId(i), NodeId((i + 1) % 6));
        }
        let bfs = full_bfs(&adj, NodeId(0));
        assert_eq!(bfs.distance(NodeId(3)), Some(3));
        assert_eq!(bfs.distance(NodeId(4)), Some(2));
        assert_eq!(bfs.distance(NodeId(5)), Some(1));
        // the path found must have length == distance
        assert_eq!(bfs.path_to(NodeId(3)).unwrap().len(), 4);
    }

    #[test]
    fn scratch_reuse_across_runs_and_graphs() {
        let mut scratch = BfsScratch::new();
        let adj = path_graph();
        // Same scratch, many runs: results must match the allocating API.
        for src in NodeId::all(5) {
            let view_count = scratch.full(&adj, src).visited_count();
            assert_eq!(view_count, full_bfs(&adj, src).visited_count());
        }
        // Shrinking to a smaller graph is fine too.
        let mut small = Adjacency::with_nodes(2);
        small.add_edge(NodeId(0), NodeId(1));
        let view = scratch.full(&small, NodeId(1));
        assert_eq!(view.visited_count(), 2);
        assert_eq!(view.path_to(NodeId(0)), Some(vec![NodeId(1), NodeId(0)]));
    }

    #[test]
    fn scratch_view_matches_result_export() {
        let adj = path_graph();
        let mut scratch = BfsScratch::new();
        let view = scratch.khop(&adj, NodeId(0), 2);
        let result = view.to_result();
        for v in NodeId::all(5) {
            assert_eq!(view.distance(v), result.distance(v));
            assert_eq!(view.reached(v), result.reached(v));
            assert_eq!(view.path_to(v), result.path_to(v));
        }
        assert_eq!(view.visited(), result.visited());
        assert_eq!(view.max_distance(), result.max_distance());
        assert_eq!(view.source(), result.source());
    }

    #[test]
    fn multi_source_ball() {
        // 0-1-2-3-4-5 path; ball({0, 5}, 1) = {0, 1, 4, 5}.
        let mut adj = Adjacency::with_nodes(6);
        for i in 0..5u32 {
            adj.add_edge(NodeId(i), NodeId(i + 1));
        }
        let mut scratch = BfsScratch::new();
        let view = scratch.ball(&adj, &[NodeId(0), NodeId(5)], 1);
        let mut got: Vec<u32> = view.visited().iter().map(|n| n.raw()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 4, 5]);
        assert_eq!(view.distance(NodeId(1)), Some(1));
        assert_eq!(view.distance(NodeId(4)), Some(1));
        assert_eq!(view.distance(NodeId(2)), None);
        // duplicate sources are tolerated
        let view = scratch.ball(&adj, &[NodeId(2), NodeId(2)], 0);
        assert_eq!(view.visited(), &[NodeId(2)]);
    }

    #[test]
    fn ball_with_closure_matches_ball_on_adjacency() {
        let mut adj = Adjacency::with_nodes(6);
        for i in 0..5u32 {
            adj.add_edge(NodeId(i), NodeId(i + 1));
        }
        let mut scratch = BfsScratch::new();
        let direct: Vec<NodeId> = scratch.ball(&adj, &[NodeId(2)], 2).visited().to_vec();
        let via_closure: Vec<NodeId> = scratch
            .ball_with(6, |u| adj.neighbors(u), &[NodeId(2)], 2)
            .visited()
            .to_vec();
        assert_eq!(direct, via_closure);
        // An override that severs 2-3 must confine the ball to the left arc.
        let empty: &[NodeId] = &[];
        let left: &[NodeId] = &[NodeId(1)];
        let view = scratch.ball_with(
            6,
            |u| match u.raw() {
                2 => left,
                3 => empty,
                _ => adj.neighbors(u),
            },
            &[NodeId(2)],
            3,
        );
        let mut got: Vec<u32> = view.visited().iter().map(|n| n.raw()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn epoch_wraparound_resets_marks() {
        let adj = path_graph();
        let mut scratch = BfsScratch::new();
        scratch.full(&adj, NodeId(0));
        // Force the epoch counter to the wrap point and run again: stale
        // marks must not leak into the new traversal.
        scratch.epoch = u32::MAX;
        let view = scratch.full(&adj, NodeId(4));
        assert_eq!(view.visited(), &[NodeId(4)]);
        assert!(!view.reached(NodeId(0)));
    }

    /// Build a random undirected graph from a proptest edge list.
    fn random_graph(n: usize, edges: &[(u32, u32)]) -> Adjacency {
        let mut adj = Adjacency::with_nodes(n);
        for &(a, b) in edges {
            let a = a % n as u32;
            let b = b % n as u32;
            if a != b {
                adj.add_edge(NodeId(a), NodeId(b));
            }
        }
        adj
    }

    proptest! {
        /// BFS distance is symmetric on undirected graphs.
        #[test]
        fn prop_distance_symmetric(
            edges in proptest::collection::vec((0u32..30, 0u32..30), 0..80),
            a in 0u32..30, b in 0u32..30,
        ) {
            let adj = random_graph(30, &edges);
            let dab = full_bfs(&adj, NodeId(a)).distance(NodeId(b));
            let dba = full_bfs(&adj, NodeId(b)).distance(NodeId(a));
            prop_assert_eq!(dab, dba);
        }

        /// Triangle inequality over hops: d(a,c) <= d(a,b) + d(b,c).
        #[test]
        fn prop_triangle_inequality(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 0..60),
            a in 0u32..20, b in 0u32..20, c in 0u32..20,
        ) {
            let adj = random_graph(20, &edges);
            let ab = full_bfs(&adj, NodeId(a)).distance(NodeId(b));
            let bc = full_bfs(&adj, NodeId(b)).distance(NodeId(c));
            let ac = full_bfs(&adj, NodeId(a)).distance(NodeId(c));
            if let (Some(ab), Some(bc)) = (ab, bc) {
                prop_assert!(ac.is_some());
                prop_assert!(ac.unwrap() <= ab + bc);
            }
        }

        /// Extracted paths are valid: consecutive nodes adjacent, length
        /// equals distance, endpoints correct.
        #[test]
        fn prop_paths_valid(
            edges in proptest::collection::vec((0u32..25, 0u32..25), 0..70),
            a in 0u32..25, b in 0u32..25,
        ) {
            let adj = random_graph(25, &edges);
            let bfs = full_bfs(&adj, NodeId(a));
            if let Some(path) = bfs.path_to(NodeId(b)) {
                prop_assert_eq!(path[0], NodeId(a));
                prop_assert_eq!(*path.last().unwrap(), NodeId(b));
                prop_assert_eq!(path.len() as u16 - 1, bfs.distance(NodeId(b)).unwrap());
                for w in path.windows(2) {
                    prop_assert!(adj.is_neighbor(w[0], w[1]));
                }
            }
        }

        /// khop BFS visits exactly the nodes whose full-BFS distance ≤ k.
        #[test]
        fn prop_khop_is_distance_filter(
            edges in proptest::collection::vec((0u32..25, 0u32..25), 0..70),
            src in 0u32..25, k in 0u16..6,
        ) {
            let adj = random_graph(25, &edges);
            let full = full_bfs(&adj, NodeId(src));
            let limited = khop_bfs(&adj, NodeId(src), k);
            for v in NodeId::all(25) {
                let expect = matches!(full.distance(v), Some(d) if d <= k);
                prop_assert_eq!(limited.reached(v), expect);
                if expect {
                    prop_assert_eq!(limited.distance(v), full.distance(v));
                }
            }
        }

        /// A scratch reused across random graphs gives the same answers as
        /// fresh allocating runs (epoch stamping never leaks state).
        #[test]
        fn prop_scratch_equals_fresh(
            edges in proptest::collection::vec((0u32..25, 0u32..25), 0..70),
            srcs in proptest::collection::vec(0u32..25, 1..8),
            k in 0u16..6,
        ) {
            let adj = random_graph(25, &edges);
            let mut scratch = BfsScratch::new();
            for &s in &srcs {
                let fresh = khop_bfs(&adj, NodeId(s), k);
                let view = scratch.khop(&adj, NodeId(s), k);
                for v in NodeId::all(25) {
                    prop_assert_eq!(view.distance(v), fresh.distance(v));
                }
                prop_assert_eq!(view.visited(), fresh.visited());
            }
        }

        /// The multi-source ball equals the union of single-source balls.
        #[test]
        fn prop_ball_is_union_of_balls(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 0..60),
            srcs in proptest::collection::vec(0u32..20, 1..6),
            k in 0u16..5,
        ) {
            let adj = random_graph(20, &edges);
            let sources: Vec<NodeId> = srcs.iter().map(|&s| NodeId(s)).collect();
            let mut scratch = BfsScratch::new();
            let view = scratch.ball(&adj, &sources, k);
            for v in NodeId::all(20) {
                let expect = sources
                    .iter()
                    .any(|&s| matches!(full_bfs(&adj, s).distance(v), Some(d) if d <= k));
                prop_assert_eq!(view.reached(v), expect, "node {}", v);
            }
        }
    }
}

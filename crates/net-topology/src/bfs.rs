//! Breadth-first search over the connectivity graph.
//!
//! Three operations cover every need of the upper layers:
//!
//! * [`khop_bfs`] — hop-limited BFS building a node's *neighborhood* (all
//!   nodes within R hops, with distances and BFS parents for path
//!   extraction). This is the idealized converged state of the proactive
//!   intra-zone protocol (DSDV) the paper assumes;
//! * [`full_bfs`] — unlimited BFS (connected components, eccentricities);
//! * [`shortest_path`] — hop-shortest path between two nodes, extracted
//!   from BFS parents.

use crate::graph::Adjacency;
use crate::node::NodeId;
use std::collections::VecDeque;

/// Sentinel distance for unreached nodes.
pub const UNREACHED: u16 = u16::MAX;

/// Result of a (possibly hop-limited) BFS from one source.
#[derive(Clone, Debug)]
pub struct BfsResult {
    source: NodeId,
    /// Hop distance per node (`UNREACHED` if not visited).
    dist: Vec<u16>,
    /// BFS-tree parent per node (self for the source, meaningless when
    /// unreached).
    parent: Vec<NodeId>,
    /// Visited nodes in discovery order (the source is first).
    order: Vec<NodeId>,
}

impl BfsResult {
    /// The BFS source node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Hop distance to `node`, or `None` if it was not reached.
    #[inline]
    pub fn distance(&self, node: NodeId) -> Option<u16> {
        match self.dist[node.index()] {
            UNREACHED => None,
            d => Some(d),
        }
    }

    /// Was `node` reached?
    #[inline]
    pub fn reached(&self, node: NodeId) -> bool {
        self.dist[node.index()] != UNREACHED
    }

    /// All visited nodes in discovery (hence non-decreasing distance) order,
    /// including the source itself at distance 0.
    pub fn visited(&self) -> &[NodeId] {
        &self.order
    }

    /// Number of visited nodes (including the source).
    pub fn visited_count(&self) -> usize {
        self.order.len()
    }

    /// The maximum distance reached (the source's eccentricity for an
    /// unlimited BFS over its component). Zero for an isolated node.
    pub fn max_distance(&self) -> u16 {
        self.order
            .iter()
            .map(|&n| self.dist[n.index()])
            .max()
            .unwrap_or(0)
    }

    /// Path from the source to `target` (inclusive of both), following BFS
    /// parents; `None` if `target` was not reached.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        if !self.reached(target) {
            return None;
        }
        let mut path = Vec::with_capacity(self.dist[target.index()] as usize + 1);
        let mut cur = target;
        path.push(cur);
        while cur != self.source {
            cur = self.parent[cur.index()];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

/// BFS from `source` visiting only nodes within `max_hops` hops.
/// `max_hops = 0` visits just the source.
pub fn khop_bfs(adj: &Adjacency, source: NodeId, max_hops: u16) -> BfsResult {
    bfs_impl(adj, source, Some(max_hops))
}

/// Unlimited BFS from `source` over its whole connected component.
pub fn full_bfs(adj: &Adjacency, source: NodeId) -> BfsResult {
    bfs_impl(adj, source, None)
}

fn bfs_impl(adj: &Adjacency, source: NodeId, max_hops: Option<u16>) -> BfsResult {
    let n = adj.node_count();
    let mut dist = vec![UNREACHED; n];
    let mut parent = vec![source; n];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();

    dist[source.index()] = 0;
    order.push(source);
    queue.push_back(source);

    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        if let Some(limit) = max_hops {
            if du >= limit {
                continue;
            }
        }
        for &v in adj.neighbors(u) {
            if dist[v.index()] == UNREACHED {
                dist[v.index()] = du + 1;
                parent[v.index()] = u;
                order.push(v);
                queue.push_back(v);
            }
        }
    }

    BfsResult { source, dist, parent, order }
}

/// Hop-shortest path between `a` and `b` (inclusive), or `None` if they are
/// disconnected.
pub fn shortest_path(adj: &Adjacency, a: NodeId, b: NodeId) -> Option<Vec<NodeId>> {
    full_bfs(adj, a).path_to(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// 0-1-2-3 path plus isolated node 4.
    fn path_graph() -> Adjacency {
        let mut adj = Adjacency::with_nodes(5);
        adj.add_edge(NodeId(0), NodeId(1));
        adj.add_edge(NodeId(1), NodeId(2));
        adj.add_edge(NodeId(2), NodeId(3));
        adj
    }

    #[test]
    fn distances_on_path() {
        let adj = path_graph();
        let bfs = full_bfs(&adj, NodeId(0));
        assert_eq!(bfs.distance(NodeId(0)), Some(0));
        assert_eq!(bfs.distance(NodeId(1)), Some(1));
        assert_eq!(bfs.distance(NodeId(2)), Some(2));
        assert_eq!(bfs.distance(NodeId(3)), Some(3));
        assert_eq!(bfs.distance(NodeId(4)), None);
        assert!(!bfs.reached(NodeId(4)));
        assert_eq!(bfs.max_distance(), 3);
        assert_eq!(bfs.visited_count(), 4);
        assert_eq!(bfs.source(), NodeId(0));
    }

    #[test]
    fn khop_limits_radius() {
        let adj = path_graph();
        let bfs = khop_bfs(&adj, NodeId(0), 2);
        assert_eq!(bfs.distance(NodeId(2)), Some(2));
        assert_eq!(bfs.distance(NodeId(3)), None);
        assert_eq!(bfs.visited_count(), 3);

        let self_only = khop_bfs(&adj, NodeId(0), 0);
        assert_eq!(self_only.visited(), &[NodeId(0)]);
    }

    #[test]
    fn discovery_order_distances_nondecreasing() {
        let adj = path_graph();
        let bfs = full_bfs(&adj, NodeId(1));
        let dists: Vec<u16> = bfs
            .visited()
            .iter()
            .map(|&v| bfs.distance(v).unwrap())
            .collect();
        for w in dists.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn path_extraction() {
        let adj = path_graph();
        let bfs = full_bfs(&adj, NodeId(0));
        assert_eq!(
            bfs.path_to(NodeId(3)),
            Some(vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)])
        );
        assert_eq!(bfs.path_to(NodeId(0)), Some(vec![NodeId(0)]));
        assert_eq!(bfs.path_to(NodeId(4)), None);
        assert_eq!(
            shortest_path(&adj, NodeId(3), NodeId(0)),
            Some(vec![NodeId(3), NodeId(2), NodeId(1), NodeId(0)])
        );
        assert_eq!(shortest_path(&adj, NodeId(0), NodeId(4)), None);
    }

    #[test]
    fn isolated_source() {
        let adj = path_graph();
        let bfs = full_bfs(&adj, NodeId(4));
        assert_eq!(bfs.visited(), &[NodeId(4)]);
        assert_eq!(bfs.max_distance(), 0);
    }

    #[test]
    fn cycle_takes_shorter_arc() {
        // 6-cycle: distance from 0 to 3 is 3, to 4 is 2, to 5 is 1.
        let mut adj = Adjacency::with_nodes(6);
        for i in 0..6u32 {
            adj.add_edge(NodeId(i), NodeId((i + 1) % 6));
        }
        let bfs = full_bfs(&adj, NodeId(0));
        assert_eq!(bfs.distance(NodeId(3)), Some(3));
        assert_eq!(bfs.distance(NodeId(4)), Some(2));
        assert_eq!(bfs.distance(NodeId(5)), Some(1));
        // the path found must have length == distance
        assert_eq!(bfs.path_to(NodeId(3)).unwrap().len(), 4);
    }

    /// Build a random undirected graph from a proptest edge list.
    fn random_graph(n: usize, edges: &[(u32, u32)]) -> Adjacency {
        let mut adj = Adjacency::with_nodes(n);
        for &(a, b) in edges {
            let a = a % n as u32;
            let b = b % n as u32;
            if a != b {
                adj.add_edge(NodeId(a), NodeId(b));
            }
        }
        adj
    }

    proptest! {
        /// BFS distance is symmetric on undirected graphs.
        #[test]
        fn prop_distance_symmetric(
            edges in proptest::collection::vec((0u32..30, 0u32..30), 0..80),
            a in 0u32..30, b in 0u32..30,
        ) {
            let adj = random_graph(30, &edges);
            let dab = full_bfs(&adj, NodeId(a)).distance(NodeId(b));
            let dba = full_bfs(&adj, NodeId(b)).distance(NodeId(a));
            prop_assert_eq!(dab, dba);
        }

        /// Triangle inequality over hops: d(a,c) <= d(a,b) + d(b,c).
        #[test]
        fn prop_triangle_inequality(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 0..60),
            a in 0u32..20, b in 0u32..20, c in 0u32..20,
        ) {
            let adj = random_graph(20, &edges);
            let ab = full_bfs(&adj, NodeId(a)).distance(NodeId(b));
            let bc = full_bfs(&adj, NodeId(b)).distance(NodeId(c));
            let ac = full_bfs(&adj, NodeId(a)).distance(NodeId(c));
            if let (Some(ab), Some(bc)) = (ab, bc) {
                prop_assert!(ac.is_some());
                prop_assert!(ac.unwrap() <= ab + bc);
            }
        }

        /// Extracted paths are valid: consecutive nodes adjacent, length
        /// equals distance, endpoints correct.
        #[test]
        fn prop_paths_valid(
            edges in proptest::collection::vec((0u32..25, 0u32..25), 0..70),
            a in 0u32..25, b in 0u32..25,
        ) {
            let adj = random_graph(25, &edges);
            let bfs = full_bfs(&adj, NodeId(a));
            if let Some(path) = bfs.path_to(NodeId(b)) {
                prop_assert_eq!(path[0], NodeId(a));
                prop_assert_eq!(*path.last().unwrap(), NodeId(b));
                prop_assert_eq!(path.len() as u16 - 1, bfs.distance(NodeId(b)).unwrap());
                for w in path.windows(2) {
                    prop_assert!(adj.is_neighbor(w[0], w[1]));
                }
            }
        }

        /// khop BFS visits exactly the nodes whose full-BFS distance ≤ k.
        #[test]
        fn prop_khop_is_distance_filter(
            edges in proptest::collection::vec((0u32..25, 0u32..25), 0..70),
            src in 0u32..25, k in 0u16..6,
        ) {
            let adj = random_graph(25, &edges);
            let full = full_bfs(&adj, NodeId(src));
            let limited = khop_bfs(&adj, NodeId(src), k);
            for v in NodeId::all(25) {
                let expect = matches!(full.distance(v), Some(d) if d <= k);
                prop_assert_eq!(limited.reached(v), expect);
                if expect {
                    prop_assert_eq!(limited.distance(v), full.distance(v));
                }
            }
        }
    }
}

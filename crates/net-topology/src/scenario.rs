//! Simulation scenarios — Table 1 of the paper plus custom configurations.
//!
//! Table 1 lists eight scenarios varying node count, field size and
//! transmission range. A [`Scenario`] fully determines a topology family;
//! combined with a seed it deterministically instantiates positions.

use crate::geometry::Field;
use crate::graph::Adjacency;
use crate::placement::place_uniform;
use sim_core::rng::SeedSplitter;

/// One simulation scenario: node count + field + transmission range.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scenario {
    /// Number of nodes (N).
    pub nodes: usize,
    /// Field width in meters.
    pub width: f64,
    /// Field height in meters.
    pub height: f64,
    /// Transmission range in meters.
    pub tx_range: f64,
}

impl Scenario {
    /// Construct a scenario.
    pub const fn new(nodes: usize, width: f64, height: f64, tx_range: f64) -> Self {
        Scenario {
            nodes,
            width,
            height,
            tx_range,
        }
    }

    /// The simulation field.
    pub fn field(&self) -> Field {
        Field::new(self.width, self.height)
    }

    /// Node density in nodes per square meter.
    pub fn density(&self) -> f64 {
        self.nodes as f64 / (self.width * self.height)
    }

    /// Deterministically place nodes uniformly at random for `seed` and
    /// build the unit-disk adjacency.
    pub fn instantiate(&self, seed: u64) -> (Vec<crate::geometry::Point2>, Adjacency) {
        let mut rng = SeedSplitter::new(seed).stream("placement", 0);
        let positions = place_uniform(self.nodes, self.field(), &mut rng);
        let adj = Adjacency::build(self.field(), &positions, self.tx_range);
        (positions, adj)
    }

    /// A short human-readable label like `N=500 710x710 tx=50`.
    pub fn label(&self) -> String {
        format!(
            "N={} {:.0}x{:.0} tx={:.0}",
            self.nodes, self.width, self.height, self.tx_range
        )
    }
}

/// The eight scenarios of Table 1, in paper order (index 0 = scenario 1).
pub const TABLE1_SCENARIOS: [Scenario; 8] = [
    Scenario::new(250, 500.0, 500.0, 50.0),
    Scenario::new(250, 710.0, 710.0, 50.0),
    Scenario::new(250, 1000.0, 1000.0, 50.0),
    Scenario::new(500, 710.0, 710.0, 30.0),
    Scenario::new(500, 710.0, 710.0, 50.0),
    Scenario::new(500, 710.0, 710.0, 70.0),
    Scenario::new(1000, 710.0, 710.0, 50.0),
    Scenario::new(1000, 1000.0, 1000.0, 50.0),
];

/// Scenario 5 of Table 1 (500 nodes, 710×710 m, 50 m range) — the scenario
/// used by every reachability and overhead figure.
pub const SCENARIO_5: Scenario = TABLE1_SCENARIOS[4];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TopologyMetrics;

    #[test]
    fn table1_has_paper_parameters() {
        assert_eq!(TABLE1_SCENARIOS.len(), 8);
        assert_eq!(TABLE1_SCENARIOS[0].nodes, 250);
        assert_eq!(TABLE1_SCENARIOS[0].width, 500.0);
        assert_eq!(TABLE1_SCENARIOS[3].tx_range, 30.0);
        assert_eq!(TABLE1_SCENARIOS[5].tx_range, 70.0);
        assert_eq!(TABLE1_SCENARIOS[7].nodes, 1000);
        assert_eq!(SCENARIO_5.nodes, 500);
        assert_eq!(SCENARIO_5.tx_range, 50.0);
    }

    #[test]
    fn density_and_label() {
        let s = Scenario::new(500, 710.0, 710.0, 50.0);
        assert!((s.density() - 500.0 / (710.0 * 710.0)).abs() < 1e-15);
        assert_eq!(s.label(), "N=500 710x710 tx=50");
    }

    #[test]
    fn instantiate_deterministic() {
        let s = Scenario::new(100, 500.0, 500.0, 50.0);
        let (p1, a1) = s.instantiate(7);
        let (p2, a2) = s.instantiate(7);
        assert_eq!(p1, p2);
        assert_eq!(a1.link_count(), a2.link_count());
        let (p3, _) = s.instantiate(8);
        assert_ne!(p1, p3);
    }

    #[test]
    fn scenario5_roughly_matches_table1_row() {
        // Table 1 row 5: 1854 links, degree 7.4, diameter 29, avg hops 11.6.
        // Our topology is a different random draw, so expect the same order
        // of magnitude (the exact values are reproduced in `repro table1`).
        let (_, adj) = SCENARIO_5.instantiate(1);
        let m = TopologyMetrics::compute(&adj);
        assert_eq!(m.nodes, 500);
        assert!(
            m.avg_degree > 5.0 && m.avg_degree < 10.0,
            "degree {}",
            m.avg_degree
        );
        assert!(
            m.diameter >= 15 && m.diameter <= 45,
            "diameter {}",
            m.diameter
        );
        assert!(
            m.connectivity_ratio() > 0.9,
            "scenario 5 should be nearly connected"
        );
    }

    #[test]
    fn sparse_scenario3_is_disconnected() {
        let (_, adj) = TABLE1_SCENARIOS[2].instantiate(1);
        let m = TopologyMetrics::compute(&adj);
        assert!(
            m.components > 1,
            "scenario 3 is known-sparse (paper degree 2.57)"
        );
    }
}

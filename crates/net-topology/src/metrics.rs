//! Whole-topology metrics — the columns of Table 1.
//!
//! The paper reports, per scenario: number of links, average node degree,
//! network diameter and average hop count. Sparse scenarios (e.g. scenario
//! 3: 250 nodes over 1000×1000 m at 50 m range) are *disconnected*, so
//! diameter and average hops are computed over connected pairs only, and the
//! component structure is reported alongside.

use crate::bfs::full_bfs;
use crate::graph::Adjacency;
use crate::node::NodeId;

/// Summary statistics of one topology snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct TopologyMetrics {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of undirected links.
    pub links: usize,
    /// Mean node degree.
    pub avg_degree: f64,
    /// Maximum hop distance over connected pairs (0 for edgeless graphs).
    pub diameter: u16,
    /// Mean hop distance over connected (ordered) pairs, excluding self-pairs.
    pub avg_hops: f64,
    /// Number of connected components.
    pub components: usize,
    /// Size of the largest connected component.
    pub largest_component: usize,
}

impl TopologyMetrics {
    /// Compute all metrics with one BFS per node (O(N·E)).
    pub fn compute(adj: &Adjacency) -> Self {
        let n = adj.node_count();
        let mut diameter = 0u16;
        let mut hop_sum: u64 = 0;
        let mut pair_count: u64 = 0;
        let mut component_of = vec![usize::MAX; n];
        let mut components = 0usize;
        let mut largest = 0usize;

        for src in NodeId::all(n) {
            let bfs = full_bfs(adj, src);
            // component labeling from BFS of unvisited sources
            if component_of[src.index()] == usize::MAX {
                for &v in bfs.visited() {
                    component_of[v.index()] = components;
                }
                largest = largest.max(bfs.visited_count());
                components += 1;
            }
            diameter = diameter.max(bfs.max_distance());
            for &v in bfs.visited() {
                if v != src {
                    hop_sum += bfs.distance(v).unwrap() as u64;
                    pair_count += 1;
                }
            }
        }

        TopologyMetrics {
            nodes: n,
            links: adj.link_count(),
            avg_degree: adj.avg_degree(),
            diameter,
            avg_hops: if pair_count == 0 {
                0.0
            } else {
                hop_sum as f64 / pair_count as f64
            },
            components,
            largest_component: largest,
        }
    }

    /// Fraction of nodes in the largest component (1.0 = connected).
    pub fn connectivity_ratio(&self) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        self.largest_component as f64 / self.nodes as f64
    }

    /// Is the topology a single connected component?
    pub fn is_connected(&self) -> bool {
        self.components <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: u32) -> Adjacency {
        let mut adj = Adjacency::with_nodes(n as usize);
        for i in 0..n - 1 {
            adj.add_edge(NodeId(i), NodeId(i + 1));
        }
        adj
    }

    #[test]
    fn path_graph_metrics() {
        let m = TopologyMetrics::compute(&path(4));
        assert_eq!(m.nodes, 4);
        assert_eq!(m.links, 3);
        assert_eq!(m.diameter, 3);
        assert_eq!(m.components, 1);
        assert_eq!(m.largest_component, 4);
        assert!(m.is_connected());
        assert_eq!(m.connectivity_ratio(), 1.0);
        // ordered connected pairs: distances 1,2,3 appear twice each plus 1,1,2 etc.
        // path 0-1-2-3: sum over ordered pairs = 2*(1+2+3 + 1+2 + 1) = 20, pairs = 12
        assert!((m.avg_hops - 20.0 / 12.0).abs() < 1e-12);
        assert!((m.avg_degree - 6.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_components() {
        let mut adj = Adjacency::with_nodes(5);
        adj.add_edge(NodeId(0), NodeId(1));
        adj.add_edge(NodeId(2), NodeId(3));
        // node 4 isolated
        let m = TopologyMetrics::compute(&adj);
        assert_eq!(m.components, 3);
        assert_eq!(m.largest_component, 2);
        assert!(!m.is_connected());
        assert_eq!(m.diameter, 1);
        assert_eq!(m.avg_hops, 1.0); // all connected pairs are at 1 hop
        assert!((m.connectivity_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn edgeless_graph() {
        let adj = Adjacency::with_nodes(3);
        let m = TopologyMetrics::compute(&adj);
        assert_eq!(m.links, 0);
        assert_eq!(m.diameter, 0);
        assert_eq!(m.avg_hops, 0.0);
        assert_eq!(m.components, 3);
        assert_eq!(m.largest_component, 1);
    }

    #[test]
    fn complete_graph() {
        let mut adj = Adjacency::with_nodes(4);
        for i in 0..4u32 {
            for j in i + 1..4 {
                adj.add_edge(NodeId(i), NodeId(j));
            }
        }
        let m = TopologyMetrics::compute(&adj);
        assert_eq!(m.links, 6);
        assert_eq!(m.diameter, 1);
        assert_eq!(m.avg_hops, 1.0);
        assert_eq!(m.avg_degree, 3.0);
        assert!(m.is_connected());
    }

    #[test]
    fn star_graph_diameter_two() {
        let mut adj = Adjacency::with_nodes(5);
        for i in 1..5u32 {
            adj.add_edge(NodeId(0), NodeId(i));
        }
        let m = TopologyMetrics::compute(&adj);
        assert_eq!(m.diameter, 2);
        assert_eq!(m.links, 4);
    }
}

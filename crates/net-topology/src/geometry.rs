//! Planar geometry primitives: points and the rectangular simulation field.

use core::fmt;

/// A point (or displacement) in the 2-D simulation plane, in meters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point2 {
    /// X coordinate, meters.
    pub x: f64,
    /// Y coordinate, meters.
    pub y: f64,
}

impl Point2 {
    /// Origin point.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Construct a point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Squared Euclidean distance to `other` (avoids the sqrt in hot loops).
    #[inline]
    pub fn dist_sq(self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point2) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Linear interpolation: `self + t * (other - self)` with `t ∈ [0, 1]`.
    #[inline]
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        Point2 {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }

    /// Move from `self` toward `target` by exactly `step` meters, stopping
    /// at the target if it is closer than `step`.
    ///
    /// Costs one `sqrt` for the distance. Callers on a hot advance path
    /// that *already* computed `d = self.dist(target)` (mobility models
    /// typically need it for arrival/time accounting) should not pay that
    /// sqrt twice: when `step < d`, `self.lerp(target, step / d)` is
    /// bit-identical to this method.
    pub fn step_toward(self, target: Point2, step: f64) -> Point2 {
        let d = self.dist(target);
        if d <= step || d == 0.0 {
            target
        } else {
            self.lerp(target, step / d)
        }
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// The rectangular simulation field `[0, width] × [0, height]`, meters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Field {
    width: f64,
    height: f64,
}

impl Field {
    /// Construct a field.
    ///
    /// # Panics
    /// Panics unless both dimensions are positive and finite.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0 && width.is_finite() && height.is_finite(),
            "field dimensions must be positive and finite, got {width} x {height}"
        );
        Field { width, height }
    }

    /// A square field of the given side length.
    pub fn square(side: f64) -> Self {
        Field::new(side, side)
    }

    /// Field width in meters.
    #[inline]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Field height in meters.
    #[inline]
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Field area in square meters.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Is `p` inside the field (inclusive of edges)?
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }

    /// Clamp `p` to the field boundary.
    #[inline]
    pub fn clamp(&self, p: Point2) -> Point2 {
        Point2 {
            x: p.x.clamp(0.0, self.width),
            y: p.y.clamp(0.0, self.height),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distances() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.dist_sq(b), 25.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.dist(a), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(10.0, -10.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point2::new(5.0, -5.0));
    }

    #[test]
    fn step_toward_shorter_than_step_reaches_target() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        assert_eq!(a.step_toward(b, 5.0), b);
        assert_eq!(b.step_toward(b, 5.0), b); // zero-distance case
    }

    #[test]
    fn step_toward_partial() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(10.0, 0.0);
        let c = a.step_toward(b, 4.0);
        assert!((c.x - 4.0).abs() < 1e-12 && c.y == 0.0);
    }

    #[test]
    fn field_basics() {
        let f = Field::new(710.0, 500.0);
        assert_eq!(f.width(), 710.0);
        assert_eq!(f.height(), 500.0);
        assert_eq!(f.area(), 355_000.0);
        assert!(f.contains(Point2::new(0.0, 0.0)));
        assert!(f.contains(Point2::new(710.0, 500.0)));
        assert!(!f.contains(Point2::new(710.1, 0.0)));
        assert!(!f.contains(Point2::new(-0.1, 0.0)));
        let sq = Field::square(100.0);
        assert_eq!(sq.width(), sq.height());
    }

    #[test]
    fn clamp_pins_to_boundary() {
        let f = Field::square(100.0);
        assert_eq!(f.clamp(Point2::new(-5.0, 50.0)), Point2::new(0.0, 50.0));
        assert_eq!(
            f.clamp(Point2::new(150.0, 150.0)),
            Point2::new(100.0, 100.0)
        );
        let inside = Point2::new(10.0, 20.0);
        assert_eq!(f.clamp(inside), inside);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_field_rejected() {
        Field::new(0.0, 10.0);
    }

    proptest! {
        #[test]
        fn prop_dist_symmetric(ax in -1e3..1e3f64, ay in -1e3..1e3f64,
                               bx in -1e3..1e3f64, by in -1e3..1e3f64) {
            let a = Point2::new(ax, ay);
            let b = Point2::new(bx, by);
            prop_assert!((a.dist(b) - b.dist(a)).abs() < 1e-9);
            prop_assert!(a.dist(b) >= 0.0);
        }

        #[test]
        fn prop_clamp_always_contained(x in -1e4..1e4f64, y in -1e4..1e4f64) {
            let f = Field::new(710.0, 710.0);
            prop_assert!(f.contains(f.clamp(Point2::new(x, y))));
        }

        #[test]
        fn prop_step_never_overshoots(x in 0.0..100.0f64, y in 0.0..100.0f64, step in 0.0..50.0f64) {
            let a = Point2::new(0.0, 0.0);
            let t = Point2::new(x, y);
            let moved = a.step_toward(t, step);
            // distance traveled is at most `step` (+ eps) and we never move past the target
            prop_assert!(a.dist(moved) <= step + 1e-9 || moved == t);
            prop_assert!(moved.dist(t) <= a.dist(t) + 1e-9);
        }

        /// The sqrt-free substitution the mobility hot paths use (see the
        /// `step_toward` docs): with the distance already in hand and
        /// `step < d`, `lerp(target, step / d)` is bit-identical.
        #[test]
        fn prop_lerp_substitution_is_bit_identical(
            ax in -500.0..500.0f64, ay in -500.0..500.0f64,
            tx in -500.0..500.0f64, ty in -500.0..500.0f64,
            frac in 0.0..1.0f64,
        ) {
            let a = Point2::new(ax, ay);
            let t = Point2::new(tx, ty);
            let d = a.dist(t);
            let step = d * frac;
            prop_assume!(step < d);
            prop_assert_eq!(a.step_toward(t, step), a.lerp(t, step / d));
        }
    }
}

//! # net-topology — geometry and connectivity substrate
//!
//! This crate models the physical layer of the CARD evaluation exactly the
//! way the paper's NS-2 setup did (no MAC, no loss): nodes are points in a
//! rectangular field and two nodes share a bidirectional link iff their
//! Euclidean distance is at most the transmission range (*unit-disk graph*).
//!
//! Components:
//!
//! * [`geometry`] — [`geometry::Point2`], [`geometry::Field`];
//! * [`node`] — dense [`node::NodeId`] handles;
//! * [`placement`] — uniform / grid / clustered node placement;
//! * [`grid`] — a spatial hash grid giving O(1)-neighborhood range queries,
//!   used to rebuild connectivity in O(N · avg-degree) instead of O(N²);
//! * [`plane`] — the SoA f32 position mirror ([`plane::PositionPlane`])
//!   and the two-phase (approximate filter → exact confirm) distance
//!   kernel machinery behind the batched grid scans;
//! * [`graph`] — the adjacency structure ([`graph::Adjacency`]);
//! * [`bfs`] — hop-limited and full breadth-first search (neighborhood
//!   tables, shortest hop paths);
//! * [`metrics`] — links, degree, diameter, average hops (Table 1);
//! * [`smallworld`] — Watts–Strogatz clustering / characteristic path
//!   length (the paper's §I small-world foundation);
//! * [`scenario`] — the 8 simulation scenarios of Table 1 plus custom ones.
//!
//! ## Hot-path layout (the mobility tick)
//!
//! This crate is the bottom of the 4-layer topology→routing→protocol stack
//! (`sim-core` → `net-topology` → `manet-routing` → `card-core`), and the
//! mobility tick is its hot path. Two structural decisions keep that path
//! allocation-free and cache-friendly at scale:
//!
//! * **CSR everywhere** — both the [`grid::SpatialGrid`] buckets and the
//!   [`graph::Adjacency`] neighbor lists are flat arrays with offset
//!   tables, rebuilt in place by counting passes. A rebuild touches two
//!   buffers, not N little vectors;
//! * **epoch-stamped scratch** — [`bfs::BfsScratch`] keeps distances,
//!   parents, queue and visited marks in persistent buffers; a new
//!   traversal costs O(1) setup (bump the epoch) instead of O(N) clearing.
//!   The convenience wrappers ([`bfs::khop_bfs`], [`bfs::full_bfs`],
//!   [`bfs::shortest_path`]) run on a thread-local scratch and allocate
//!   only their output; layers above hold per-worker scratches for bulk
//!   work (see `manet_routing::neighborhood`).

#![warn(missing_docs)]
pub mod bfs;
pub mod geometry;
pub mod graph;
pub mod grid;
pub mod metrics;
pub mod node;
pub mod placement;
pub mod plane;
pub mod scenario;
pub mod smallworld;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::bfs::{full_bfs, khop_bfs, shortest_path, BfsResult, BfsScratch, BfsView};
    pub use crate::geometry::{Field, Point2};
    pub use crate::graph::Adjacency;
    pub use crate::grid::SpatialGrid;
    pub use crate::metrics::TopologyMetrics;
    pub use crate::node::NodeId;
    pub use crate::placement::{place_clustered, place_grid, place_uniform};
    pub use crate::plane::{KernelBand, KernelScratch, KernelStats, PositionPlane};
    pub use crate::scenario::{Scenario, TABLE1_SCENARIOS};
    pub use crate::smallworld::SmallWorldMetrics;
}

pub use bfs::{full_bfs, khop_bfs, shortest_path, BfsResult, BfsScratch, BfsView};
pub use geometry::{Field, Point2};
pub use graph::Adjacency;
pub use grid::SpatialGrid;
pub use metrics::TopologyMetrics;
pub use node::NodeId;
pub use plane::{KernelBand, KernelScratch, KernelStats, PositionPlane};
pub use scenario::{Scenario, TABLE1_SCENARIOS};
pub use smallworld::SmallWorldMetrics;

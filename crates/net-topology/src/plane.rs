//! SoA position plane and the two-phase f32 distance-kernel machinery.
//!
//! The authoritative node positions are f64 [`Point2`]s in an AoS array —
//! every exact geometric decision is made there. But the hot link-decision
//! loops (grid cell-ball scans, adjacency row re-queries) only need a
//! *classification* of each candidate: definitely within range, definitely
//! out of range, or too close to the boundary to tell in reduced
//! precision. [`PositionPlane`] mirrors the positions into
//! structure-of-arrays `xs`/`ys` lanes in f32 — half the memory traffic of
//! the `Point2` loads and a layout the compiler can batch — and
//! [`KernelBand`] carries a *conservative* error band around `range²` so
//! the classification is sound:
//!
//! * `d2_f32 <= lo` ⇒ the exact f64 `dist_sq` is provably `<= range²`
//!   (accept without touching the f64 array);
//! * `d2_f32 > hi` ⇒ the exact `dist_sq` is provably `> range²` (reject);
//! * otherwise the pair is *borderline*: resolve it with the exact f64
//!   test (counted in [`KernelStats::exact_checks`]).
//!
//! Every link decision is therefore **bit-identical** to the scalar f64
//! path — the kernels change the cost of the decision, never its outcome.
//! The equivalence is pinned by proptests in `graph.rs`, `grid.rs` and
//! `tests/topology_refresh.rs` (including positions dithered within the
//! f32 error band around `range`).
//!
//! ## Error-band derivation
//!
//! Let `u = f32::EPSILON`, `C` the largest absolute coordinate the plane
//! has seen (tracked in [`PositionPlane::max_abs_coord`]), and `D` the
//! largest per-axis separation the band must cover. Lanes are rounded
//! coordinates (`|x̂ - x| ≤ uC`), so a lane difference carries error
//! `e_dx ≤ u(2C + D)` after the subtraction rounding; squaring and summing
//! in f32 adds `e_dx(2D + e_dx)` per axis plus rounding of the squares and
//! the final add. The total is doubled once more for safety margin — the
//! band costs only a few extra exact checks per million lanes, so
//! generosity is free. Pairs separated by more than `D` per axis are
//! outside the band's analysis, but their relative f32 error is tiny and
//! the kernels only ever classify candidates from a 3×3 cell ball, where
//! `D = 2 × cell_side` covers every pair that could possibly be within
//! `range ≤ cell_side` (clamped out-of-field stragglers included: an
//! accept at `d2 ≤ lo` certifies `|dx| ≤ range + e_dx < D`, so the band
//! applies to every accepted pair, and truly-far pairs sit far above
//! `hi`). If the band ever swallows `range²` entirely (`lo` clamps to 0),
//! every candidate goes through the exact test — precision collapse
//! degrades performance, never correctness.

use crate::geometry::Point2;
use crate::node::NodeId;

/// Conservative f32 classification thresholds around `range²` for one
/// kernel pass (see the module docs for the derivation and soundness
/// argument). Build via [`PositionPlane::band`].
#[derive(Clone, Copy, Debug)]
pub struct KernelBand {
    /// `d2_f32 <= lo` certifies the exact `dist_sq <= range²`.
    pub lo: f32,
    /// `d2_f32 > hi` certifies the exact `dist_sq > range²`.
    pub hi: f32,
    /// The exact f64 threshold for borderline resolution.
    pub r_sq: f64,
}

/// Counters from kernel classification passes: how many candidate lanes
/// were classified and how many fell in the borderline band and needed
/// the exact f64 test. Their ratio is the kernel fast-path hit rate
/// reported by `repro scale`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Candidate lanes classified by the f32 band test.
    pub lanes: u64,
    /// Lanes that fell inside the error band and were resolved with the
    /// exact f64 `dist_sq` test.
    pub exact_checks: u64,
}

impl KernelStats {
    /// Merge another pass's counters into this one.
    #[inline]
    pub fn merge(&mut self, other: KernelStats) {
        self.lanes += other.lanes;
        self.exact_checks += other.exact_checks;
    }
}

/// Reusable buffers for the batched distance kernels (an entry-aligned
/// lane mirror for whole-CSR rebuilds) plus the pass counters. No
/// allocation in the steady state.
#[derive(Clone, Debug, Default)]
pub struct KernelScratch {
    /// Entry-aligned lane mirror (one slot per grid CSR entry slot;
    /// vacant slots hold `f32::INFINITY`). Filled by
    /// `SpatialGrid::fill_lane_mirror`, valid until the grid or the
    /// positions next change.
    pub(crate) mirror_x: Vec<f32>,
    /// See `mirror_x`.
    pub(crate) mirror_y: Vec<f32>,
    /// Per-row candidate buffer for the compaction pass: `(d2, id)`
    /// survivors of the fast f32 reject, sized to the longest fused row
    /// seen so far.
    pub(crate) cand: Vec<(f32, NodeId)>,
    /// Classification counters since the caller last reset them.
    pub stats: KernelStats,
}

impl KernelScratch {
    /// Fresh scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Structure-of-arrays f32 mirror of the authoritative `&[Point2]` array.
///
/// The plane stores one lane per node plus a trailing *sentinel* lane
/// holding `f32::INFINITY`, so kernels can translate any grid entry —
/// including the `VACANT` sentinel id — into a lane index branch-free:
/// `min(id, n)` maps vacancies onto the sentinel, whose infinite
/// coordinates classify as "definitely out of range" for free.
///
/// Coherence contract: after [`PositionPlane::rebuild`] (or
/// [`PositionPlane::update_reported`] with an exact mover report) the
/// plane satisfies `xs[i] == positions[i].x as f32` for every node. The
/// tracked max-abs coordinate only ratchets up between full rebuilds, so
/// a band computed from it stays conservative across incremental updates.
#[derive(Clone, Debug, Default)]
pub struct PositionPlane {
    /// `n + 1` lanes; `xs[n]` is the `INFINITY` sentinel.
    xs: Vec<f32>,
    /// See `xs`.
    ys: Vec<f32>,
    /// Largest `|coordinate|` over every position the plane has mirrored
    /// since the last full rebuild (monotone between rebuilds).
    max_abs: f64,
}

impl PositionPlane {
    /// An empty plane (populate with [`PositionPlane::rebuild`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a plane mirroring `positions`.
    pub fn with_positions(positions: &[Point2]) -> Self {
        let mut plane = Self::default();
        plane.rebuild(positions);
        plane
    }

    /// Re-mirror every position (and re-tighten the max-abs tracking).
    pub fn rebuild(&mut self, positions: &[Point2]) {
        let n = positions.len();
        self.xs.clear();
        self.ys.clear();
        self.xs.reserve(n + 1);
        self.ys.reserve(n + 1);
        let mut max_abs = 0.0f64;
        for p in positions {
            self.xs.push(p.x as f32);
            self.ys.push(p.y as f32);
            max_abs = max_abs.max(p.x.abs()).max(p.y.abs());
        }
        self.xs.push(f32::INFINITY);
        self.ys.push(f32::INFINITY);
        self.max_abs = max_abs;
    }

    /// Refresh only the lanes of the `reported` movers — O(movers), the
    /// plane-side analogue of `SpatialGrid::update_reported`. Falls back
    /// to a full [`PositionPlane::rebuild`] when the node count changed.
    ///
    /// # Contract
    /// `reported` must contain every node whose position changed since
    /// the plane last matched `positions` (supersets are fine). Debug
    /// builds verify full coherence afterwards with an O(N) sweep.
    pub fn update_reported(&mut self, positions: &[Point2], reported: &[NodeId]) {
        if self.len() != positions.len() {
            self.rebuild(positions);
            return;
        }
        for &id in reported {
            let i = id.index();
            let p = positions[i];
            self.xs[i] = p.x as f32;
            self.ys[i] = p.y as f32;
            self.max_abs = self.max_abs.max(p.x.abs()).max(p.y.abs());
        }
        debug_assert!(
            self.is_coherent(positions),
            "position plane out of sync: a mover was not in the reported set"
        );
    }

    /// Number of node lanes (excluding the sentinel).
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len().saturating_sub(1)
    }

    /// Is the plane empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The x/y lane arrays, `len() + 1` entries each (the last is the
    /// `INFINITY` sentinel lane).
    #[inline]
    pub fn lanes(&self) -> (&[f32], &[f32]) {
        (&self.xs, &self.ys)
    }

    /// The lane of `id`, mapping any out-of-range id (e.g. the grid's
    /// `VACANT` sentinel) onto the infinite sentinel lane.
    #[inline]
    pub fn lane(&self, id: NodeId) -> (f32, f32) {
        let i = (id.index()).min(self.len());
        (self.xs[i], self.ys[i])
    }

    /// Largest absolute coordinate mirrored since the last full rebuild.
    #[inline]
    pub fn max_abs_coord(&self) -> f64 {
        self.max_abs
    }

    /// Does every lane mirror its `Point2` exactly (`x as f32`)? Test and
    /// debug-assert oracle for the coherence contract.
    pub fn is_coherent(&self, positions: &[Point2]) -> bool {
        self.len() == positions.len()
            && positions.iter().enumerate().all(|(i, p)| {
                self.xs[i].to_bits() == (p.x as f32).to_bits()
                    && self.ys[i].to_bits() == (p.y as f32).to_bits()
            })
            && self.xs[self.len()] == f32::INFINITY
            && self.ys[self.len()] == f32::INFINITY
    }

    /// The conservative classification band around `range²` for kernels
    /// scanning 3×3 cell balls of a grid with the given `cell_side`
    /// (see the module docs for the derivation).
    pub fn band(&self, range: f64, cell_side: f64) -> KernelBand {
        let u = f32::EPSILON as f64;
        let c = self.max_abs;
        // Largest per-axis separation the band must certify: anything a
        // 3×3 ball can pair up, one cell side each way around the center
        // cell (accepts self-certify |dx| ≤ range + e_dx < d, see docs).
        let d = 2.0 * cell_side.max(range);
        let e_dx = u * (2.0 * c + d);
        let de = d + e_dx;
        // Per-axis: |fl(dx̂²) − dx²| ≤ e_dx(2d + e_dx) + u·de²; two axes
        // plus the final f32 add contribute one more u·de² each.
        let e = 2.0 * (e_dx * (2.0 * d + e_dx) + u * de * de) + 2.0 * u * de * de;
        let e = 2.0 * e; // safety doubling — borderline checks are cheap
        let r_sq = range * range;
        // Absorb the f64→f32 rounding of the thresholds themselves.
        let pad = 4.0 * u * r_sq.max(1.0);
        KernelBand {
            lo: (r_sq - e - pad).max(0.0) as f32,
            hi: (r_sq + e + pad) as f32,
            r_sq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebuild_mirrors_positions_exactly() {
        let positions = vec![
            Point2::new(0.0, 0.0),
            Point2::new(123.456789, 987.654321),
            Point2::new(31749.99, 0.125),
        ];
        let plane = PositionPlane::with_positions(&positions);
        assert_eq!(plane.len(), 3);
        assert!(plane.is_coherent(&positions));
        assert_eq!(plane.lane(NodeId::new(1)).0, 123.456789f64 as f32);
        // out-of-range ids (the grid VACANT sentinel) hit the sentinel lane
        assert_eq!(plane.lane(NodeId::new(u32::MAX)).0, f32::INFINITY);
        assert!((plane.max_abs_coord() - 31749.99).abs() < 1e-9);
    }

    #[test]
    fn update_reported_refreshes_only_movers_and_stays_coherent() {
        let mut positions = vec![Point2::new(1.0, 2.0), Point2::new(3.0, 4.0)];
        let mut plane = PositionPlane::with_positions(&positions);
        positions[1] = Point2::new(5.5, 6.5);
        plane.update_reported(&positions, &[NodeId::new(1)]);
        assert!(plane.is_coherent(&positions));
        // node-count change falls back to a full rebuild
        positions.push(Point2::new(7.0, 8.0));
        plane.update_reported(&positions, &[]);
        assert!(plane.is_coherent(&positions));
    }

    #[test]
    fn max_abs_ratchets_up_across_reported_updates() {
        let mut positions = vec![Point2::new(10.0, 10.0)];
        let mut plane = PositionPlane::with_positions(&positions);
        positions[0] = Point2::new(500.0, 10.0);
        plane.update_reported(&positions, &[NodeId::new(0)]);
        assert!(plane.max_abs_coord() >= 500.0);
        // moving back down does not lower the bound until a rebuild
        positions[0] = Point2::new(10.0, 10.0);
        plane.update_reported(&positions, &[NodeId::new(0)]);
        assert!(plane.max_abs_coord() >= 500.0);
        plane.rebuild(&positions);
        assert!(plane.max_abs_coord() < 11.0);
    }

    /// The band is sound on a dense sweep of near-boundary pairs: f32
    /// classification through the band never disagrees with the exact
    /// f64 decision.
    #[test]
    fn band_classification_matches_exact_decisions() {
        let range = 50.0;
        let mut disagreements = 0u32;
        let mut borderline = 0u32;
        for k in 0..4000 {
            // pair distances swept densely through [range - δ, range + δ]
            let delta = (k as f64 - 2000.0) * 1e-5;
            let a = Point2::new(700.0, 700.0);
            let b = Point2::new(
                700.0 + (range + delta) / f64::sqrt(2.0),
                700.0 + (range + delta) / f64::sqrt(2.0),
            );
            let positions = [a, b];
            let plane = PositionPlane::with_positions(&positions);
            let band = plane.band(range, range);
            let (ax, ay) = plane.lane(NodeId::new(0));
            let (bx, by) = plane.lane(NodeId::new(1));
            let (dx, dy) = (bx - ax, by - ay);
            let d2 = dx * dx + dy * dy;
            let exact = a.dist_sq(b) <= band.r_sq;
            let kernel = if d2 <= band.lo {
                true
            } else if d2 > band.hi {
                false
            } else {
                borderline += 1;
                a.dist_sq(b) <= band.r_sq
            };
            if kernel != exact {
                disagreements += 1;
            }
        }
        assert_eq!(disagreements, 0, "kernel band produced a wrong decision");
        assert!(borderline > 0, "the sweep must actually cross the band");
    }

    /// Fast accepts and rejects are each individually sound: a `<= lo`
    /// classification implies the exact test passes, a `> hi` one implies
    /// it fails — checked over coordinates large enough that f32 lanes
    /// lose real precision (the N=10⁶ field regime).
    #[test]
    fn band_fast_paths_are_sound_at_large_coordinates() {
        let range = 50.0;
        let (mut accepts, mut rejects) = (0u32, 0u32);
        for k in 0..2000 {
            let base = 31_000.0 + (k as f64) * 0.37;
            let d = range - 2.0 + (k as f64) * 0.002; // sweep 48..52 m
            let a = Point2::new(base, base * 0.5);
            let b = Point2::new(base + d * 0.6, base * 0.5 + d * 0.8);
            let positions = [a, b];
            let plane = PositionPlane::with_positions(&positions);
            let band = plane.band(range, range);
            let (ax, ay) = plane.lane(NodeId::new(0));
            let (bx, by) = plane.lane(NodeId::new(1));
            let (dx, dy) = (bx - ax, by - ay);
            let d2 = dx * dx + dy * dy;
            if d2 <= band.lo {
                accepts += 1;
                assert!(a.dist_sq(b) <= band.r_sq, "unsound fast accept");
            } else if d2 > band.hi {
                rejects += 1;
                assert!(a.dist_sq(b) > band.r_sq, "unsound fast reject");
            }
        }
        assert!(
            accepts > 0 && rejects > 0,
            "sweep must exercise both fast paths"
        );
    }

    #[test]
    fn precision_collapse_degrades_to_exact_checks_only() {
        // Coordinates so large that the error band swallows range²: lo
        // clamps to zero (no fast accepts), hi stays above every in-range
        // pair (no false rejects) — performance degrades, decisions don't.
        let positions = vec![Point2::new(4.0e9, 4.0e9)];
        let plane = PositionPlane::with_positions(&positions);
        let band = plane.band(50.0, 50.0);
        assert_eq!(band.lo, 0.0);
        assert!(band.hi as f64 > 2500.0);
    }
}

//! The static (no-motion) model.
//!
//! The paper motivates CARD partly through *static sensor networks* (§I,
//! §II: the mobility-assisted scheme of \[13\] "may not be suitable for static
//! sensor networks"). All reachability figures (Figs 3–9) are topology
//! snapshots, which this model represents exactly.

use crate::model::MobilityModel;
use net_topology::geometry::Point2;
use net_topology::node::NodeId;
use sim_core::time::SimDuration;

/// A mobility model under which nothing moves.
#[derive(Clone, Copy, Debug, Default)]
pub struct StaticModel;

impl MobilityModel for StaticModel {
    fn advance(&mut self, _positions: &mut [Point2], _dt: SimDuration) {}

    fn advance_reporting(
        &mut self,
        _positions: &mut [Point2],
        _dt: SimDuration,
        movers: &mut Vec<NodeId>,
    ) {
        movers.clear();
    }

    fn name(&self) -> &'static str {
        "static"
    }

    fn is_static(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_moves() {
        let mut m = StaticModel;
        let mut pos = vec![Point2::new(1.0, 2.0), Point2::new(3.0, 4.0)];
        let before = pos.clone();
        m.advance(&mut pos, SimDuration::from_secs(100));
        assert_eq!(pos, before);
        assert!(m.is_static());
        assert_eq!(m.name(), "static");
    }

    #[test]
    fn reports_no_movers() {
        let mut m = StaticModel;
        let mut pos = vec![Point2::new(1.0, 2.0), Point2::new(3.0, 4.0)];
        let before = pos.clone();
        let mut movers = vec![NodeId::new(0)]; // stale content must be cleared
        m.advance_reporting(&mut pos, SimDuration::from_secs(100), &mut movers);
        assert_eq!(pos, before);
        assert!(movers.is_empty());
    }
}

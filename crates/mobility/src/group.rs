//! Reference-point group mobility (RPGM).
//!
//! Nodes belong to groups; each group has a *reference point* that follows
//! random waypoint, and members roam smoothly within `member_radius` of it:
//! every member keeps a current offset from the reference point and glides
//! toward a randomly re-drawn target offset at a bounded relative speed.
//! This approximates coordinated movement — e.g. the battlefield units of
//! the paper's introduction — and is one of the "various mobility patterns"
//! listed as future work in §V.

use crate::model::MobilityModel;
use crate::waypoint::RandomWaypoint;
use net_topology::geometry::{Field, Point2};
use net_topology::node::NodeId;
use sim_core::rng::RngStream;
use sim_core::time::SimDuration;

/// Per-member roaming state relative to its reference point.
#[derive(Clone, Copy, Debug)]
struct Member {
    /// Current offset from the reference point.
    offset: Point2,
    /// Offset the member is gliding toward.
    target: Point2,
    /// Relative speed in m/s.
    speed: f64,
}

/// Group mobility: leaders do RWP, members orbit their leader smoothly.
pub struct GroupMobility {
    field: Field,
    groups: usize,
    member_radius: f64,
    /// Bounds for the members' relative speeds.
    rel_speed: (f64, f64),
    /// RWP over the group reference points.
    leader_model: RandomWaypoint,
    /// Current reference point positions (`groups` entries).
    ref_points: Vec<Point2>,
    members: Vec<Member>,
    rng: RngStream,
}

impl GroupMobility {
    /// Create group mobility for `n` nodes split round-robin into `groups`
    /// groups, reference points moving at speeds `[v_min, v_max]`, members
    /// within `member_radius` meters of their reference point.
    ///
    /// # Panics
    /// Panics if `groups == 0` or `member_radius < 0`.
    pub fn new(
        n: usize,
        field: Field,
        groups: usize,
        v_min: f64,
        v_max: f64,
        member_radius: f64,
        mut rng: RngStream,
    ) -> Self {
        assert!(groups > 0, "need at least one group");
        assert!(member_radius >= 0.0, "negative member radius");
        let leader_rng = RngStream::seed_from_u64(rng.next_raw());
        let leader_model = RandomWaypoint::new(groups, field, v_min, v_max, 0.0, leader_rng);
        let ref_points = (0..groups)
            .map(|_| {
                Point2::new(
                    rng.range_f64(0.0, field.width()),
                    rng.range_f64(0.0, field.height()),
                )
            })
            .collect();
        // Members drift relative to the reference point at a fraction of
        // the group speed, so intra-group links stay comparatively stable.
        let rel_speed = (0.2 * v_min.max(0.5), 0.5 * v_max);
        let members = (0..n)
            .map(|_| {
                let offset = Self::fresh_offset(member_radius, &mut rng);
                Member {
                    offset,
                    target: Self::fresh_offset(member_radius, &mut rng),
                    speed: rng.range_f64(rel_speed.0, rel_speed.1),
                }
            })
            .collect();
        GroupMobility {
            field,
            groups,
            member_radius,
            rel_speed,
            leader_model,
            ref_points,
            members,
            rng,
        }
    }

    fn fresh_offset(radius: f64, rng: &mut RngStream) -> Point2 {
        let theta = rng.range_f64(0.0, std::f64::consts::TAU);
        let r = radius * rng.next_f64().sqrt();
        Point2::new(r * theta.cos(), r * theta.sin())
    }

    /// Group index of node `i`.
    pub fn group_of(&self, i: usize) -> usize {
        i % self.groups
    }

    /// Current reference points (for tests/visualization).
    pub fn reference_points(&self) -> &[Point2] {
        &self.ref_points
    }
}

impl GroupMobility {
    /// The shared advance loop: move the reference points, glide every
    /// member, calling `report` with the index of each node whose position
    /// actually changed.
    fn advance_inner(
        &mut self,
        positions: &mut [Point2],
        dt: SimDuration,
        mut report: impl FnMut(usize),
    ) {
        assert!(
            positions.len() == self.members.len(),
            "GroupMobility built for {} nodes, got {} positions",
            self.members.len(),
            positions.len()
        );
        let dt_secs = dt.as_secs_f64();
        let mut refs = std::mem::take(&mut self.ref_points);
        self.leader_model.advance(&mut refs, dt);
        self.ref_points = refs;

        for (i, pos) in positions.iter_mut().enumerate() {
            let m = &mut self.members[i];
            m.offset = m.offset.step_toward(m.target, m.speed * dt_secs);
            if m.offset == m.target {
                m.target = Self::fresh_offset(self.member_radius, &mut self.rng);
                m.speed = self.rng.range_f64(self.rel_speed.0, self.rel_speed.1);
            }
            let rp = self.ref_points[i % self.groups];
            let after = self
                .field
                .clamp(Point2::new(rp.x + m.offset.x, rp.y + m.offset.y));
            if after != *pos {
                report(i);
            }
            *pos = after;
        }
    }
}

impl MobilityModel for GroupMobility {
    fn advance(&mut self, positions: &mut [Point2], dt: SimDuration) {
        self.advance_inner(positions, dt, |_| {});
    }

    fn advance_reporting(
        &mut self,
        positions: &mut [Point2],
        dt: SimDuration,
        movers: &mut Vec<NodeId>,
    ) {
        movers.clear();
        self.advance_inner(positions, dt, |i| movers.push(NodeId::from(i)));
    }

    fn name(&self) -> &'static str {
        "group"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> RngStream {
        RngStream::seed_from_u64(seed)
    }

    #[test]
    fn members_stay_near_reference_points() {
        let f = Field::square(500.0);
        let radius = 30.0;
        let mut m = GroupMobility::new(40, f, 4, 1.0, 10.0, radius, rng(1));
        let mut pos = vec![Point2::ORIGIN; 40];
        for _ in 0..50 {
            m.advance(&mut pos, SimDuration::from_millis(200));
            for (i, p) in pos.iter().enumerate() {
                let rp = m.reference_points()[m.group_of(i)];
                // clamping at the field edge can only pull points *closer*
                assert!(
                    p.dist(rp) <= radius + 1e-9,
                    "node {i} strayed {:.1} m from its reference point",
                    p.dist(rp)
                );
            }
        }
    }

    #[test]
    fn member_motion_is_smooth() {
        // No teleports: per-tick displacement is bounded by leader speed +
        // relative speed.
        let f = Field::square(500.0);
        let mut m = GroupMobility::new(20, f, 2, 1.0, 6.0, 40.0, rng(2));
        let mut pos = vec![Point2::ORIGIN; 20];
        m.advance(&mut pos, SimDuration::from_millis(100)); // settle offsets
        for _ in 0..100 {
            let before = pos.clone();
            m.advance(&mut pos, SimDuration::from_millis(100));
            for (a, b) in before.iter().zip(&pos) {
                // leader <= 6 m/s, member <= 3 m/s relative -> <= 0.9 m per tick
                assert!(
                    a.dist(*b) <= 0.95,
                    "teleport detected: {:.2} m in one 100 ms tick",
                    a.dist(*b)
                );
            }
        }
    }

    #[test]
    fn stays_in_field() {
        let f = Field::square(200.0);
        let mut m = GroupMobility::new(20, f, 2, 5.0, 15.0, 50.0, rng(2));
        let mut pos = vec![Point2::ORIGIN; 20];
        for _ in 0..100 {
            m.advance(&mut pos, SimDuration::from_millis(500));
            assert!(pos.iter().all(|&p| f.contains(p)));
        }
    }

    #[test]
    fn groups_partition_round_robin() {
        let m = GroupMobility::new(10, Field::square(100.0), 3, 1.0, 2.0, 10.0, rng(3));
        assert_eq!(m.group_of(0), 0);
        assert_eq!(m.group_of(1), 1);
        assert_eq!(m.group_of(2), 2);
        assert_eq!(m.group_of(3), 0);
        assert_eq!(m.reference_points().len(), 3);
    }

    #[test]
    fn deterministic() {
        let run = |seed| {
            let f = Field::square(300.0);
            let mut m = GroupMobility::new(12, f, 3, 1.0, 8.0, 25.0, rng(seed));
            let mut pos = vec![Point2::ORIGIN; 12];
            for _ in 0..20 {
                m.advance(&mut pos, SimDuration::from_millis(300));
            }
            pos
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_groups_panics() {
        GroupMobility::new(5, Field::square(10.0), 0, 1.0, 2.0, 5.0, rng(0));
    }

    #[test]
    fn name() {
        let m = GroupMobility::new(1, Field::square(10.0), 1, 1.0, 2.0, 1.0, rng(0));
        assert_eq!(m.name(), "group");
        assert!(!m.is_static());
    }

    #[test]
    fn reporting_matches_position_diff() {
        let f = Field::square(400.0);
        let mut m = GroupMobility::new(18, f, 3, 1.0, 8.0, 30.0, rng(7));
        let mut pos = vec![Point2::ORIGIN; 18];
        let mut movers = Vec::new();
        for _ in 0..30 {
            let before = pos.clone();
            m.advance_reporting(&mut pos, SimDuration::from_millis(250), &mut movers);
            let expect: Vec<NodeId> = (0..18)
                .filter(|&i| pos[i] != before[i])
                .map(NodeId::from)
                .collect();
            assert_eq!(movers, expect);
        }
    }
}

//! Random walk (random direction) mobility with boundary reflection.
//!
//! Each node keeps a heading and speed for an exponential-ish *epoch*
//! (fixed-length here, drawn per epoch); on epoch expiry it draws a new
//! heading and speed. Hitting the field boundary reflects the heading, so —
//! unlike random waypoint — the stationary node distribution stays uniform
//! (no center clustering), which is exactly the contrast the paper's
//! footnote 1 speculates about.
//!
//! ## Dwell
//!
//! [`RandomWalk::new_with_dwell`] adds a *dwell* mixture: at each epoch
//! boundary a node pauses (speed exactly zero) with probability
//! `pause_prob` instead of walking. This models pedestrian populations
//! where, at any instant, most carriers are standing, sitting, or parked
//! and only a fraction is actually in motion — the regime where
//! contact/zone state is stable between events (the locality premise of
//! CARD) and where the mover-driven topology pipeline does per-tick work
//! proportional to the walkers, not to N. Exactly-paused nodes are *not*
//! reported by `advance_reporting`.

use crate::model::MobilityModel;
use net_topology::geometry::{Field, Point2};
use net_topology::node::NodeId;
use sim_core::rng::RngStream;
use sim_core::time::SimDuration;

#[derive(Clone, Copy, Debug)]
struct WalkState {
    /// Heading in radians.
    theta: f64,
    /// Speed in m/s.
    speed: f64,
    /// Microseconds left in the current epoch.
    ///
    /// Integer ticks, not f64 seconds, on purpose: the event-driven driver
    /// skips over fully-paused spans in one big `advance`, and the tick
    /// reference covers the same span with many small ones. Integer
    /// decrements make those two schedules land every epoch expiry at the
    /// exact same instant with the exact same residual (`(r - a) - b ==
    /// r - (a + b)` holds for integers but not for floats), which is what
    /// keeps the two modes bit-identical.
    remaining_us: u64,
}

/// The random-walk model.
pub struct RandomWalk {
    field: Field,
    v_min: f64,
    v_max: f64,
    epoch_us: u64,
    /// Probability of dwelling (speed exactly zero) for an epoch instead
    /// of walking it. Zero draws nothing from the RNG, so plain walks are
    /// stream-compatible with pre-dwell seeds.
    pause_prob: f64,
    states: Vec<WalkState>,
    rng: RngStream,
}

impl RandomWalk {
    /// Create a walk for `n` nodes, speeds uniform in `[v_min, v_max]`,
    /// drawing a new heading every `epoch_secs` seconds.
    ///
    /// # Panics
    /// Panics unless `0 <= v_min <= v_max`, `v_max > 0`, `epoch_secs > 0`.
    pub fn new(
        n: usize,
        field: Field,
        v_min: f64,
        v_max: f64,
        epoch_secs: f64,
        rng: RngStream,
    ) -> Self {
        Self::new_with_dwell(n, field, v_min, v_max, epoch_secs, 0.0, rng)
    }

    /// Create a walk-and-dwell mixture: at each epoch boundary a node
    /// pauses for the epoch with probability `pause_prob` (exact zero
    /// velocity — it will not be reported as a mover), otherwise walks it
    /// as usual. `pause_prob = 0` is exactly [`RandomWalk::new`].
    ///
    /// # Panics
    /// Panics unless `0 <= v_min <= v_max`, `v_max > 0`, `epoch_secs > 0`,
    /// and `pause_prob ∈ [0, 1]`.
    pub fn new_with_dwell(
        n: usize,
        field: Field,
        v_min: f64,
        v_max: f64,
        epoch_secs: f64,
        pause_prob: f64,
        mut rng: RngStream,
    ) -> Self {
        assert!(
            (0.0..=v_max).contains(&v_min) && v_max > 0.0,
            "need 0 <= v_min <= v_max and v_max > 0, got [{v_min}, {v_max}]"
        );
        assert!(epoch_secs > 0.0, "epoch must be positive");
        assert!(
            (0.0..=1.0).contains(&pause_prob),
            "pause_prob {pause_prob} outside [0, 1]"
        );
        let epoch_us = (epoch_secs * 1e6).round() as u64;
        assert!(epoch_us > 0, "epoch must be at least one microsecond");
        let states = (0..n)
            .map(|_| Self::fresh(v_min, v_max, epoch_us, pause_prob, &mut rng))
            .collect();
        RandomWalk {
            field,
            v_min,
            v_max,
            epoch_us,
            pause_prob,
            states,
            rng,
        }
    }

    fn fresh(
        v_min: f64,
        v_max: f64,
        epoch_us: u64,
        pause_prob: f64,
        rng: &mut RngStream,
    ) -> WalkState {
        // Guarded draw: plain walks (pause_prob == 0) must consume exactly
        // the RNG values they always did.
        let dwell = pause_prob > 0.0 && rng.next_f64() < pause_prob;
        let mut st = WalkState {
            theta: rng.range_f64(0.0, std::f64::consts::TAU),
            speed: rng.range_f64(v_min, v_max.max(v_min + f64::EPSILON)),
            remaining_us: epoch_us,
        };
        if dwell {
            st.speed = 0.0;
        }
        st
    }

    /// Move one node by `dt_us` microseconds, reflecting at boundaries.
    fn advance_node(&mut self, pos: &mut Point2, idx: usize, mut dt_us: u64) {
        loop {
            if dt_us == 0 {
                return;
            }
            let st = self.states[idx];
            let step_us = st.remaining_us.min(dt_us);
            let step_secs = step_us as f64 / 1_000_000.0;
            let mut x = pos.x + st.theta.cos() * st.speed * step_secs;
            let mut y = pos.y + st.theta.sin() * st.speed * step_secs;
            let mut theta = st.theta;
            // Reflect off each wall (repeat to handle corner double-bounce).
            for _ in 0..4 {
                let mut bounced = false;
                if x < 0.0 {
                    x = -x;
                    theta = std::f64::consts::PI - theta;
                    bounced = true;
                } else if x > self.field.width() {
                    x = 2.0 * self.field.width() - x;
                    theta = std::f64::consts::PI - theta;
                    bounced = true;
                }
                if y < 0.0 {
                    y = -y;
                    theta = -theta;
                    bounced = true;
                } else if y > self.field.height() {
                    y = 2.0 * self.field.height() - y;
                    theta = -theta;
                    bounced = true;
                }
                if !bounced {
                    break;
                }
            }
            *pos = self.field.clamp(Point2::new(x, y));
            dt_us -= step_us;
            if st.remaining_us == step_us {
                // epoch expired within this advance
                self.states[idx] = Self::fresh(
                    self.v_min,
                    self.v_max,
                    self.epoch_us,
                    self.pause_prob,
                    &mut self.rng,
                );
            } else {
                self.states[idx].theta = theta;
                self.states[idx].remaining_us = st.remaining_us - step_us;
            }
        }
    }
}

impl RandomWalk {
    /// The shared advance loop: move every node, calling `report` with the
    /// index of each node whose position actually changed.
    #[allow(clippy::needless_range_loop)] // index addresses parallel state arrays
    fn advance_inner(
        &mut self,
        positions: &mut [Point2],
        dt: SimDuration,
        mut report: impl FnMut(usize),
    ) {
        assert!(
            positions.len() == self.states.len(),
            "RandomWalk built for {} nodes, got {} positions",
            self.states.len(),
            positions.len()
        );
        let dt_us = dt.ticks();
        for i in 0..positions.len() {
            let before = positions[i];
            let mut p = before;
            self.advance_node(&mut p, i, dt_us);
            positions[i] = p;
            if p != before {
                report(i);
            }
        }
    }
}

impl MobilityModel for RandomWalk {
    fn advance(&mut self, positions: &mut [Point2], dt: SimDuration) {
        self.advance_inner(positions, dt, |_| {});
    }

    fn advance_reporting(
        &mut self,
        positions: &mut [Point2],
        dt: SimDuration,
        movers: &mut Vec<NodeId>,
    ) {
        movers.clear();
        self.advance_inner(positions, dt, |i| movers.push(NodeId::from(i)));
    }

    fn name(&self) -> &'static str {
        "random-walk"
    }

    fn quiescent_for(&self) -> Option<SimDuration> {
        // Quiescent iff every node dwells: the earliest anything can move
        // (or draw randomness) is the earliest epoch expiry.
        let mut min_us = u64::MAX;
        for st in &self.states {
            if st.speed != 0.0 {
                return None;
            }
            min_us = min_us.min(st.remaining_us);
        }
        if min_us == u64::MAX {
            return None; // no nodes: nothing to skip over
        }
        Some(SimDuration::from_ticks(min_us))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rng(seed: u64) -> RngStream {
        RngStream::seed_from_u64(seed)
    }

    #[test]
    fn stays_in_field() {
        let f = Field::square(100.0);
        let mut m = RandomWalk::new(30, f, 1.0, 20.0, 2.0, rng(1));
        let mut pos = vec![Point2::new(50.0, 50.0); 30];
        for _ in 0..500 {
            m.advance(&mut pos, SimDuration::from_millis(100));
            assert!(pos.iter().all(|&p| f.contains(p)), "escaped the field");
        }
    }

    #[test]
    fn reflection_near_edges() {
        // Start right next to the wall with big steps: must stay inside.
        let f = Field::square(50.0);
        let mut m = RandomWalk::new(10, f, 10.0, 30.0, 5.0, rng(2));
        let mut pos = vec![Point2::new(0.5, 49.5); 10];
        for _ in 0..100 {
            m.advance(&mut pos, SimDuration::from_millis(500));
            assert!(pos.iter().all(|&p| f.contains(p)));
        }
    }

    #[test]
    fn moves_and_changes_direction() {
        let f = Field::square(1000.0);
        let mut m = RandomWalk::new(1, f, 5.0, 5.0, 1.0, rng(3));
        let mut pos = vec![Point2::new(500.0, 500.0)];
        let p0 = pos[0];
        m.advance(&mut pos, SimDuration::from_millis(500));
        let p1 = pos[0];
        assert!(p0.dist(p1) > 0.0);
        // After many epochs the trajectory should turn: displacement over 20s
        // must be well below speed * time for a straight line.
        for _ in 0..40 {
            m.advance(&mut pos, SimDuration::from_millis(500));
        }
        let total = p0.dist(pos[0]);
        assert!(total < 5.0 * 20.5, "should not exceed straight-line bound");
    }

    #[test]
    fn deterministic() {
        let run = |seed| {
            let f = Field::square(200.0);
            let mut m = RandomWalk::new(5, f, 1.0, 10.0, 1.0, rng(seed));
            let mut pos = vec![Point2::new(100.0, 100.0); 5];
            for _ in 0..20 {
                m.advance(&mut pos, SimDuration::from_millis(250));
            }
            pos
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    #[should_panic(expected = "epoch must be positive")]
    fn zero_epoch_panics() {
        RandomWalk::new(1, Field::square(10.0), 1.0, 2.0, 0.0, rng(0));
    }

    #[test]
    fn reporting_matches_actual_position_changes() {
        // A walk with v_min > 0 never pauses: every node moves every tick,
        // and the report must say exactly that (and agree with a position
        // diff).
        let f = Field::square(200.0);
        let mut m = RandomWalk::new(12, f, 1.0, 10.0, 2.0, rng(6));
        let mut pos = vec![Point2::new(100.0, 100.0); 12];
        let mut movers = Vec::new();
        for _ in 0..20 {
            let before = pos.clone();
            m.advance_reporting(&mut pos, SimDuration::from_millis(200), &mut movers);
            let expect: Vec<NodeId> = (0..12)
                .filter(|&i| pos[i] != before[i])
                .map(NodeId::from)
                .collect();
            assert_eq!(movers, expect);
            assert_eq!(movers.len(), 12, "no pauses: everyone moves");
        }
    }

    #[test]
    fn dwell_keeps_most_nodes_exactly_still() {
        let f = Field::square(500.0);
        let n = 400;
        let mut m = RandomWalk::new_with_dwell(n, f, 0.5, 2.0, 10.0, 0.95, rng(21));
        let mut pos = vec![Point2::new(250.0, 250.0); n];
        let mut movers = Vec::new();
        let mut mover_ticks = 0usize;
        let ticks = 50;
        for _ in 0..ticks {
            m.advance_reporting(&mut pos, SimDuration::from_millis(100), &mut movers);
            mover_ticks += movers.len();
            assert!(pos.iter().all(|&p| f.contains(p)));
        }
        let mean_movers = mover_ticks as f64 / ticks as f64;
        // ~5% walking in steady state; allow generous slack either way,
        // but demand that the overwhelming majority dwells
        assert!(
            mean_movers < 0.15 * n as f64,
            "dwell walk reported {mean_movers:.1} movers/tick out of {n}"
        );
        assert!(mean_movers > 0.0, "someone must walk");
    }

    #[test]
    fn zero_dwell_is_stream_compatible_with_plain_walk() {
        // pause_prob = 0 must draw exactly the RNG values `new` draws, so
        // existing seeds reproduce bit-identical trajectories.
        let f = Field::square(200.0);
        let run = |dwell: bool| {
            let mut m = if dwell {
                RandomWalk::new_with_dwell(6, f, 1.0, 5.0, 2.0, 0.0, rng(13))
            } else {
                RandomWalk::new(6, f, 1.0, 5.0, 2.0, rng(13))
            };
            let mut pos = vec![Point2::new(100.0, 100.0); 6];
            for _ in 0..30 {
                m.advance(&mut pos, SimDuration::from_millis(400));
            }
            pos
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn reporting_and_plain_advance_trace_identically() {
        let f = Field::square(150.0);
        let mut a = RandomWalk::new(8, f, 0.5, 8.0, 1.0, rng(10));
        let mut b = RandomWalk::new(8, f, 0.5, 8.0, 1.0, rng(10));
        let mut pa = vec![Point2::new(75.0, 75.0); 8];
        let mut pb = pa.clone();
        let mut movers = Vec::new();
        for _ in 0..25 {
            a.advance(&mut pa, SimDuration::from_millis(300));
            b.advance_reporting(&mut pb, SimDuration::from_millis(300), &mut movers);
            assert_eq!(pa, pb, "reporting variant must not disturb the trace");
        }
    }

    proptest! {
        #[test]
        fn prop_contained(seed in any::<u64>(), dt_ms in 50u64..3000) {
            let f = Field::new(300.0, 150.0);
            let mut m = RandomWalk::new(6, f, 0.5, 25.0, 1.5, rng(seed));
            let mut pos = vec![Point2::new(150.0, 75.0); 6];
            for _ in 0..20 {
                m.advance(&mut pos, SimDuration::from_millis(dt_ms));
                prop_assert!(pos.iter().all(|&p| f.contains(p)));
            }
        }
    }
}

//! Regional composition of mobility models.
//!
//! [`RegionalMobility`] partitions the node id space into contiguous
//! *regions*, each owned by an independent [`MobilityModel`] over its own
//! position sub-slice. The composite is itself a `MobilityModel`, so the
//! tick-synchronous pipeline drives it unchanged; the point of the split is
//! the *event-driven* driver, which advances each region on its own
//! schedule: a region whose model reports a quiescent window
//! ([`MobilityModel::quiescent_for`]) sleeps until the window expires
//! instead of being woken every tick. Because each region owns its RNG
//! stream and a disjoint slice of positions, per-region advances commute —
//! waking regions in any order at the same instant produces the same state
//! — which is what keeps the event schedule bit-identical to the tick
//! reference.

use crate::model::MobilityModel;
use net_topology::geometry::Point2;
use net_topology::node::NodeId;
use sim_core::time::SimDuration;
use std::ops::Range;

/// A partition of the node id space into independently-scheduled regions.
#[derive(Default)]
pub struct RegionalMobility {
    /// Contiguous, gap-free spans: region `r` owns `spans[r]` of the
    /// caller's position slice, with `spans[r].end == spans[r+1].start`.
    spans: Vec<Range<usize>>,
    models: Vec<Box<dyn MobilityModel>>,
    /// Region-local mover report, translated to global ids on the way out.
    scratch: Vec<NodeId>,
}

impl RegionalMobility {
    /// An empty partition; add regions with
    /// [`RegionalMobility::push_region`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a region of `len` nodes governed by `model`. Regions stack:
    /// the new region owns the next `len` node ids after the previous one.
    ///
    /// # Panics
    /// Panics if `len` is zero.
    pub fn push_region(&mut self, len: usize, model: Box<dyn MobilityModel>) {
        assert!(len > 0, "a region must own at least one node");
        let start = self.node_count();
        self.spans.push(start..start + len);
        self.models.push(model);
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.models.len()
    }

    /// Total number of nodes across all regions.
    pub fn node_count(&self) -> usize {
        self.spans.last().map_or(0, |s| s.end)
    }

    /// The global id range region `r` owns.
    pub fn region_span(&self, r: usize) -> Range<usize> {
        self.spans[r].clone()
    }

    /// Whether region `r`'s model is static (never needs waking).
    pub fn region_is_static(&self, r: usize) -> bool {
        self.models[r].is_static()
    }

    /// Region `r`'s quiescent window, if any (see
    /// [`MobilityModel::quiescent_for`]).
    pub fn region_quiescent_for(&self, r: usize) -> Option<SimDuration> {
        self.models[r].quiescent_for()
    }

    /// Advance only region `r` by `dt`, *appending* its movers to `movers`
    /// as global node ids (ascending within the region). `positions` is the
    /// full global slice; the region's sub-slice is carved out internally.
    pub fn advance_region_reporting(
        &mut self,
        r: usize,
        positions: &mut [Point2],
        dt: SimDuration,
        movers: &mut Vec<NodeId>,
    ) {
        let span = self.spans[r].clone();
        assert!(
            span.end <= positions.len(),
            "region {r} spans {span:?} but only {} positions given",
            positions.len()
        );
        let RegionalMobility {
            models, scratch, ..
        } = self;
        models[r].advance_reporting(&mut positions[span.clone()], dt, scratch);
        movers.extend(
            scratch
                .iter()
                .map(|id| NodeId::from(span.start + id.index())),
        );
    }
}

impl MobilityModel for RegionalMobility {
    fn advance(&mut self, positions: &mut [Point2], dt: SimDuration) {
        assert_eq!(
            positions.len(),
            self.node_count(),
            "RegionalMobility built for {} nodes",
            self.node_count()
        );
        for (span, model) in self.spans.iter().zip(self.models.iter_mut()) {
            model.advance(&mut positions[span.clone()], dt);
        }
    }

    fn advance_reporting(
        &mut self,
        positions: &mut [Point2],
        dt: SimDuration,
        movers: &mut Vec<NodeId>,
    ) {
        assert_eq!(
            positions.len(),
            self.node_count(),
            "RegionalMobility built for {} nodes",
            self.node_count()
        );
        movers.clear();
        // Regions ascend and each reports ascending local ids, so the
        // concatenated global report is ascending too.
        for r in 0..self.models.len() {
            let span = self.spans[r].clone();
            let RegionalMobility {
                models, scratch, ..
            } = self;
            models[r].advance_reporting(&mut positions[span.clone()], dt, scratch);
            movers.extend(
                scratch
                    .iter()
                    .map(|id| NodeId::from(span.start + id.index())),
            );
        }
    }

    fn name(&self) -> &'static str {
        "regional"
    }

    fn is_static(&self) -> bool {
        self.models.iter().all(|m| m.is_static())
    }

    fn quiescent_for(&self) -> Option<SimDuration> {
        // Still only if every non-static region is still; the composite
        // window is the tightest one.
        let mut min: Option<SimDuration> = None;
        for m in &self.models {
            if m.is_static() {
                continue;
            }
            let q = m.quiescent_for()?;
            min = Some(match min {
                None => q,
                Some(cur) if q < cur => q,
                Some(cur) => cur,
            });
        }
        min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statics::StaticModel;
    use crate::walk::RandomWalk;
    use net_topology::geometry::Field;
    use sim_core::rng::RngStream;

    fn walk(n: usize, seed: u64) -> RandomWalk {
        RandomWalk::new(
            n,
            Field::square(200.0),
            1.0,
            5.0,
            2.0,
            RngStream::seed_from_u64(seed),
        )
    }

    fn dwell_walk(n: usize, pause: f64, seed: u64) -> RandomWalk {
        RandomWalk::new_with_dwell(
            n,
            Field::square(200.0),
            1.0,
            5.0,
            2.0,
            pause,
            RngStream::seed_from_u64(seed),
        )
    }

    #[test]
    fn spans_stack_contiguously() {
        let mut m = RegionalMobility::new();
        m.push_region(3, Box::new(walk(3, 1)));
        m.push_region(5, Box::new(walk(5, 2)));
        assert_eq!(m.region_count(), 2);
        assert_eq!(m.node_count(), 8);
        assert_eq!(m.region_span(0), 0..3);
        assert_eq!(m.region_span(1), 3..8);
        assert_eq!(m.name(), "regional");
        assert!(!m.is_static());
    }

    #[test]
    fn composite_advance_matches_independent_models() {
        // Advancing the composite equals advancing each model on its own
        // sub-slice: the partition adds scheduling structure, not dynamics.
        let mut composite = RegionalMobility::new();
        composite.push_region(4, Box::new(walk(4, 10)));
        composite.push_region(6, Box::new(walk(6, 11)));
        let mut solo_a = walk(4, 10);
        let mut solo_b = walk(6, 11);
        let mut pos = vec![Point2::new(100.0, 100.0); 10];
        let mut pos_solo = pos.clone();
        let mut movers = Vec::new();
        for _ in 0..25 {
            composite.advance_reporting(&mut pos, SimDuration::from_millis(300), &mut movers);
            solo_a.advance(&mut pos_solo[0..4], SimDuration::from_millis(300));
            solo_b.advance(&mut pos_solo[4..10], SimDuration::from_millis(300));
            assert_eq!(pos, pos_solo);
            // everyone walks (v_min > 0), so the global report is 0..10
            let expect: Vec<NodeId> = (0..10usize).map(NodeId::from).collect();
            assert_eq!(movers, expect);
        }
    }

    #[test]
    fn per_region_advance_offsets_movers_to_global_ids() {
        let mut m = RegionalMobility::new();
        m.push_region(3, Box::new(StaticModel));
        m.push_region(4, Box::new(walk(4, 7)));
        let mut pos = vec![Point2::new(50.0, 50.0); 7];
        let mut movers = vec![NodeId::from(0usize)]; // appended to, not cleared
        m.advance_region_reporting(1, &mut pos, SimDuration::from_millis(500), &mut movers);
        assert_eq!(movers[0], NodeId::from(0usize));
        assert!(movers.len() > 1, "walkers must report");
        assert!(movers[1..].iter().all(|id| id.index() >= 3));
        let mut sorted = movers[1..].to_vec();
        sorted.sort();
        assert_eq!(&movers[1..], &sorted[..], "region report must ascend");
    }

    #[test]
    fn static_and_quiescence_queries_are_per_region() {
        let mut m = RegionalMobility::new();
        m.push_region(2, Box::new(StaticModel));
        // pause_prob = 1: every node dwells from the first epoch
        m.push_region(3, Box::new(dwell_walk(3, 1.0, 5)));
        assert!(m.region_is_static(0));
        assert!(!m.region_is_static(1));
        assert_eq!(m.region_quiescent_for(1), Some(SimDuration::from_secs(2)));
        // composite window skips the static region
        assert_eq!(m.quiescent_for(), Some(SimDuration::from_secs(2)));
        // an all-static composite is static
        let mut s = RegionalMobility::new();
        s.push_region(1, Box::new(StaticModel));
        assert!(s.is_static());
    }

    #[test]
    fn walking_region_voids_the_composite_window() {
        let mut m = RegionalMobility::new();
        m.push_region(3, Box::new(dwell_walk(3, 1.0, 5)));
        m.push_region(3, Box::new(walk(3, 6))); // v_min > 0: always walking
        assert_eq!(m.region_quiescent_for(1), None);
        assert_eq!(m.quiescent_for(), None);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_region_panics() {
        RegionalMobility::new().push_region(0, Box::new(StaticModel));
    }
}

//! The mobility-model abstraction.

use net_topology::geometry::Point2;
use net_topology::node::NodeId;
use sim_core::time::SimDuration;

/// A mobility model advances node positions through virtual time.
///
/// Implementations own all per-node kinematic state (headings, waypoints,
/// pause timers, RNG streams); the *positions themselves* live in a
/// caller-owned slice so the connectivity layer can read them without
/// crossing the trait boundary.
pub trait MobilityModel {
    /// Advance every node by `dt`, updating `positions` in place.
    ///
    /// Implementations must keep every position inside the field they were
    /// configured with, and must behave identically for the same sequence of
    /// calls (determinism).
    fn advance(&mut self, positions: &mut [Point2], dt: SimDuration);

    /// Advance every node by `dt` and report which nodes actually changed
    /// position. `movers` is cleared first; afterwards it holds, in
    /// ascending id order, a *superset* of the nodes whose `positions`
    /// entry differs from before the call (precise implementations report
    /// exactly those nodes).
    ///
    /// The default implementation calls [`MobilityModel::advance`] and
    /// reports every node — always sound, never precise. The models in
    /// this crate override it with exact reports, which is what lets the
    /// downstream topology pipeline (grid re-bucketing, CSR adjacency
    /// patching) do per-tick work proportional to actual motion instead
    /// of N.
    fn advance_reporting(
        &mut self,
        positions: &mut [Point2],
        dt: SimDuration,
        movers: &mut Vec<NodeId>,
    ) {
        self.advance(positions, dt);
        movers.clear();
        movers.extend(NodeId::all(positions.len()));
    }

    /// Short model name for reports (e.g. `"random-waypoint"`).
    fn name(&self) -> &'static str;

    /// Is this model actually static? Lets simulations skip connectivity
    /// rebuilds. Defaults to `false`.
    fn is_static(&self) -> bool {
        false
    }

    /// How long the model is *exactly still* from now, if it is.
    ///
    /// `Some(d)` is a hard determinism contract the event-driven driver
    /// relies on to skip wake-ups:
    ///
    /// * no position changes and no internal randomness is consumed until
    ///   at least `d` of virtual time has elapsed, and
    /// * advancing by steps `s₁…sₖ` (sum `S`) produces bit-identical
    ///   positions, internal state, and mover reports as one `advance(S)`
    ///   whenever every intermediate boundary `s₁+…+sᵢ` (`i < k`) lies
    ///   strictly before `d` — i.e. any subdivision whose interior stays
    ///   inside the still window is equivalent to the single big step.
    ///
    /// `None` means "assume motion is possible immediately" and is always
    /// sound; it is the default.
    fn quiescent_for(&self) -> Option<SimDuration> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl MobilityModel for Nop {
        fn advance(&mut self, _positions: &mut [Point2], _dt: SimDuration) {}
        fn name(&self) -> &'static str {
            "nop"
        }
    }

    #[test]
    fn default_is_not_static() {
        assert!(!Nop.is_static());
        assert_eq!(Nop.name(), "nop");
    }

    #[test]
    fn trait_objects_work() {
        let mut m: Box<dyn MobilityModel> = Box::new(Nop);
        let mut pos = vec![Point2::new(1.0, 2.0)];
        m.advance(&mut pos, SimDuration::from_secs(1));
        assert_eq!(pos[0], Point2::new(1.0, 2.0));
    }

    #[test]
    fn default_reporting_reports_every_node() {
        // The default is a sound over-approximation: all nodes, sorted.
        let mut m = Nop;
        let mut pos = vec![Point2::ORIGIN; 4];
        let mut movers = vec![NodeId::new(99)]; // stale content must be cleared
        m.advance_reporting(&mut pos, SimDuration::from_secs(1), &mut movers);
        let expect: Vec<NodeId> = NodeId::all(4).collect();
        assert_eq!(movers, expect);
    }
}

//! Random waypoint (RWP) — the paper's mobility model.
//!
//! Each node independently repeats: choose a destination uniformly in the
//! field, travel toward it in a straight line at a speed drawn uniformly
//! from `[v_min, v_max]`, pause for `pause` seconds on arrival. Footnote 1
//! of the paper notes RWP's known clustering artifacts; the other models in
//! this crate exist to study exactly that sensitivity.

use crate::model::MobilityModel;
use net_topology::geometry::{Field, Point2};
use net_topology::node::NodeId;
use sim_core::rng::RngStream;
use sim_core::time::SimDuration;

/// Per-node kinematic state.
#[derive(Clone, Copy, Debug)]
enum Leg {
    /// Paused at the current position for `remaining` more seconds.
    Paused { remaining: f64 },
    /// Moving toward `dest` at `speed` m/s.
    Moving { dest: Point2, speed: f64 },
}

/// The random waypoint model.
pub struct RandomWaypoint {
    field: Field,
    v_min: f64,
    v_max: f64,
    pause_secs: f64,
    legs: Vec<Leg>,
    rng: RngStream,
}

impl RandomWaypoint {
    /// Create RWP for `n` nodes over `field`, speeds uniform in
    /// `[v_min, v_max]` m/s, `pause_secs` pause at each waypoint.
    ///
    /// # Panics
    /// Panics unless `0 <= v_min <= v_max`, `v_max > 0`, `pause_secs >= 0`.
    pub fn new(
        n: usize,
        field: Field,
        v_min: f64,
        v_max: f64,
        pause_secs: f64,
        mut rng: RngStream,
    ) -> Self {
        assert!(
            (0.0..=v_max).contains(&v_min) && v_max > 0.0,
            "need 0 <= v_min <= v_max and v_max > 0, got [{v_min}, {v_max}]"
        );
        assert!(pause_secs >= 0.0, "negative pause");
        let legs = (0..n)
            .map(|_| Self::fresh_leg(field, v_min, v_max, &mut rng))
            .collect();
        RandomWaypoint {
            field,
            v_min,
            v_max,
            pause_secs,
            legs,
            rng,
        }
    }

    fn fresh_leg(field: Field, v_min: f64, v_max: f64, rng: &mut RngStream) -> Leg {
        Leg::Moving {
            dest: Point2::new(
                rng.range_f64(0.0, field.width()),
                rng.range_f64(0.0, field.height()),
            ),
            speed: rng.range_f64(v_min, v_max.max(v_min + f64::EPSILON)),
        }
    }

    /// Advance a single node by `dt_secs`, possibly crossing several
    /// waypoint/pause transitions.
    fn advance_node(&mut self, pos: &mut Point2, idx: usize, mut dt_secs: f64) {
        // Bounded iterations: each loop consumes pause or travel time; with
        // pathological parameters (zero pause + tiny legs) cap the work.
        for _ in 0..64 {
            if dt_secs <= 0.0 {
                return;
            }
            match self.legs[idx] {
                Leg::Paused { remaining } => {
                    if remaining > dt_secs {
                        self.legs[idx] = Leg::Paused {
                            remaining: remaining - dt_secs,
                        };
                        return;
                    }
                    dt_secs -= remaining;
                    self.legs[idx] =
                        Self::fresh_leg(self.field, self.v_min, self.v_max, &mut self.rng);
                }
                Leg::Moving { dest, speed } => {
                    let distance = pos.dist(dest);
                    let travel = speed * dt_secs;
                    if travel < distance {
                        // `distance` is already in hand, so interpolate
                        // directly instead of `step_toward` (which would
                        // redo the sqrt); `travel < distance` guarantees
                        // step_toward would take the same lerp branch with
                        // the same ratio, so the motion is bit-identical.
                        *pos = pos.lerp(dest, travel / distance);
                        return;
                    }
                    // Arrive, consume the corresponding time, then pause.
                    *pos = dest;
                    dt_secs -= if speed > 0.0 { distance / speed } else { 0.0 };
                    self.legs[idx] = if self.pause_secs > 0.0 {
                        Leg::Paused {
                            remaining: self.pause_secs,
                        }
                    } else {
                        Self::fresh_leg(self.field, self.v_min, self.v_max, &mut self.rng)
                    };
                }
            }
        }
    }
}

impl RandomWaypoint {
    /// The shared advance loop: move every node, calling `report` with the
    /// index of each node whose position actually changed (paused nodes do
    /// not move and are not reported).
    #[allow(clippy::needless_range_loop)] // index addresses parallel state arrays
    fn advance_inner(
        &mut self,
        positions: &mut [Point2],
        dt: SimDuration,
        mut report: impl FnMut(usize),
    ) {
        let dt_secs = dt.as_secs_f64();
        assert!(
            positions.len() == self.legs.len(),
            "RandomWaypoint built for {} nodes, got {} positions",
            self.legs.len(),
            positions.len()
        );
        for i in 0..positions.len() {
            let before = positions[i];
            let mut p = before;
            self.advance_node(&mut p, i, dt_secs);
            let after = self.field.clamp(p);
            positions[i] = after;
            if after != before {
                report(i);
            }
        }
    }
}

impl MobilityModel for RandomWaypoint {
    fn advance(&mut self, positions: &mut [Point2], dt: SimDuration) {
        self.advance_inner(positions, dt, |_| {});
    }

    fn advance_reporting(
        &mut self,
        positions: &mut [Point2],
        dt: SimDuration,
        movers: &mut Vec<NodeId>,
    ) {
        movers.clear();
        self.advance_inner(positions, dt, |i| movers.push(NodeId::from(i)));
    }

    fn name(&self) -> &'static str {
        "random-waypoint"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn field() -> Field {
        Field::square(710.0)
    }

    fn rng(seed: u64) -> RngStream {
        RngStream::seed_from_u64(seed)
    }

    #[test]
    fn positions_stay_in_field() {
        let mut m = RandomWaypoint::new(50, field(), 1.0, 19.0, 0.0, rng(1));
        let mut pos = vec![Point2::new(355.0, 355.0); 50];
        for _ in 0..200 {
            m.advance(&mut pos, SimDuration::from_millis(100));
            assert!(pos.iter().all(|&p| field().contains(p)));
        }
    }

    #[test]
    fn nodes_actually_move() {
        let mut m = RandomWaypoint::new(10, field(), 5.0, 10.0, 0.0, rng(2));
        let start = vec![Point2::new(100.0, 100.0); 10];
        let mut pos = start.clone();
        m.advance(&mut pos, SimDuration::from_secs(5));
        let moved = pos.iter().zip(&start).filter(|(a, b)| a != b).count();
        assert_eq!(moved, 10, "every node should move with zero pause");
    }

    #[test]
    fn speed_bound_respected() {
        let v_max = 10.0;
        let mut m = RandomWaypoint::new(20, field(), 1.0, v_max, 0.0, rng(3));
        let mut pos = vec![Point2::new(300.0, 300.0); 20];
        let prev = pos.clone();
        let dt = 0.5;
        m.advance(&mut pos, SimDuration::from_secs_f64(dt));
        for (a, b) in prev.iter().zip(&pos) {
            // A node may cross a waypoint and change direction within dt, but
            // total displacement can never exceed v_max * dt.
            assert!(a.dist(*b) <= v_max * dt + 1e-9);
        }
    }

    #[test]
    fn pause_holds_position_after_arrival() {
        // One node, destination will be reached quickly, then a long pause.
        let mut m = RandomWaypoint::new(1, Field::square(10.0), 5.0, 5.0, 1000.0, rng(4));
        let mut pos = vec![Point2::new(5.0, 5.0)];
        // Long advance: certainly arrives and starts pausing (max travel
        // within a 10x10 field is ~14.2m -> under 3s at 5 m/s).
        m.advance(&mut pos, SimDuration::from_secs(10));
        let arrived = pos[0];
        m.advance(&mut pos, SimDuration::from_secs(10));
        assert_eq!(pos[0], arrived, "paused node must not move");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut m = RandomWaypoint::new(10, field(), 1.0, 19.0, 0.5, rng(seed));
            let mut pos = vec![Point2::new(100.0, 200.0); 10];
            for _ in 0..50 {
                m.advance(&mut pos, SimDuration::from_millis(100));
            }
            pos
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[should_panic(expected = "v_min <= v_max")]
    fn invalid_speed_range_panics() {
        RandomWaypoint::new(1, field(), 5.0, 1.0, 0.0, rng(0));
    }

    #[test]
    #[should_panic(expected = "built for")]
    fn wrong_position_count_panics() {
        let mut m = RandomWaypoint::new(3, field(), 1.0, 2.0, 0.0, rng(0));
        let mut pos = vec![Point2::ORIGIN; 2];
        m.advance(&mut pos, SimDuration::from_secs(1));
    }

    #[test]
    fn zero_dt_is_identity() {
        let mut m = RandomWaypoint::new(5, field(), 1.0, 19.0, 0.0, rng(5));
        let mut pos = vec![Point2::new(10.0, 10.0); 5];
        let before = pos.clone();
        m.advance(&mut pos, SimDuration::ZERO);
        assert_eq!(pos, before);
    }

    #[test]
    fn paused_nodes_are_not_reported_as_movers() {
        // One node arrives quickly, then pauses for a long time: during the
        // pause the report must be empty.
        let mut m = RandomWaypoint::new(1, Field::square(10.0), 5.0, 5.0, 1000.0, rng(4));
        let mut pos = vec![Point2::new(5.0, 5.0)];
        let mut movers = Vec::new();
        m.advance_reporting(&mut pos, SimDuration::from_secs(10), &mut movers);
        assert_eq!(movers, vec![NodeId::new(0)], "travel leg must report");
        m.advance_reporting(&mut pos, SimDuration::from_secs(10), &mut movers);
        assert!(movers.is_empty(), "paused node must not be reported");
    }

    #[test]
    fn reporting_matches_position_diff() {
        let mut m = RandomWaypoint::new(15, field(), 1.0, 12.0, 0.3, rng(8));
        let mut pos = vec![Point2::new(300.0, 300.0); 15];
        let mut movers = Vec::new();
        for _ in 0..40 {
            let before = pos.clone();
            m.advance_reporting(&mut pos, SimDuration::from_millis(250), &mut movers);
            let expect: Vec<NodeId> = (0..15)
                .filter(|&i| pos[i] != before[i])
                .map(NodeId::from)
                .collect();
            assert_eq!(movers, expect);
        }
    }

    #[test]
    fn name_and_static_flag() {
        let m = RandomWaypoint::new(1, field(), 1.0, 2.0, 0.0, rng(0));
        assert_eq!(m.name(), "random-waypoint");
        assert!(!m.is_static());
    }

    proptest! {
        /// Containment + speed bound hold for arbitrary seeds and steps.
        #[test]
        fn prop_contained_and_speed_bounded(
            seed in any::<u64>(),
            steps in 1usize..30,
            dt_ms in 10u64..2000,
        ) {
            let f = Field::square(200.0);
            let mut m = RandomWaypoint::new(8, f, 1.0, 15.0, 0.2, rng(seed));
            let mut pos = vec![Point2::new(100.0, 100.0); 8];
            for _ in 0..steps {
                let before = pos.clone();
                m.advance(&mut pos, SimDuration::from_millis(dt_ms));
                let dt = dt_ms as f64 / 1000.0;
                for (a, b) in before.iter().zip(&pos) {
                    prop_assert!(f.contains(*b));
                    prop_assert!(a.dist(*b) <= 15.0 * dt + 1e-6);
                }
            }
        }
    }
}

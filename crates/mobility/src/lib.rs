//! # mobility — node mobility models
//!
//! The paper's evaluation uses the **random waypoint** model (§IV). Its
//! conclusion lists "various scenarios of mobility patterns" as future work,
//! so this crate ships a small family behind one trait:
//!
//! * [`waypoint::RandomWaypoint`] — pick a uniform destination, travel at a
//!   uniform speed, pause, repeat (the paper's model);
//! * [`walk::RandomWalk`] — heading-based motion with periodic direction
//!   changes and boundary reflection;
//! * [`group::GroupMobility`] — reference-point group mobility: group
//!   leaders do random waypoint, members jitter around their leader;
//! * [`statics::StaticModel`] — no motion (static sensor fields, §I).
//!
//! Models mutate a caller-owned position vector via
//! [`model::MobilityModel::advance`]; the simulation loop calls `advance`
//! once per mobility tick and then rebuilds connectivity.

#![warn(missing_docs)]
pub mod group;
pub mod model;
pub mod regional;
pub mod statics;
pub mod walk;
pub mod waypoint;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::group::GroupMobility;
    pub use crate::model::MobilityModel;
    pub use crate::regional::RegionalMobility;
    pub use crate::walk::RandomWalk;
    pub use crate::waypoint::RandomWaypoint;
}

pub use group::GroupMobility;
pub use model::MobilityModel;
pub use regional::RegionalMobility;
pub use statics::StaticModel;
pub use walk::RandomWalk;
pub use waypoint::RandomWaypoint;

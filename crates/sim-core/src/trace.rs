//! Bounded simulation tracing.
//!
//! A [`Trace`] is a ring buffer of timestamped, categorized records that
//! protocol code can emit while running under the engine. Traces are for
//! *debugging and inspection* — they are disabled by default (a disabled
//! trace is a no-op with no allocation per event), never affect protocol
//! behavior, and keep only the most recent `capacity` records.
//!
//! ```
//! use sim_core::trace::{Trace, TraceCategory};
//! use sim_core::time::SimTime;
//!
//! let mut trace = Trace::bounded(128);
//! trace.emit(SimTime::from_secs(1), TraceCategory::Selection, "n3 accepts CSQ from n0");
//! assert_eq!(trace.len(), 1);
//! assert!(trace.records().next().unwrap().message.contains("accepts"));
//! ```

use crate::time::SimTime;
use std::collections::VecDeque;

/// Coarse category of a trace record, for filtering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceCategory {
    /// Contact selection (CSQ walks, accept/refuse decisions).
    Selection,
    /// Contact maintenance (validation, recovery, drops).
    Maintenance,
    /// Queries (DSQ forwarding, answers).
    Query,
    /// Mobility / topology changes.
    Topology,
    /// Anything else.
    Other,
}

/// One trace record.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Category for filtering.
    pub category: TraceCategory,
    /// Human-readable description.
    pub message: String,
}

/// A bounded (ring-buffer) or disabled trace sink.
#[derive(Debug)]
pub struct Trace {
    capacity: usize,
    records: VecDeque<TraceRecord>,
    /// Total records emitted (including evicted ones).
    emitted: u64,
}

impl Trace {
    /// A disabled trace: every emit is a no-op.
    pub fn disabled() -> Self {
        Trace {
            capacity: 0,
            records: VecDeque::new(),
            emitted: 0,
        }
    }

    /// A trace keeping the most recent `capacity` records.
    pub fn bounded(capacity: usize) -> Self {
        Trace {
            capacity,
            records: VecDeque::with_capacity(capacity.min(1024)),
            emitted: 0,
        }
    }

    /// Is this trace recording at all?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Emit a record (no-op when disabled). `message` is only materialized
    /// through `impl Into<String>`, so pass `&str` for cheap emits.
    pub fn emit(&mut self, at: SimTime, category: TraceCategory, message: impl Into<String>) {
        if self.capacity == 0 {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(TraceRecord {
            at,
            category,
            message: message.into(),
        });
        self.emitted += 1;
    }

    /// Records currently retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Retained records matching a category.
    pub fn by_category(&self, category: TraceCategory) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.category == category)
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total records ever emitted (including ones evicted by the ring).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Drop all retained records (the emitted counter survives).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Render retained records as one line each: `t=1.000s [Query] …`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format!("t={} [{:?}] {}\n", r.at, r.category, r.message));
        }
        out
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_is_noop() {
        let mut t = Trace::disabled();
        assert!(!t.is_enabled());
        t.emit(SimTime::ZERO, TraceCategory::Other, "ignored");
        assert!(t.is_empty());
        assert_eq!(t.emitted(), 0);
        assert_eq!(t.render(), "");
    }

    #[test]
    fn bounded_trace_keeps_latest() {
        let mut t = Trace::bounded(3);
        assert!(t.is_enabled());
        for i in 0..5 {
            t.emit(
                SimTime::from_secs(i),
                TraceCategory::Selection,
                format!("e{i}"),
            );
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.emitted(), 5);
        let msgs: Vec<&str> = t.records().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["e2", "e3", "e4"]);
    }

    #[test]
    fn category_filter() {
        let mut t = Trace::bounded(10);
        t.emit(SimTime::ZERO, TraceCategory::Query, "q1");
        t.emit(SimTime::ZERO, TraceCategory::Maintenance, "m1");
        t.emit(SimTime::ZERO, TraceCategory::Query, "q2");
        assert_eq!(t.by_category(TraceCategory::Query).count(), 2);
        assert_eq!(t.by_category(TraceCategory::Maintenance).count(), 1);
        assert_eq!(t.by_category(TraceCategory::Topology).count(), 0);
    }

    #[test]
    fn clear_keeps_emitted_count() {
        let mut t = Trace::bounded(4);
        t.emit(SimTime::ZERO, TraceCategory::Other, "x");
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.emitted(), 1);
    }

    #[test]
    fn render_format() {
        let mut t = Trace::bounded(4);
        t.emit(
            SimTime::from_millis(1500),
            TraceCategory::Topology,
            "link broke",
        );
        let rendered = t.render();
        assert!(rendered.contains("t=1.500s"));
        assert!(rendered.contains("[Topology]"));
        assert!(rendered.contains("link broke"));
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Trace::default().is_enabled());
    }
}

//! The pull-based simulation engine.
//!
//! [`Engine`] couples the [`EventQueue`] with a virtual clock. The driver
//! loop looks like:
//!
//! ```ignore
//! while let Some((t, ev)) = engine.next_event() {
//!     world.handle(t, ev, &mut engine); // may schedule more events
//! }
//! ```
//!
//! `next_event` advances the clock to the popped event's timestamp, so
//! `engine.now()` is always the time of the event being handled. A horizon
//! ([`Engine::set_horizon`]) lets simulations stop at a fixed virtual time
//! without draining the queue.

use crate::event::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Discrete-event engine: event queue + virtual clock + optional horizon.
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    horizon: SimTime,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// New engine at t = 0 with an unbounded horizon.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            horizon: SimTime::MAX,
            processed: 0,
        }
    }

    /// New engine that will not deliver events at or after `horizon`.
    pub fn with_horizon(horizon: SimTime) -> Self {
        let mut e = Self::new();
        e.horizon = horizon;
        e
    }

    /// Current virtual time (time of the most recently popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Set the stop time. Events scheduled at `t >= horizon` stay queued but
    /// are never delivered.
    pub fn set_horizon(&mut self, horizon: SimTime) {
        self.horizon = horizon;
    }

    /// The current stop time.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Schedule `event` at the absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current virtual time: scheduling into the
    /// past would silently corrupt causality.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "schedule_at into the past: at={at:?} < now={now:?}",
            now = self.now
        );
        self.queue.push(at, event);
    }

    /// Schedule `event` after a relative delay from `now()`.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Pop the next event (earliest first, FIFO on ties), advancing the
    /// clock to its timestamp. Returns `None` when the queue is exhausted or
    /// the next event lies at/after the horizon.
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        match self.queue.peek_time() {
            Some(t) if t < self.horizon => {
                let (t, ev) = self.queue.pop().expect("peek said non-empty");
                self.now = t;
                self.processed += 1;
                Some((t, ev))
            }
            _ => None,
        }
    }

    /// Number of pending (not yet delivered) events, including any beyond
    /// the horizon.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// True when no events are pending at all.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Drop every pending event (the clock is left unchanged).
    pub fn clear_pending(&mut self) {
        self.queue.clear();
    }

    /// Run the simulation to completion (or horizon) with a handler closure.
    ///
    /// This is a convenience wrapper over the pull loop for simulations whose
    /// whole state fits in one `world` value.
    pub fn run<W>(
        &mut self,
        world: &mut W,
        mut handler: impl FnMut(&mut Self, &mut W, SimTime, E),
    ) {
        while let Some((t, ev)) = self.next_event() {
            handler(self, world, t, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Clone, Copy)]
    enum Ev {
        Tick,
        Echo(u32),
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(4), Ev::Tick);
        e.schedule_at(SimTime::from_secs(2), Ev::Tick);
        assert_eq!(e.now(), SimTime::ZERO);
        let (t, _) = e.next_event().unwrap();
        assert_eq!(t, SimTime::from_secs(2));
        assert_eq!(e.now(), t);
        let (t, _) = e.next_event().unwrap();
        assert_eq!(t, SimTime::from_secs(4));
        assert_eq!(e.now(), t);
        assert!(e.next_event().is_none());
        assert_eq!(e.events_processed(), 2);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(1), Ev::Tick);
        e.next_event().unwrap();
        e.schedule_in(SimDuration::from_millis(500), Ev::Echo(7));
        let (t, ev) = e.next_event().unwrap();
        assert_eq!(t, SimTime::from_millis(1500));
        assert_eq!(ev, Ev::Echo(7));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(2), Ev::Tick);
        e.next_event().unwrap();
        e.schedule_at(SimTime::from_secs(1), Ev::Tick);
    }

    #[test]
    fn horizon_stops_delivery() {
        let mut e = Engine::with_horizon(SimTime::from_secs(5));
        e.schedule_at(SimTime::from_secs(3), Ev::Tick);
        e.schedule_at(SimTime::from_secs(5), Ev::Tick); // exactly at horizon: excluded
        e.schedule_at(SimTime::from_secs(9), Ev::Tick);
        assert!(e.next_event().is_some());
        assert!(e.next_event().is_none());
        assert_eq!(e.pending(), 2);
    }

    #[test]
    fn run_loop_processes_chain() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::ZERO, Ev::Echo(3));
        let mut sum = 0u32;
        e.run(&mut sum, |eng, acc, _t, ev| {
            if let Ev::Echo(n) = ev {
                *acc += n;
                if n > 1 {
                    eng.schedule_in(SimDuration::from_millis(1), Ev::Echo(n - 1));
                }
            }
        });
        assert_eq!(sum, 3 + 2 + 1);
        assert!(e.is_idle());
    }

    #[test]
    fn clear_pending_empties_queue() {
        let mut e = Engine::<Ev>::new();
        e.schedule_at(SimTime::from_secs(1), Ev::Tick);
        e.schedule_at(SimTime::from_secs(2), Ev::Tick);
        e.clear_pending();
        assert!(e.is_idle());
        assert!(e.next_event().is_none());
    }

    #[test]
    fn zero_delay_events_fifo() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(1), Ev::Echo(1));
        e.next_event().unwrap();
        e.schedule_in(SimDuration::ZERO, Ev::Echo(2));
        e.schedule_in(SimDuration::ZERO, Ev::Echo(3));
        assert_eq!(e.next_event().unwrap().1, Ev::Echo(2));
        assert_eq!(e.next_event().unwrap().1, Ev::Echo(3));
    }
}

//! The pull-based simulation engine.
//!
//! [`Engine`] couples the [`EventQueue`] with a virtual clock. The driver
//! loop looks like:
//!
//! ```ignore
//! while let Some((t, ev)) = engine.next_event() {
//!     world.handle(t, ev, &mut engine); // may schedule more events
//! }
//! ```
//!
//! `next_event` advances the clock to the popped event's timestamp, so
//! `engine.now()` is always the time of the event being handled. A horizon
//! ([`Engine::set_horizon`]) lets simulations stop at a fixed virtual time
//! without draining the queue.

use crate::event::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Discrete-event engine: event queue + virtual clock + optional horizon.
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    horizon: SimTime,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// New engine at t = 0 with an unbounded horizon.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            horizon: SimTime::MAX,
            processed: 0,
        }
    }

    /// New engine that will not deliver events at or after `horizon`.
    pub fn with_horizon(horizon: SimTime) -> Self {
        let mut e = Self::new();
        e.horizon = horizon;
        e
    }

    /// Current virtual time (time of the most recently popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Set the stop time. Events scheduled at `t >= horizon` stay queued but
    /// are never delivered.
    pub fn set_horizon(&mut self, horizon: SimTime) {
        self.horizon = horizon;
    }

    /// The current stop time.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Schedule `event` at the absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current virtual time: scheduling into the
    /// past would silently corrupt causality.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "schedule_at into the past: at={at:?} < now={now:?}",
            now = self.now
        );
        self.queue.push(at, event);
    }

    /// Schedule `event` after a relative delay from `now()`.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Pop the next event (earliest first, FIFO on ties), advancing the
    /// clock to its timestamp. Returns `None` when the queue is exhausted or
    /// the next event lies at/after the horizon.
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        match self.queue.peek_time() {
            Some(t) if t < self.horizon => {
                let (t, ev) = self.queue.pop().expect("peek said non-empty");
                self.now = t;
                self.processed += 1;
                Some((t, ev))
            }
            _ => None,
        }
    }

    /// Timestamp and payload of the event `next_event` would deliver next,
    /// without delivering it. Returns `None` in exactly the cases
    /// `next_event` would: an empty queue, or an earliest entry at/after
    /// the horizon. Event drivers use this to drain every event scheduled
    /// for one instant before acting on the batch.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        match self.queue.peek() {
            Some((t, ev)) if t < self.horizon => Some((t, ev)),
            _ => None,
        }
    }

    /// Number of pending (not yet delivered) events, including any beyond
    /// the horizon.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// True when no events are pending at all.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Drop every pending event (the clock is left unchanged).
    pub fn clear_pending(&mut self) {
        self.queue.clear();
    }

    /// Run the simulation to completion (or horizon) with a handler closure.
    ///
    /// This is a convenience wrapper over the pull loop for simulations whose
    /// whole state fits in one `world` value.
    pub fn run<W>(
        &mut self,
        world: &mut W,
        mut handler: impl FnMut(&mut Self, &mut W, SimTime, E),
    ) {
        while let Some((t, ev)) = self.next_event() {
            handler(self, world, t, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Clone, Copy)]
    enum Ev {
        Tick,
        Echo(u32),
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(4), Ev::Tick);
        e.schedule_at(SimTime::from_secs(2), Ev::Tick);
        assert_eq!(e.now(), SimTime::ZERO);
        let (t, _) = e.next_event().unwrap();
        assert_eq!(t, SimTime::from_secs(2));
        assert_eq!(e.now(), t);
        let (t, _) = e.next_event().unwrap();
        assert_eq!(t, SimTime::from_secs(4));
        assert_eq!(e.now(), t);
        assert!(e.next_event().is_none());
        assert_eq!(e.events_processed(), 2);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(1), Ev::Tick);
        e.next_event().unwrap();
        e.schedule_in(SimDuration::from_millis(500), Ev::Echo(7));
        let (t, ev) = e.next_event().unwrap();
        assert_eq!(t, SimTime::from_millis(1500));
        assert_eq!(ev, Ev::Echo(7));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(2), Ev::Tick);
        e.next_event().unwrap();
        e.schedule_at(SimTime::from_secs(1), Ev::Tick);
    }

    #[test]
    fn horizon_stops_delivery() {
        let mut e = Engine::with_horizon(SimTime::from_secs(5));
        e.schedule_at(SimTime::from_secs(3), Ev::Tick);
        e.schedule_at(SimTime::from_secs(5), Ev::Tick); // exactly at horizon: excluded
        e.schedule_at(SimTime::from_secs(9), Ev::Tick);
        assert!(e.next_event().is_some());
        assert!(e.next_event().is_none());
        assert_eq!(e.pending(), 2);
    }

    #[test]
    fn run_loop_processes_chain() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::ZERO, Ev::Echo(3));
        let mut sum = 0u32;
        e.run(&mut sum, |eng, acc, _t, ev| {
            if let Ev::Echo(n) = ev {
                *acc += n;
                if n > 1 {
                    eng.schedule_in(SimDuration::from_millis(1), Ev::Echo(n - 1));
                }
            }
        });
        assert_eq!(sum, 3 + 2 + 1);
        assert!(e.is_idle());
    }

    #[test]
    fn clear_pending_empties_queue() {
        let mut e = Engine::<Ev>::new();
        e.schedule_at(SimTime::from_secs(1), Ev::Tick);
        e.schedule_at(SimTime::from_secs(2), Ev::Tick);
        e.clear_pending();
        assert!(e.is_idle());
        assert!(e.next_event().is_none());
    }

    #[test]
    fn zero_delay_events_fifo() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(1), Ev::Echo(1));
        e.next_event().unwrap();
        e.schedule_in(SimDuration::ZERO, Ev::Echo(2));
        e.schedule_in(SimDuration::ZERO, Ev::Echo(3));
        assert_eq!(e.next_event().unwrap().1, Ev::Echo(2));
        assert_eq!(e.next_event().unwrap().1, Ev::Echo(3));
    }

    #[test]
    fn peek_respects_the_horizon() {
        let mut e = Engine::with_horizon(SimTime::from_secs(5));
        assert_eq!(e.peek(), None);
        e.schedule_at(SimTime::from_secs(5), Ev::Tick); // at horizon: hidden
        assert_eq!(e.peek(), None);
        e.schedule_at(SimTime::from_secs(2), Ev::Echo(1));
        assert_eq!(e.peek(), Some((SimTime::from_secs(2), &Ev::Echo(1))));
        // peeking does not advance the clock or the processed count
        assert_eq!(e.now(), SimTime::ZERO);
        assert_eq!(e.events_processed(), 0);
        e.next_event().unwrap();
        assert_eq!(e.peek(), None);
        // raising the horizon reveals the retained event
        e.set_horizon(SimTime::MAX);
        assert_eq!(e.peek(), Some((SimTime::from_secs(5), &Ev::Tick)));
    }

    mod adversarial {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// FIFO stability under interleaved scheduling: events pushed at
            /// already-reached instants (zero delay) and future instants pop
            /// in (time, insertion) order even when pops interleave pushes.
            #[test]
            fn prop_fifo_survives_interleaved_scheduling(
                ops in proptest::collection::vec((0u64..8, any::<bool>()), 1..200),
            ) {
                let mut e = Engine::new();
                let mut pushed = 0u32;
                let mut delivered: Vec<(SimTime, u32)> = Vec::new();
                for &(delay, pop) in &ops {
                    e.schedule_in(SimDuration::from_ticks(delay), pushed);
                    pushed += 1;
                    if pop {
                        if let Some((t, id)) = e.next_event() {
                            delivered.push((t, id));
                        }
                    }
                }
                while let Some((t, id)) = e.next_event() {
                    delivered.push((t, id));
                }
                prop_assert_eq!(delivered.len(), pushed as usize);
                for w in delivered.windows(2) {
                    prop_assert!(w[0].0 <= w[1].0, "time went backwards");
                    if w[0].0 == w[1].0 {
                        prop_assert!(
                            w[0].1 < w[1].1,
                            "FIFO violated at {:?}: {} before {}",
                            w[0].0, w[0].1, w[1].1
                        );
                    }
                }
            }

            /// Horizon semantics: exactly the events strictly before the
            /// horizon are delivered (in order); the rest stay queued and
            /// are released, still ordered, when the horizon is raised.
            #[test]
            fn prop_horizon_splits_delivery_exactly(
                times in proptest::collection::vec(0u64..100, 0..100),
                horizon in 0u64..100,
            ) {
                let mut e = Engine::with_horizon(SimTime::from_ticks(horizon));
                for &t in &times {
                    e.schedule_at(SimTime::from_ticks(t), t);
                }
                let mut early = Vec::new();
                while let Some((_, v)) = e.next_event() {
                    early.push(v);
                }
                let expect_early = times.iter().filter(|&&t| t < horizon).count();
                prop_assert_eq!(early.len(), expect_early);
                prop_assert!(early.iter().all(|&t| t < horizon));
                prop_assert_eq!(e.pending(), times.len() - expect_early);
                e.set_horizon(SimTime::MAX);
                let mut late = Vec::new();
                while let Some((_, v)) = e.next_event() {
                    late.push(v);
                }
                prop_assert!(late.iter().all(|&t| t >= horizon));
                let mut all: Vec<u64> = early.into_iter().chain(late).collect();
                let mut expect = times.clone();
                all.sort_unstable();
                expect.sort_unstable();
                prop_assert_eq!(all, expect);
            }

            /// Epoch wrap: instants within the last few ticks of the `u64`
            /// tick space still order, tie-break, and respect the horizon
            /// correctly, and `checked_add` refuses to wrap past `MAX`.
            #[test]
            fn prop_ordering_survives_near_epoch_end(
                offsets in proptest::collection::vec(0u64..16, 1..50),
                horizon_back in 0u64..16,
            ) {
                let base = u64::MAX - 16;
                let mut e = Engine::with_horizon(SimTime::from_ticks(u64::MAX - horizon_back));
                for (i, &off) in offsets.iter().enumerate() {
                    e.schedule_at(SimTime::from_ticks(base + off), i);
                }
                let mut last: Option<(SimTime, usize)> = None;
                let mut delivered = 0usize;
                while let Some((t, idx)) = e.next_event() {
                    prop_assert!(t < e.horizon());
                    if let Some((lt, lidx)) = last {
                        prop_assert!(t >= lt);
                        if t == lt {
                            prop_assert!(idx > lidx, "FIFO violated near u64::MAX");
                        }
                    }
                    last = Some((t, idx));
                    delivered += 1;
                }
                let expect = offsets
                    .iter()
                    .filter(|&&off| base + off < u64::MAX - horizon_back)
                    .count();
                prop_assert_eq!(delivered, expect);
                // the tick space does not wrap: arithmetic past MAX refuses
                prop_assert_eq!(
                    SimTime::from_ticks(base).checked_add(SimDuration::from_ticks(17)),
                    None
                );
                prop_assert!(SimTime::from_ticks(base)
                    .checked_add(SimDuration::from_ticks(16))
                    .is_some());
            }

            /// Schedule-during-handle reentrancy: handlers that schedule
            /// both zero-delay (same-instant) and future events from inside
            /// `run` see every event delivered exactly once, in (time,
            /// schedule-order), with the same-instant children delivered
            /// after their parent but before any later instant.
            #[test]
            fn prop_reentrant_scheduling_preserves_order(
                seedlings in proptest::collection::vec((0u64..6, 0u8..3), 1..30),
            ) {
                #[derive(Clone, Copy)]
                struct Node {
                    children: u8,
                }
                let mut e = Engine::new();
                for &(t, children) in &seedlings {
                    e.schedule_at(SimTime::from_ticks(t), Node { children });
                }
                let mut trace: Vec<SimTime> = Vec::new();
                let mut total = seedlings.len();
                let mut guard = 0usize;
                while let Some((t, node)) = e.next_event() {
                    prop_assert_eq!(t, e.now());
                    trace.push(t);
                    // children split between "same instant" and "later"
                    for c in 0..node.children {
                        let delay = if c % 2 == 0 { 0 } else { 1 + c as u64 };
                        e.schedule_in(
                            SimDuration::from_ticks(delay),
                            Node { children: 0 },
                        );
                        total += 1;
                    }
                    guard += 1;
                    prop_assert!(guard < 10_000, "runaway reentrant loop");
                }
                prop_assert_eq!(trace.len(), total);
                for w in trace.windows(2) {
                    prop_assert!(w[0] <= w[1], "reentrant child delivered early");
                }
                prop_assert_eq!(e.events_processed(), total as u64);
                prop_assert!(e.is_idle());
            }
        }
    }
}

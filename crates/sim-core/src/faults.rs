//! Deterministic fault injection: seeded fault plans and runtime fault state.
//!
//! A [`FaultPlan`] is generated once from a [`FaultConfig`], a node count, and
//! a seed, and is then a pure value: every node crash/rejoin event, the
//! partition window, and the per-message drop/delay thresholds are fixed up
//! front. Protocol code consults the plan at *round* granularity (a round is
//! one validation-period instant on the engine's event lattice, so tick and
//! event drivers see identical fault histories by construction) and at
//! *message* granularity through [`FaultPlan::message_verdict`], which hashes
//! message content rather than transport coordinates. Nothing in this module
//! draws from a shared RNG at apply time, so a faulted run is replayable from
//! `(seed, plan)` at any shard or worker count.
//!
//! [`FaultState`] is the mutable runtime companion: which nodes are currently
//! down, and which side of a frozen partition cut each node was on when the
//! window opened. The simulation owns one `FaultState` and advances it by
//! applying the plan's events round by round.

use crate::rng::{RngStream, SeedSplitter};

/// Per-message delivery verdict from the fault plane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Deliver the message normally this round.
    Deliver,
    /// Drop the message: it never reaches its destination mailbox.
    Drop,
    /// Defer the message by one exchange: it is parked in the plane's
    /// deferred lane and delivered unconditionally on the next exchange.
    Delay,
}

/// What happens to a node at a scheduled [`NodeFault`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeFaultKind {
    /// The node's radio goes silent: it answers no validations, relays no
    /// walks, and its own protocol state (contacts, hints, backoff) is lost.
    Crash,
    /// A previously crashed node comes back with empty protocol state and
    /// rebuilds its contact table through ordinary re-selection.
    Rejoin,
}

/// One scheduled node-level fault event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeFault {
    /// Validation round (0-based) at which the event fires.
    pub round: u32,
    /// Index of the affected node.
    pub node: u32,
    /// Crash or rejoin.
    pub kind: NodeFaultKind,
}

/// A region-scoped partition window: from `start_round` (inclusive) to
/// `end_round` (exclusive) the field is split by a frozen vertical cut and
/// no message or validation crosses sides.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartitionWindow {
    /// Round at which the partition opens (sides are frozen from positions
    /// at this instant).
    pub start_round: u32,
    /// Round at which the partition heals. Must be `> start_round`.
    pub end_round: u32,
    /// Fraction of the field's width left of the cut, in `(0, 1)`.
    pub fraction: f64,
}

/// Declarative description of a fault regime, turned into a concrete
/// [`FaultPlan`] by [`FaultPlan::generate`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Fraction of the population that crashes over the plan's horizon,
    /// in `[0, 1]`. Victims and crash rounds are drawn from the plan seed.
    pub churn_rate: f64,
    /// Rounds a crashed node stays down before rejoining; `0` means crashed
    /// nodes never come back.
    pub rejoin_after: u32,
    /// Optional partition/heal window.
    pub partition: Option<PartitionWindow>,
    /// Probability that a plane message is dropped, in `[0, 1]`.
    pub drop_rate: f64,
    /// Probability that a plane message is delayed by one exchange, in
    /// `[0, 1]`. Drop is tested first; `drop_rate + delay_rate` must be
    /// `<= 1`.
    pub delay_rate: f64,
    /// Number of validation rounds the plan covers; crash events are spread
    /// uniformly over `[1, rounds]`.
    pub rounds: u32,
}

impl FaultConfig {
    /// A no-op regime: no churn, no partition, lossless plane.
    pub fn calm() -> Self {
        FaultConfig {
            churn_rate: 0.0,
            rejoin_after: 0,
            partition: None,
            drop_rate: 0.0,
            delay_rate: 0.0,
            rounds: 0,
        }
    }
}

/// SplitMix64 finalizer — the same mixing used by [`SeedSplitter`], kept
/// local so message verdicts are a pure function of `(plan seed, key)`.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A fully materialized, replayable fault schedule.
///
/// Equality of two plans implies bit-identical fault histories; the plan is
/// `Clone` so worlds can retain it while tests compare against a reference.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// Node events sorted by `(round, node)`; a node's rejoin always follows
    /// its crash and no node crashes twice.
    events: Vec<NodeFault>,
    partition: Option<PartitionWindow>,
    /// `Drop` when `hash < drop_cut`.
    drop_cut: u64,
    /// `Delay` when `drop_cut <= hash < delay_cut`.
    delay_cut: u64,
    rounds: u32,
}

impl FaultPlan {
    /// Generate a plan for `nodes` nodes from `cfg`, deterministically from
    /// `seed`. Victims are a seeded sample without replacement; each gets a
    /// crash round uniform in `[1, cfg.rounds]` and, when `rejoin_after > 0`,
    /// a rejoin `rejoin_after` rounds later.
    ///
    /// # Panics
    /// If rates are outside `[0, 1]`, `drop_rate + delay_rate > 1`, or a
    /// partition window is empty or has a fraction outside `(0, 1)`.
    pub fn generate(cfg: &FaultConfig, nodes: usize, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.churn_rate),
            "churn_rate must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.drop_rate) && (0.0..=1.0).contains(&cfg.delay_rate),
            "message fault rates must be in [0, 1]"
        );
        assert!(
            cfg.drop_rate + cfg.delay_rate <= 1.0,
            "drop_rate + delay_rate must be <= 1"
        );
        if let Some(w) = &cfg.partition {
            assert!(w.end_round > w.start_round, "empty partition window");
            assert!(
                w.fraction > 0.0 && w.fraction < 1.0,
                "partition fraction must be in (0, 1)"
            );
        }

        let splitter = SeedSplitter::new(seed);
        let mut rng: RngStream = splitter.stream("fault-plan", 0);
        let victims = ((cfg.churn_rate * nodes as f64).round() as usize).min(nodes);
        let mut events = Vec::with_capacity(victims * 2);
        if victims > 0 && cfg.rounds > 0 {
            // Partial Fisher-Yates: the first `victims` entries of a seeded
            // shuffle are a uniform sample without replacement.
            let mut pool: Vec<u32> = (0..nodes as u32).collect();
            for i in 0..victims {
                let j = i + rng.index(pool.len() - i);
                pool.swap(i, j);
                let node = pool[i];
                let round = 1 + rng.next_below(cfg.rounds as u64) as u32;
                events.push(NodeFault {
                    round,
                    node,
                    kind: NodeFaultKind::Crash,
                });
                if cfg.rejoin_after > 0 {
                    events.push(NodeFault {
                        round: round + cfg.rejoin_after,
                        node,
                        kind: NodeFaultKind::Rejoin,
                    });
                }
            }
        }
        events.sort_by_key(|e| (e.round, e.node, e.kind == NodeFaultKind::Rejoin));

        let to_cut = |rate: f64| (rate * u64::MAX as f64) as u64;
        FaultPlan {
            seed,
            events,
            partition: cfg.partition,
            drop_cut: to_cut(cfg.drop_rate),
            delay_cut: to_cut(cfg.drop_rate + cfg.delay_rate),
            rounds: cfg.rounds,
        }
    }

    /// A plan with no faults at all (every verdict is `Deliver`, no events,
    /// no partition). Useful as a baseline that still exercises the faulted
    /// code paths.
    pub fn calm(seed: u64) -> Self {
        Self::generate(&FaultConfig::calm(), 0, seed)
    }

    /// The seed the plan was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of validation rounds the plan covers.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// All scheduled node events, sorted by `(round, node)`.
    pub fn events(&self) -> &[NodeFault] {
        &self.events
    }

    /// The node events scheduled for `round`, in node order.
    pub fn events_at(&self, round: u32) -> &[NodeFault] {
        let lo = self.events.partition_point(|e| e.round < round);
        let hi = self.events.partition_point(|e| e.round <= round);
        &self.events[lo..hi]
    }

    /// The partition window, if the plan has one.
    pub fn partition(&self) -> Option<&PartitionWindow> {
        self.partition.as_ref()
    }

    /// True when the plan can affect plane messages (saves the faulted
    /// exchange when both rates are zero).
    pub fn lossy(&self) -> bool {
        self.delay_cut > 0
    }

    /// Delivery verdict for a message identified by `key`. The key must be
    /// derived from message *content* (and, if repeats are possible, a
    /// round/sweep salt) — never from shard indices or queue positions — so
    /// the verdict is invariant across shard and worker counts.
    pub fn message_verdict(&self, key: u64) -> FaultVerdict {
        if self.delay_cut == 0 {
            return FaultVerdict::Deliver;
        }
        let h = mix(self.seed ^ mix(key));
        if h < self.drop_cut {
            FaultVerdict::Drop
        } else if h < self.delay_cut {
            FaultVerdict::Delay
        } else {
            FaultVerdict::Deliver
        }
    }

    /// True when the validation probe from `source` to its contact `target`
    /// is lost this `round` (an independent content-keyed draw, since
    /// validation traffic is metered rather than routed through the plane).
    /// The loss probability is the plan's drop rate.
    pub fn validation_lost(&self, source: u32, target: u32, round: u32) -> bool {
        if self.drop_cut == 0 {
            return false;
        }
        let key = (source as u64) << 40 | (target as u64) << 16 | round as u64;
        mix(self.seed ^ mix(key ^ 0x56414c)) < self.drop_cut
    }

    /// Mix a message-content key with a sweep salt, for callers that send
    /// identical payloads across rounds and want independent verdicts.
    pub fn salted_key(parts: &[u64]) -> u64 {
        let mut h = 0x100001b3u64;
        for &p in parts {
            h = mix(h ^ p);
        }
        h
    }
}

/// Mutable runtime fault state: which nodes are down and, while a partition
/// window is open, which side of the frozen cut each node is on.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultState {
    down: Vec<bool>,
    down_count: usize,
    sides: Vec<u8>,
    partition_active: bool,
}

impl FaultState {
    /// Fresh state for `nodes` nodes: everyone up, no partition.
    pub fn new(nodes: usize) -> Self {
        FaultState {
            down: vec![false; nodes],
            down_count: 0,
            sides: Vec::new(),
            partition_active: false,
        }
    }

    /// True when node `i` is currently crashed.
    pub fn is_down(&self, i: usize) -> bool {
        self.down[i]
    }

    /// Mark node `i` down (`true`) or up (`false`); idempotent.
    pub fn set_down(&mut self, i: usize, down: bool) {
        if self.down[i] != down {
            self.down[i] = down;
            if down {
                self.down_count += 1;
            } else {
                self.down_count -= 1;
            }
        }
    }

    /// Number of nodes currently down.
    pub fn down_count(&self) -> usize {
        self.down_count
    }

    /// The full down mask, indexed by node.
    pub fn down_mask(&self) -> &[bool] {
        &self.down
    }

    /// Open a partition with the given per-node sides (frozen at window
    /// start). `sides.len()` must match the node count.
    pub fn activate_partition(&mut self, sides: Vec<u8>) {
        assert_eq!(sides.len(), self.down.len(), "sides/node count mismatch");
        self.sides = sides;
        self.partition_active = true;
    }

    /// Heal the partition: all links are candidate links again.
    pub fn heal_partition(&mut self) {
        self.partition_active = false;
        self.sides.clear();
    }

    /// True while a partition window is open.
    pub fn partition_active(&self) -> bool {
        self.partition_active
    }

    /// The frozen per-node sides while a partition is active, else `None`.
    pub fn sides(&self) -> Option<&[u8]> {
        if self.partition_active {
            Some(&self.sides)
        } else {
            None
        }
    }

    /// True when the open partition separates nodes `a` and `b`. Always
    /// `false` while no partition is active.
    pub fn blocked(&self, a: usize, b: usize) -> bool {
        self.partition_active && self.sides[a] != self.sides[b]
    }

    /// True when a protocol interaction from `a` to `b` can happen at all:
    /// both ends up and not separated by the partition.
    pub fn link_allowed(&self, a: usize, b: usize) -> bool {
        !self.down[a] && !self.down[b] && !self.blocked(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn churny() -> FaultConfig {
        FaultConfig {
            churn_rate: 0.2,
            rejoin_after: 3,
            partition: Some(PartitionWindow {
                start_round: 2,
                end_round: 5,
                fraction: 0.5,
            }),
            drop_rate: 0.05,
            delay_rate: 0.05,
            rounds: 8,
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let cfg = churny();
        let a = FaultPlan::generate(&cfg, 500, 7);
        let b = FaultPlan::generate(&cfg, 500, 7);
        let c = FaultPlan::generate(&cfg, 500, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.events().len(), 200); // 100 crashes + 100 rejoins
    }

    #[test]
    fn events_are_sorted_and_rejoins_follow_crashes() {
        let plan = FaultPlan::generate(&churny(), 300, 11);
        let evs = plan.events();
        assert!(evs
            .windows(2)
            .all(|w| (w[0].round, w[0].node) <= (w[1].round, w[1].node)));
        for e in evs {
            if e.kind == NodeFaultKind::Rejoin {
                let crash = evs
                    .iter()
                    .find(|c| c.node == e.node && c.kind == NodeFaultKind::Crash)
                    .expect("rejoin without crash");
                assert_eq!(crash.round + 3, e.round);
            }
        }
        // No node crashes twice.
        let mut crashed: Vec<u32> = evs
            .iter()
            .filter(|e| e.kind == NodeFaultKind::Crash)
            .map(|e| e.node)
            .collect();
        let before = crashed.len();
        crashed.sort_unstable();
        crashed.dedup();
        assert_eq!(before, crashed.len());
    }

    #[test]
    fn events_at_slices_by_round() {
        let plan = FaultPlan::generate(&churny(), 400, 3);
        let total: usize = (0..=plan.rounds() + 4)
            .map(|r| plan.events_at(r).len())
            .sum();
        assert_eq!(total, plan.events().len());
        for r in 0..=plan.rounds() + 4 {
            assert!(plan.events_at(r).iter().all(|e| e.round == r));
        }
    }

    #[test]
    fn message_verdicts_match_configured_rates() {
        let plan = FaultPlan::generate(
            &FaultConfig {
                drop_rate: 0.1,
                delay_rate: 0.1,
                ..FaultConfig::calm()
            },
            0,
            42,
        );
        let n = 20_000u64;
        let (mut dropped, mut delayed) = (0u64, 0u64);
        for k in 0..n {
            match plan.message_verdict(k) {
                FaultVerdict::Drop => dropped += 1,
                FaultVerdict::Delay => delayed += 1,
                FaultVerdict::Deliver => {}
            }
        }
        // Within a loose tolerance of the nominal 10% each.
        assert!((dropped as f64 / n as f64 - 0.1).abs() < 0.02, "{dropped}");
        assert!((delayed as f64 / n as f64 - 0.1).abs() < 0.02, "{delayed}");
        // And a pure function of the key.
        assert_eq!(plan.message_verdict(17), plan.message_verdict(17));
    }

    #[test]
    fn calm_plan_never_faults() {
        let plan = FaultPlan::calm(9);
        assert!(!plan.lossy());
        assert!(plan.events().is_empty());
        for k in 0..1000 {
            assert_eq!(plan.message_verdict(k), FaultVerdict::Deliver);
        }
        assert!(!plan.validation_lost(1, 2, 3));
    }

    #[test]
    fn fault_state_tracks_down_and_partition() {
        let mut st = FaultState::new(4);
        assert_eq!(st.down_count(), 0);
        st.set_down(2, true);
        st.set_down(2, true); // idempotent
        assert_eq!(st.down_count(), 1);
        assert!(st.is_down(2));
        assert!(!st.blocked(0, 1));
        st.activate_partition(vec![0, 0, 1, 1]);
        assert!(st.partition_active());
        assert!(st.blocked(1, 2));
        assert!(!st.blocked(0, 1));
        assert!(!st.link_allowed(0, 3)); // cut
        assert!(!st.link_allowed(0, 2)); // down
        assert!(st.link_allowed(0, 1));
        st.heal_partition();
        assert!(!st.blocked(1, 2));
        st.set_down(2, false);
        assert_eq!(st.down_count(), 0);
        assert!(st.link_allowed(0, 2));
    }

    #[test]
    #[should_panic(expected = "drop_rate + delay_rate")]
    fn overlapping_rates_rejected() {
        let cfg = FaultConfig {
            drop_rate: 0.7,
            delay_rate: 0.7,
            ..FaultConfig::calm()
        };
        FaultPlan::generate(&cfg, 10, 1);
    }
}

//! Cross-shard message plane: shard-owned outboxes, batched exchange
//! rounds, deterministic delivery order.
//!
//! The sharded protocol layers (card-core) fan protocol state out as
//! *owned* shards — contact tables, RNG streams, backoff state and hint
//! stores all live inside their shard. Any effect one shard wants to have
//! on state owned by another shard must travel as a typed message through
//! a [`MessagePlane`]: the sending shard pushes into its own
//! [`Outbox`] during a parallel phase (no locks, no sharing), the caller
//! runs [`MessagePlane::exchange`] as a sequential barrier, and each
//! receiving shard then drains its [`Mailbox`] in the next parallel
//! phase.
//!
//! ## Delivery-order contract
//!
//! `exchange` moves every queued message into the destination mailboxes
//! in **(destination shard, source shard, send sequence)** order:
//!
//! * mailbox `d` holds all messages addressed to shard `d`, grouped by
//!   ascending source shard;
//! * within one `(source, destination)` pair, messages appear in the
//!   exact order the source pushed them (per-channel FIFO).
//!
//! Draining mailboxes `0..shards` in index order therefore replays the
//! global `(dst, src, seq)` order — a pure function of *what each shard
//! sent*, never of worker count or thread interleaving. This is what
//! lets plane-routed protocol paths stay bit-identical to their retained
//! serial references at any shard x worker combination. The faulted
//! exchange keeps the contract: verdicts are keyed on message content,
//! and deferred messages re-enter delivery at the head of their original
//! `(src, dst)` lane.
//!
//! ## Double buffering
//!
//! Outbox lanes and mailboxes are long-lived `Vec`s: `exchange` drains
//! lanes into mailboxes without freeing capacity, so steady-state rounds
//! allocate nothing. A round trip (request phase, exchange, serve phase,
//! exchange, integrate phase) reuses the same buffers each level.
//!
//! ## Faulted exchange
//!
//! [`MessagePlane::exchange_faulted`] is the fault-injection boundary: a
//! caller-supplied verdict function (see [`crate::faults::FaultPlan::message_verdict`])
//! classifies each *fresh* message as delivered, dropped, or delayed.
//! Delayed messages park in a per-`(src, dst)` deferred lane and are
//! delivered **unconditionally** at the next exchange, *before* that
//! round's fresh traffic on the same lane — so per-channel FIFO among
//! surviving messages is preserved and nothing is delayed twice. The
//! traffic ledger accounts for every message exactly once:
//!
//! ```text
//! sent == local + cross_shard + dropped + deferred_pending()
//! ```
//!
//! which collapses to `sent == local + cross_shard + dropped` whenever
//! the deferred lanes are drained (and to the familiar
//! `sent == local + cross_shard` on a fault-free plane).

use crate::faults::FaultVerdict;

/// Per-source-shard send queue, one FIFO lane per destination shard.
///
/// Each parallel worker owns exactly one `Outbox` (its shard's), so
/// sends are plain `Vec::push` — no synchronization.
#[derive(Debug, Default, Clone)]
pub struct Outbox<M> {
    /// `lanes[dst]` holds messages for shard `dst` in send order.
    lanes: Vec<Vec<M>>,
}

impl<M> Outbox<M> {
    fn new(shards: usize) -> Self {
        Outbox {
            lanes: (0..shards).map(|_| Vec::new()).collect(),
        }
    }

    /// Queue `msg` for delivery to `dst` at the next exchange.
    #[inline]
    pub fn send(&mut self, dst: usize, msg: M) {
        self.lanes[dst].push(msg);
    }

    /// Messages queued across all lanes (not yet exchanged).
    pub fn pending(&self) -> usize {
        self.lanes.iter().map(Vec::len).sum()
    }
}

/// Per-destination-shard receive buffer.
///
/// After an exchange, holds `(source shard, message)` pairs sorted by
/// ascending source shard, FIFO within each source.
#[derive(Debug, Default, Clone)]
pub struct Mailbox<M> {
    msgs: Vec<(u32, M)>,
}

impl<M> Mailbox<M> {
    /// Delivered messages in `(src, seq)` order.
    #[inline]
    pub fn msgs(&self) -> &[(u32, M)] {
        &self.msgs
    }

    /// Number of delivered messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// True when nothing was delivered this round.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Iterate delivered messages in `(src, seq)` order.
    pub fn iter(&self) -> impl Iterator<Item = &(u32, M)> {
        self.msgs.iter()
    }

    /// Drain delivered messages in `(src, seq)` order, keeping capacity.
    pub fn drain(&mut self) -> impl Iterator<Item = (u32, M)> + '_ {
        self.msgs.drain(..)
    }
}

/// Traffic accounting for one plane. All counters are cumulative over
/// the plane's lifetime (reset with [`MessagePlane::reset_stats`]).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PlaneStats {
    /// Exchange barriers run.
    pub rounds: u64,
    /// Total messages moved through exchanges.
    pub sent: u64,
    /// Messages whose source and destination shard differ.
    pub cross_shard: u64,
    /// Messages delivered back to their own shard.
    pub local: u64,
    /// Largest single-exchange message count.
    pub max_round_msgs: u64,
    /// Messages dropped by a faulted exchange (never delivered).
    pub dropped: u64,
    /// Messages delayed by one exchange via the deferred lanes. A message
    /// is delayed at most once, so this also bounds the deferred backlog.
    pub delayed: u64,
    /// Shard-boundary crossings *metered* on paths that the in-process
    /// build resolves by direct substrate reads (validation relay hops):
    /// the traffic a process-level deployment would route as messages.
    pub metered_crossings: u64,
}

impl PlaneStats {
    /// Fold another stats block into this one (`max_round_msgs` takes
    /// the max, everything else sums).
    pub fn merge(&mut self, other: &PlaneStats) {
        self.rounds += other.rounds;
        self.sent += other.sent;
        self.cross_shard += other.cross_shard;
        self.local += other.local;
        self.max_round_msgs = self.max_round_msgs.max(other.max_round_msgs);
        self.dropped += other.dropped;
        self.delayed += other.delayed;
        self.metered_crossings += other.metered_crossings;
    }
}

/// Shard-to-shard message plane with deterministic batched delivery.
///
/// See the [module docs](self) for the ordering contract. Typical use:
///
/// ```
/// use sim_core::plane::MessagePlane;
///
/// let mut plane: MessagePlane<u64> = MessagePlane::new(3);
/// // parallel phase: each worker owns one outbox
/// for (src, ob) in plane.outboxes_mut().iter_mut().enumerate() {
///     ob.send((src + 1) % 3, src as u64);
/// }
/// plane.exchange();
/// // parallel phase: each worker drains its own mailbox
/// assert_eq!(plane.mailbox(1).msgs(), &[(0, 0u64)]);
/// assert_eq!(plane.stats().sent, 3);
/// ```
#[derive(Debug, Clone)]
pub struct MessagePlane<M> {
    shards: usize,
    outboxes: Vec<Outbox<M>>,
    /// Messages a faulted exchange delayed, kept in their original
    /// `(src, dst)` lane; delivered unconditionally next exchange.
    deferred: Vec<Outbox<M>>,
    mailboxes: Vec<Mailbox<M>>,
    stats: PlaneStats,
}

impl<M> MessagePlane<M> {
    /// A plane connecting `shards` shards (at least 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        MessagePlane {
            shards,
            outboxes: (0..shards).map(|_| Outbox::new(shards)).collect(),
            deferred: (0..shards).map(|_| Outbox::new(shards)).collect(),
            mailboxes: (0..shards).map(|_| Mailbox { msgs: Vec::new() }).collect(),
            stats: PlaneStats::default(),
        }
    }

    /// Number of shards this plane connects.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The outboxes, one per source shard, for zipping into a parallel
    /// fan-out alongside the protocol shards they belong to.
    pub fn outboxes_mut(&mut self) -> &mut [Outbox<M>] {
        &mut self.outboxes
    }

    /// The mailboxes, one per destination shard, for a parallel drain
    /// phase after an exchange.
    pub fn mailboxes_mut(&mut self) -> &mut [Mailbox<M>] {
        &mut self.mailboxes
    }

    /// Read access to one mailbox.
    pub fn mailbox(&self, dst: usize) -> &Mailbox<M> {
        &self.mailboxes[dst]
    }

    /// Split mutable access: `(outboxes, mailboxes)` at once, for phases
    /// that read a mailbox while queuing replies (serve phases).
    pub fn split_mut(&mut self) -> (&mut [Outbox<M>], &mut [Mailbox<M>]) {
        (&mut self.outboxes, &mut self.mailboxes)
    }

    /// Deliver every queued message: sequential barrier between two
    /// parallel phases.
    ///
    /// Clears each mailbox (keeping capacity), then for destination
    /// shards in ascending order appends each source shard's lane in
    /// ascending source order, preserving per-lane FIFO. Returns the
    /// number of messages moved this round.
    pub fn exchange(&mut self) -> usize {
        self.exchange_faulted(|_, _, _| FaultVerdict::Deliver)
    }

    /// [`exchange`](Self::exchange) with a fault boundary: `verdict`
    /// classifies each fresh message (given its source shard, destination
    /// shard and content) as delivered, dropped, or delayed by one
    /// exchange. Messages deferred by a *previous* exchange are delivered
    /// unconditionally first, ahead of the same lane's fresh traffic, so
    /// surviving messages keep per-channel FIFO order and nothing is
    /// delayed twice. Returns the number of messages delivered.
    ///
    /// For the determinism contract, `verdict` must depend only on
    /// message content (plus any round salt) — never on shard indices or
    /// queue positions — so that re-sharding the same protocol history
    /// yields the same fault history. The shard arguments are provided
    /// for accounting, not for decision-making.
    pub fn exchange_faulted<F>(&mut self, mut verdict: F) -> usize
    where
        F: FnMut(usize, usize, &M) -> FaultVerdict,
    {
        let mut round = 0u64;
        let mut fresh = 0u64;
        for dst in 0..self.shards {
            self.mailboxes[dst].msgs.clear();
        }
        for src in 0..self.shards {
            for dst in 0..self.shards {
                // Deferred traffic first: its send sequence predates this
                // round's lane and its verdict was already spent.
                let dlane = &mut self.deferred[src].lanes[dst];
                if !dlane.is_empty() {
                    round += dlane.len() as u64;
                    if src == dst {
                        self.stats.local += dlane.len() as u64;
                    } else {
                        self.stats.cross_shard += dlane.len() as u64;
                    }
                    self.mailboxes[dst]
                        .msgs
                        .extend(dlane.drain(..).map(|m| (src as u32, m)));
                }
                let lane = &mut self.outboxes[src].lanes[dst];
                if lane.is_empty() {
                    continue;
                }
                fresh += lane.len() as u64;
                for m in lane.drain(..) {
                    match verdict(src, dst, &m) {
                        FaultVerdict::Deliver => {
                            round += 1;
                            if src == dst {
                                self.stats.local += 1;
                            } else {
                                self.stats.cross_shard += 1;
                            }
                            self.mailboxes[dst].msgs.push((src as u32, m));
                        }
                        FaultVerdict::Drop => self.stats.dropped += 1,
                        FaultVerdict::Delay => {
                            self.stats.delayed += 1;
                            self.deferred[src].lanes[dst].push(m);
                        }
                    }
                }
            }
        }
        // Mailbox order must be (src, seq): lanes were appended in
        // ascending src per dst because the outer loop above fills each
        // mailbox once per src in ascending order. `sent` counts each
        // message exactly once, at its first exchange.
        self.stats.rounds += 1;
        self.stats.sent += fresh;
        self.stats.max_round_msgs = self.stats.max_round_msgs.max(round);
        round as usize
    }

    /// Cumulative traffic statistics.
    pub fn stats(&self) -> &PlaneStats {
        &self.stats
    }

    /// Mutable statistics access (for metering direct-read crossings
    /// that a distributed build would route through the plane).
    pub fn stats_mut(&mut self) -> &mut PlaneStats {
        &mut self.stats
    }

    /// Zero the cumulative statistics.
    pub fn reset_stats(&mut self) {
        self.stats = PlaneStats::default();
    }

    /// Drop any undelivered messages — queued-but-unexchanged *and*
    /// deferred-by-delay alike (keeps capacity).
    pub fn clear_pending(&mut self) {
        for ob in self.outboxes.iter_mut().chain(self.deferred.iter_mut()) {
            for lane in &mut ob.lanes {
                lane.clear();
            }
        }
    }

    /// Messages currently parked in the deferred lanes (delayed by a
    /// faulted exchange and not yet delivered).
    pub fn deferred_pending(&self) -> usize {
        self.deferred.iter().map(Outbox::pending).sum()
    }

    /// Take every undelivered message out of the plane, for migration to
    /// a plane with a different shard count: returns `(deferred, queued)`
    /// where each vector is in global `(src, dst, seq)` order. The
    /// deferred messages have already spent their fault verdict and
    /// should be re-injected with [`defer`](Self::defer); the queued ones
    /// were never exchanged and should be re-sent through an outbox.
    pub fn take_undelivered(&mut self) -> (Vec<M>, Vec<M>) {
        let mut deferred = Vec::new();
        let mut queued = Vec::new();
        for src in 0..self.shards {
            for dst in 0..self.shards {
                deferred.append(&mut self.deferred[src].lanes[dst]);
                queued.append(&mut self.outboxes[src].lanes[dst]);
            }
        }
        (deferred, queued)
    }

    /// Park `msg` in the `(src, dst)` deferred lane: it will be delivered
    /// unconditionally at the next exchange, before fresh traffic on the
    /// same lane. Used to migrate in-flight delayed messages across a
    /// shard-count change.
    pub fn defer(&mut self, src: usize, dst: usize, msg: M) {
        self.deferred[src].lanes[dst].push(msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_orders_by_dst_then_src_then_seq() {
        let mut plane: MessagePlane<u32> = MessagePlane::new(3);
        // shard 2 sends first; delivery order must not care.
        plane.outboxes_mut()[2].send(0, 20);
        plane.outboxes_mut()[2].send(0, 21);
        plane.outboxes_mut()[0].send(0, 1);
        plane.outboxes_mut()[1].send(0, 10);
        plane.outboxes_mut()[0].send(2, 2);
        let moved = plane.exchange();
        assert_eq!(moved, 5);
        // mailbox 0: src 0 first (FIFO), then src 1, then src 2 (FIFO)
        assert_eq!(
            plane.mailbox(0).msgs(),
            &[(0, 1u32), (1, 10), (2, 20), (2, 21)]
        );
        assert_eq!(plane.mailbox(1).msgs(), &[]);
        assert_eq!(plane.mailbox(2).msgs(), &[(0, 2u32)]);
    }

    #[test]
    fn stats_split_local_and_cross() {
        let mut plane: MessagePlane<u8> = MessagePlane::new(2);
        plane.outboxes_mut()[0].send(0, 1);
        plane.outboxes_mut()[0].send(1, 2);
        plane.outboxes_mut()[1].send(0, 3);
        plane.exchange();
        plane.exchange(); // empty round still counts
        let s = plane.stats();
        assert_eq!(s.rounds, 2);
        assert_eq!(s.sent, 3);
        assert_eq!(s.local, 1);
        assert_eq!(s.cross_shard, 2);
        assert_eq!(s.max_round_msgs, 3);
    }

    #[test]
    fn buffers_are_reused_across_rounds() {
        let mut plane: MessagePlane<u64> = MessagePlane::new(2);
        for i in 0..64 {
            plane.outboxes_mut()[0].send(1, i);
        }
        plane.exchange();
        let cap = plane.mailboxes_mut()[1].msgs.capacity();
        assert!(plane.mailbox(1).len() == 64);
        for i in 0..64 {
            plane.outboxes_mut()[0].send(1, i);
        }
        plane.exchange();
        // same round shape: no mailbox regrowth
        assert_eq!(plane.mailboxes_mut()[1].msgs.capacity(), cap);
        assert_eq!(plane.mailbox(1).len(), 64);
    }

    #[test]
    fn one_shard_degenerate_plane_works() {
        let mut plane: MessagePlane<u8> = MessagePlane::new(1);
        plane.outboxes_mut()[0].send(0, 7);
        plane.exchange();
        assert_eq!(plane.mailbox(0).msgs(), &[(0, 7u8)]);
        assert_eq!(plane.stats().local, 1);
        assert_eq!(plane.stats().cross_shard, 0);
    }

    #[test]
    fn clear_pending_drops_queued_messages() {
        let mut plane: MessagePlane<u8> = MessagePlane::new(2);
        plane.outboxes_mut()[0].send(1, 9);
        assert_eq!(plane.outboxes_mut()[0].pending(), 1);
        plane.clear_pending();
        assert_eq!(plane.outboxes_mut()[0].pending(), 0);
        plane.exchange();
        assert!(plane.mailbox(1).is_empty());
    }

    #[test]
    fn merge_folds_stats() {
        let mut a = PlaneStats {
            rounds: 1,
            sent: 10,
            cross_shard: 4,
            local: 6,
            max_round_msgs: 10,
            dropped: 1,
            delayed: 2,
            metered_crossings: 2,
        };
        let b = PlaneStats {
            rounds: 2,
            sent: 5,
            cross_shard: 5,
            local: 0,
            max_round_msgs: 12,
            dropped: 3,
            delayed: 1,
            metered_crossings: 1,
        };
        a.merge(&b);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.sent, 15);
        assert_eq!(a.max_round_msgs, 12);
        assert_eq!(a.dropped, 4);
        assert_eq!(a.delayed, 3);
        assert_eq!(a.metered_crossings, 3);
    }

    #[test]
    fn faulted_exchange_keeps_the_ledger() {
        let mut plane: MessagePlane<u32> = MessagePlane::new(2);
        plane.outboxes_mut()[0].send(1, 1); // dropped
        plane.outboxes_mut()[0].send(1, 2); // delayed
        plane.outboxes_mut()[0].send(1, 3); // delivered
        plane.outboxes_mut()[1].send(1, 4); // delivered (local)
        let moved = plane.exchange_faulted(|_, _, &m| match m {
            1 => FaultVerdict::Drop,
            2 => FaultVerdict::Delay,
            _ => FaultVerdict::Deliver,
        });
        assert_eq!(moved, 2);
        assert_eq!(plane.mailbox(1).msgs(), &[(0, 3u32), (1, 4)]);
        let s = plane.stats().clone();
        assert_eq!((s.sent, s.dropped, s.delayed), (4, 1, 1));
        assert_eq!(plane.deferred_pending(), 1);
        assert_eq!(
            s.sent,
            s.local + s.cross_shard + s.dropped + plane.deferred_pending() as u64
        );
        // Next exchange delivers the deferred message unconditionally,
        // even with an all-drop verdict, and ahead of fresh traffic.
        plane.outboxes_mut()[0].send(1, 5);
        let moved = plane.exchange_faulted(|_, _, &m| {
            assert_ne!(m, 2, "deferred message must not be re-verdicted");
            FaultVerdict::Deliver
        });
        assert_eq!(moved, 2);
        assert_eq!(plane.mailbox(1).msgs(), &[(0, 2u32), (0, 5)]);
        assert_eq!(plane.deferred_pending(), 0);
        let s = plane.stats();
        assert_eq!(s.sent, s.local + s.cross_shard + s.dropped);
    }

    #[test]
    fn take_undelivered_splits_deferred_and_queued() {
        let mut plane: MessagePlane<u32> = MessagePlane::new(2);
        plane.outboxes_mut()[0].send(1, 10);
        plane.exchange_faulted(|_, _, _| FaultVerdict::Delay);
        plane.outboxes_mut()[1].send(0, 20);
        plane.outboxes_mut()[1].send(0, 21);
        let (deferred, queued) = plane.take_undelivered();
        assert_eq!(deferred, vec![10]);
        assert_eq!(queued, vec![20, 21]);
        assert_eq!(plane.deferred_pending(), 0);
        assert_eq!(plane.outboxes_mut()[1].pending(), 0);
        // Re-injecting via defer() delivers at the next exchange.
        let mut fresh: MessagePlane<u32> = MessagePlane::new(1);
        fresh.defer(0, 0, 10);
        fresh.exchange();
        assert_eq!(fresh.mailbox(0).msgs(), &[(0, 10u32)]);
        // defer() delivery adds to local/cross but not to sent: the
        // message was already counted at its original exchange.
        assert_eq!(fresh.stats().sent, 0);
        assert_eq!(fresh.stats().local, 1);
    }
}

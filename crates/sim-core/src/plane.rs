//! Cross-shard message plane: shard-owned outboxes, batched exchange
//! rounds, deterministic delivery order.
//!
//! The sharded protocol layers (card-core) fan protocol state out as
//! *owned* shards — contact tables, RNG streams, backoff state and hint
//! stores all live inside their shard. Any effect one shard wants to have
//! on state owned by another shard must travel as a typed message through
//! a [`MessagePlane`]: the sending shard pushes into its own
//! [`Outbox`] during a parallel phase (no locks, no sharing), the caller
//! runs [`MessagePlane::exchange`] as a sequential barrier, and each
//! receiving shard then drains its [`Mailbox`] in the next parallel
//! phase.
//!
//! ## Delivery-order contract
//!
//! `exchange` moves every queued message into the destination mailboxes
//! in **(destination shard, source shard, send sequence)** order:
//!
//! * mailbox `d` holds all messages addressed to shard `d`, grouped by
//!   ascending source shard;
//! * within one `(source, destination)` pair, messages appear in the
//!   exact order the source pushed them (per-channel FIFO).
//!
//! Draining mailboxes `0..shards` in index order therefore replays the
//! global `(dst, src, seq)` order — a pure function of *what each shard
//! sent*, never of worker count or thread interleaving. This is what
//! lets plane-routed protocol paths stay bit-identical to their retained
//! serial references at any shard x worker combination.
//!
//! ## Double buffering
//!
//! Outbox lanes and mailboxes are long-lived `Vec`s: `exchange` drains
//! lanes into mailboxes without freeing capacity, so steady-state rounds
//! allocate nothing. A round trip (request phase, exchange, serve phase,
//! exchange, integrate phase) reuses the same buffers each level.

/// Per-source-shard send queue, one FIFO lane per destination shard.
///
/// Each parallel worker owns exactly one `Outbox` (its shard's), so
/// sends are plain `Vec::push` — no synchronization.
#[derive(Debug, Default, Clone)]
pub struct Outbox<M> {
    /// `lanes[dst]` holds messages for shard `dst` in send order.
    lanes: Vec<Vec<M>>,
}

impl<M> Outbox<M> {
    fn new(shards: usize) -> Self {
        Outbox {
            lanes: (0..shards).map(|_| Vec::new()).collect(),
        }
    }

    /// Queue `msg` for delivery to `dst` at the next exchange.
    #[inline]
    pub fn send(&mut self, dst: usize, msg: M) {
        self.lanes[dst].push(msg);
    }

    /// Messages queued across all lanes (not yet exchanged).
    pub fn pending(&self) -> usize {
        self.lanes.iter().map(Vec::len).sum()
    }
}

/// Per-destination-shard receive buffer.
///
/// After an exchange, holds `(source shard, message)` pairs sorted by
/// ascending source shard, FIFO within each source.
#[derive(Debug, Default, Clone)]
pub struct Mailbox<M> {
    msgs: Vec<(u32, M)>,
}

impl<M> Mailbox<M> {
    /// Delivered messages in `(src, seq)` order.
    #[inline]
    pub fn msgs(&self) -> &[(u32, M)] {
        &self.msgs
    }

    /// Number of delivered messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// True when nothing was delivered this round.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Iterate delivered messages in `(src, seq)` order.
    pub fn iter(&self) -> impl Iterator<Item = &(u32, M)> {
        self.msgs.iter()
    }

    /// Drain delivered messages in `(src, seq)` order, keeping capacity.
    pub fn drain(&mut self) -> impl Iterator<Item = (u32, M)> + '_ {
        self.msgs.drain(..)
    }
}

/// Traffic accounting for one plane. All counters are cumulative over
/// the plane's lifetime (reset with [`MessagePlane::reset_stats`]).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PlaneStats {
    /// Exchange barriers run.
    pub rounds: u64,
    /// Total messages moved through exchanges.
    pub sent: u64,
    /// Messages whose source and destination shard differ.
    pub cross_shard: u64,
    /// Messages delivered back to their own shard.
    pub local: u64,
    /// Largest single-exchange message count.
    pub max_round_msgs: u64,
    /// Shard-boundary crossings *metered* on paths that the in-process
    /// build resolves by direct substrate reads (validation relay hops):
    /// the traffic a process-level deployment would route as messages.
    pub metered_crossings: u64,
}

impl PlaneStats {
    /// Fold another stats block into this one (`max_round_msgs` takes
    /// the max, everything else sums).
    pub fn merge(&mut self, other: &PlaneStats) {
        self.rounds += other.rounds;
        self.sent += other.sent;
        self.cross_shard += other.cross_shard;
        self.local += other.local;
        self.max_round_msgs = self.max_round_msgs.max(other.max_round_msgs);
        self.metered_crossings += other.metered_crossings;
    }
}

/// Shard-to-shard message plane with deterministic batched delivery.
///
/// See the [module docs](self) for the ordering contract. Typical use:
///
/// ```
/// use sim_core::plane::MessagePlane;
///
/// let mut plane: MessagePlane<u64> = MessagePlane::new(3);
/// // parallel phase: each worker owns one outbox
/// for (src, ob) in plane.outboxes_mut().iter_mut().enumerate() {
///     ob.send((src + 1) % 3, src as u64);
/// }
/// plane.exchange();
/// // parallel phase: each worker drains its own mailbox
/// assert_eq!(plane.mailbox(1).msgs(), &[(0, 0u64)]);
/// assert_eq!(plane.stats().sent, 3);
/// ```
#[derive(Debug, Clone)]
pub struct MessagePlane<M> {
    shards: usize,
    outboxes: Vec<Outbox<M>>,
    mailboxes: Vec<Mailbox<M>>,
    stats: PlaneStats,
}

impl<M> MessagePlane<M> {
    /// A plane connecting `shards` shards (at least 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        MessagePlane {
            shards,
            outboxes: (0..shards).map(|_| Outbox::new(shards)).collect(),
            mailboxes: (0..shards).map(|_| Mailbox { msgs: Vec::new() }).collect(),
            stats: PlaneStats::default(),
        }
    }

    /// Number of shards this plane connects.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The outboxes, one per source shard, for zipping into a parallel
    /// fan-out alongside the protocol shards they belong to.
    pub fn outboxes_mut(&mut self) -> &mut [Outbox<M>] {
        &mut self.outboxes
    }

    /// The mailboxes, one per destination shard, for a parallel drain
    /// phase after an exchange.
    pub fn mailboxes_mut(&mut self) -> &mut [Mailbox<M>] {
        &mut self.mailboxes
    }

    /// Read access to one mailbox.
    pub fn mailbox(&self, dst: usize) -> &Mailbox<M> {
        &self.mailboxes[dst]
    }

    /// Split mutable access: `(outboxes, mailboxes)` at once, for phases
    /// that read a mailbox while queuing replies (serve phases).
    pub fn split_mut(&mut self) -> (&mut [Outbox<M>], &mut [Mailbox<M>]) {
        (&mut self.outboxes, &mut self.mailboxes)
    }

    /// Deliver every queued message: sequential barrier between two
    /// parallel phases.
    ///
    /// Clears each mailbox (keeping capacity), then for destination
    /// shards in ascending order appends each source shard's lane in
    /// ascending source order, preserving per-lane FIFO. Returns the
    /// number of messages moved this round.
    pub fn exchange(&mut self) -> usize {
        let mut round = 0u64;
        for dst in 0..self.shards {
            self.mailboxes[dst].msgs.clear();
        }
        for src in 0..self.shards {
            for dst in 0..self.shards {
                let lane = &mut self.outboxes[src].lanes[dst];
                if lane.is_empty() {
                    continue;
                }
                round += lane.len() as u64;
                if src == dst {
                    self.stats.local += lane.len() as u64;
                } else {
                    self.stats.cross_shard += lane.len() as u64;
                }
                self.mailboxes[dst]
                    .msgs
                    .extend(lane.drain(..).map(|m| (src as u32, m)));
            }
        }
        // Mailbox order must be (src, seq): lanes were appended in
        // ascending src per dst because the outer loop above fills each
        // mailbox once per src in ascending order.
        self.stats.rounds += 1;
        self.stats.sent += round;
        self.stats.max_round_msgs = self.stats.max_round_msgs.max(round);
        round as usize
    }

    /// Cumulative traffic statistics.
    pub fn stats(&self) -> &PlaneStats {
        &self.stats
    }

    /// Mutable statistics access (for metering direct-read crossings
    /// that a distributed build would route through the plane).
    pub fn stats_mut(&mut self) -> &mut PlaneStats {
        &mut self.stats
    }

    /// Zero the cumulative statistics.
    pub fn reset_stats(&mut self) {
        self.stats = PlaneStats::default();
    }

    /// Drop any queued-but-unexchanged messages (keeps capacity).
    pub fn clear_pending(&mut self) {
        for ob in &mut self.outboxes {
            for lane in &mut ob.lanes {
                lane.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_orders_by_dst_then_src_then_seq() {
        let mut plane: MessagePlane<u32> = MessagePlane::new(3);
        // shard 2 sends first; delivery order must not care.
        plane.outboxes_mut()[2].send(0, 20);
        plane.outboxes_mut()[2].send(0, 21);
        plane.outboxes_mut()[0].send(0, 1);
        plane.outboxes_mut()[1].send(0, 10);
        plane.outboxes_mut()[0].send(2, 2);
        let moved = plane.exchange();
        assert_eq!(moved, 5);
        // mailbox 0: src 0 first (FIFO), then src 1, then src 2 (FIFO)
        assert_eq!(
            plane.mailbox(0).msgs(),
            &[(0, 1u32), (1, 10), (2, 20), (2, 21)]
        );
        assert_eq!(plane.mailbox(1).msgs(), &[]);
        assert_eq!(plane.mailbox(2).msgs(), &[(0, 2u32)]);
    }

    #[test]
    fn stats_split_local_and_cross() {
        let mut plane: MessagePlane<u8> = MessagePlane::new(2);
        plane.outboxes_mut()[0].send(0, 1);
        plane.outboxes_mut()[0].send(1, 2);
        plane.outboxes_mut()[1].send(0, 3);
        plane.exchange();
        plane.exchange(); // empty round still counts
        let s = plane.stats();
        assert_eq!(s.rounds, 2);
        assert_eq!(s.sent, 3);
        assert_eq!(s.local, 1);
        assert_eq!(s.cross_shard, 2);
        assert_eq!(s.max_round_msgs, 3);
    }

    #[test]
    fn buffers_are_reused_across_rounds() {
        let mut plane: MessagePlane<u64> = MessagePlane::new(2);
        for i in 0..64 {
            plane.outboxes_mut()[0].send(1, i);
        }
        plane.exchange();
        let cap = plane.mailboxes_mut()[1].msgs.capacity();
        assert!(plane.mailbox(1).len() == 64);
        for i in 0..64 {
            plane.outboxes_mut()[0].send(1, i);
        }
        plane.exchange();
        // same round shape: no mailbox regrowth
        assert_eq!(plane.mailboxes_mut()[1].msgs.capacity(), cap);
        assert_eq!(plane.mailbox(1).len(), 64);
    }

    #[test]
    fn one_shard_degenerate_plane_works() {
        let mut plane: MessagePlane<u8> = MessagePlane::new(1);
        plane.outboxes_mut()[0].send(0, 7);
        plane.exchange();
        assert_eq!(plane.mailbox(0).msgs(), &[(0, 7u8)]);
        assert_eq!(plane.stats().local, 1);
        assert_eq!(plane.stats().cross_shard, 0);
    }

    #[test]
    fn clear_pending_drops_queued_messages() {
        let mut plane: MessagePlane<u8> = MessagePlane::new(2);
        plane.outboxes_mut()[0].send(1, 9);
        assert_eq!(plane.outboxes_mut()[0].pending(), 1);
        plane.clear_pending();
        assert_eq!(plane.outboxes_mut()[0].pending(), 0);
        plane.exchange();
        assert!(plane.mailbox(1).is_empty());
    }

    #[test]
    fn merge_folds_stats() {
        let mut a = PlaneStats {
            rounds: 1,
            sent: 10,
            cross_shard: 4,
            local: 6,
            max_round_msgs: 10,
            metered_crossings: 2,
        };
        let b = PlaneStats {
            rounds: 2,
            sent: 5,
            cross_shard: 5,
            local: 0,
            max_round_msgs: 12,
            metered_crossings: 1,
        };
        a.merge(&b);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.sent, 15);
        assert_eq!(a.max_round_msgs, 12);
        assert_eq!(a.metered_crossings, 3);
    }
}

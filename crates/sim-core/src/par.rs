//! Deterministic fork/join parallelism for the simulation stack.
//!
//! Two primitives cover every fan-out in the workspace:
//!
//! * [`parallel_map`] — map a closure over owned items on scoped threads,
//!   preserving input order. Used by the experiment runner (each figure
//!   cell is an independent simulation world).
//! * [`parallel_map_with`] — the same, but every worker thread first builds
//!   a private *scratch* value and threads it through all the items it
//!   processes. This is the reusable scratch-buffer idiom the topology hot
//!   path depends on: per-worker `BfsScratch` workspaces let thousands of
//!   neighborhood rebuilds run without a single per-call allocation.
//!
//! Both functions are plain `std` (no thread pool, no external crates):
//! workers pull `(index, item)` pairs from a mutex-guarded iterator, stash
//! `(index, result)` pairs locally, and the caller scatters results back
//! into input order. Scoped threads keep borrows of the closure and scratch
//! factory alive without `'static` bounds. Results are deterministic
//! regardless of scheduling because ordering is restored by index.
//!
//! Worker count is `available_parallelism`, capped by the item count.
//! Single-item (or empty) inputs run inline on the caller's thread, and so
//! do *nested* fan-outs: worker threads are marked, and a `parallel_map*`
//! call made from inside one runs serially — a parallel sweep whose cells
//! themselves call into parallel refreshes keeps exactly one level of
//! parallelism instead of spawning workers² threads.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::Mutex;

thread_local! {
    /// Set while this thread is a `parallel_map_with` worker, so nested
    /// fan-outs run inline instead of spawning workers² threads.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of worker threads available to fan-outs (`available_parallelism`,
/// floored at 1). Exposed so callers can size work chunks consistently.
pub fn max_workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
        .max(1)
}

/// Number of worker threads for `n` items (at least 1).
fn worker_count(n: usize) -> usize {
    max_workers().min(n).max(1)
}

/// Map `f` over `items` in parallel (scoped threads, at most
/// `available_parallelism` workers), preserving input order.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with(items, || (), |(), item| f(item))
}

/// Map `f` over `items` in parallel, giving every worker thread a private
/// scratch value built by `init`. Results come back in input order.
///
/// `init` runs once per worker (not per item); `f` receives the worker's
/// scratch by mutable reference, so buffers allocated there are reused
/// across all items the worker processes.
pub fn parallel_map_with<S, T, R, I, F>(items: Vec<T>, init: I, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let n = items.len();
    // Run inline for trivial inputs, and for *nested* fan-outs: when the
    // calling thread is already one of `parallel_map_with`'s workers, the
    // outer call owns the parallelism — spawning here would oversubscribe
    // (workers² threads) and pay spawn latency per inner call.
    if n <= 1 || IN_WORKER.with(Cell::get) {
        let mut scratch = init();
        return items
            .into_iter()
            .map(|item| f(&mut scratch, item))
            .collect();
    }
    let workers = worker_count(n);

    let queue = Mutex::new(items.into_iter().enumerate());
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let slots = Mutex::new(&mut out);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                IN_WORKER.with(|w| w.set(true));
                let mut scratch = init();
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    // Take the next item while holding the lock only for
                    // the pull, never during `f`.
                    let next = queue.lock().expect("queue poisoned").next();
                    let Some((i, item)) = next else { break };
                    local.push((i, f(&mut scratch, item)));
                }
                let mut slots = slots.lock().expect("results poisoned");
                for (i, r) in local {
                    debug_assert!(slots[i].is_none(), "duplicate result for cell {i}");
                    slots[i] = Some(r);
                }
            });
        }
    });

    out.into_iter()
        .map(|r| r.expect("every cell produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(empty.is_empty());
        assert_eq!(parallel_map(vec![7], |x: i32| x + 1), vec![8]);
    }

    #[test]
    fn heavy_closure_runs_once_per_item() {
        let calls = AtomicU32::new(0);
        let out = parallel_map((0..32).collect(), |x: u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 32);
        assert_eq!(calls.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn non_copy_items_move_through() {
        let items: Vec<String> = (0..10).map(|i| format!("s{i}")).collect();
        let out = parallel_map(items, |s| s.len());
        assert_eq!(out, vec![2; 10]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        // cells with wildly different costs must still land in order
        let out = parallel_map((0..24u64).collect(), |x| {
            if x % 3 == 0 {
                // burn a little CPU
                let mut acc = 0u64;
                for i in 0..50_000 {
                    acc = acc.wrapping_add(i ^ x);
                }
                std::hint::black_box(acc);
            }
            x * 10
        });
        assert_eq!(out, (0..24u64).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn scratch_is_per_worker_and_reused() {
        // Each worker's scratch counts the items it processed; the counts
        // must partition the input (every item seen exactly once) and the
        // number of distinct scratches must not exceed the worker cap.
        let inits = AtomicU32::new(0);
        let out = parallel_map_with(
            (0..64u32).collect(),
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u32 // per-worker processed counter
            },
            |seen, x| {
                *seen += 1;
                (x, *seen)
            },
        );
        let total: u32 = out.iter().map(|&(_, seen)| u32::from(seen >= 1)).sum();
        assert_eq!(total, 64);
        let workers = inits.load(Ordering::Relaxed) as usize;
        assert!(workers <= worker_count(64));
        // order preserved
        for (i, &(x, _)) in out.iter().enumerate() {
            assert_eq!(x as usize, i);
        }
    }

    #[test]
    fn nested_fan_out_runs_inline() {
        // A parallel_map inside a worker must not spawn its own workers:
        // the inner call sees the worker marker and stays on-thread.
        let inner_inits = AtomicU32::new(0);
        let out = parallel_map((0..8u32).collect(), |x| {
            let inner = parallel_map_with(
                (0..4u32).collect(),
                || {
                    inner_inits.fetch_add(1, Ordering::Relaxed);
                },
                |(), y| y + x,
            );
            inner.iter().sum::<u32>()
        });
        assert_eq!(out.len(), 8);
        // one scratch per inner call (inline), never more
        assert_eq!(inner_inits.load(Ordering::Relaxed), 8);
        for (x, total) in out.iter().enumerate() {
            assert_eq!(*total, 6 + 4 * x as u32);
        }
    }

    #[test]
    fn scratch_init_runs_inline_for_tiny_inputs() {
        let out = parallel_map_with(vec![5u32], || vec![0u8; 16], |buf, x| x + buf.len() as u32);
        assert_eq!(out, vec![21]);
    }
}

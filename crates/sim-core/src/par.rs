//! Deterministic fork/join parallelism for the simulation stack.
//!
//! Three primitives cover every fan-out in the workspace:
//!
//! * [`parallel_map`] — map a closure over owned items, preserving input
//!   order. Used by the experiment runner (each figure cell is an
//!   independent simulation world).
//! * [`parallel_map_with`] — the same, but every worker thread first builds
//!   a private *scratch* value and threads it through all the items it
//!   processes. This is the reusable scratch-buffer idiom the topology hot
//!   path depends on: per-worker `BfsScratch` workspaces let thousands of
//!   neighborhood rebuilds run without a single per-call allocation.
//! * [`parallel_shard_map`] — fan out over *mutable shards* of long-lived
//!   state. Each shard is visited exactly once, by exactly one thread, and
//!   outputs come back in shard order. This is the primitive behind the
//!   sharded CARD protocol state (`card_core::world::CardWorld`): per-node
//!   RNG streams, contact tables and walk scratches live inside the shards,
//!   so the result of a fan-out is a pure function of shard contents —
//!   bit-identical no matter how many workers participate, or whether the
//!   call runs inline. The batched query sweeps (`CardWorld::query_all`)
//!   use the same primitive with the *work list* sharded instead of the
//!   state: read-only queries carry only a shard-owned walk scratch, and
//!   their message deltas merge in shard order.
//!
//! ## Determinism contract
//!
//! All primitives preserve input order, and none of them leak scheduling
//! into results: a closure sees only its item (plus its thread-private or
//! shard-private scratch), never "which worker am I". Randomized parallel
//! work stays seed-deterministic by *owning its RNG streams in the items or
//! shards themselves* (derive them with [`crate::rng::SeedSplitter`], one
//! stream per node or shard) rather than sharing one stream across the
//! fan-out — a shared stream would make draw order depend on scheduling.
//! [`shard_spans`] computes the canonical contiguous partition used to form
//! shards, so callers can agree on shard boundaries across runs.
//!
//! ## The persistent worker pool
//!
//! Fan-outs execute on one process-wide `WorkerPool` (private) of
//! `available_parallelism − 1` threads, spawned lazily on the first
//! parallel call and *parked on a condvar between fan-outs*. The caller
//! thread always participates in the work, so total concurrency is
//! `available_parallelism`. Compared to the scoped-thread-per-fan-out
//! design this replaces, a fan-out costs a mutex + condvar broadcast
//! (~1 µs) instead of ~100 µs of thread spawn/join — which matters because
//! the incremental topology refresh fans out on *every mobility tick*.
//!
//! Scheduling is unchanged: workers pull `(index, item)` pairs from a
//! mutex-guarded iterator, stash `(index, result)` pairs locally, and the
//! results are scattered back into input order, so output is deterministic
//! regardless of which thread ran what. A worker woken into an already
//! drained queue goes straight back to sleep without building scratch.
//!
//! Pool lifecycle and fallbacks:
//!
//! * single-item (or empty) inputs run inline on the caller's thread;
//! * *nested* fan-outs run inline: pool workers are marked (and the caller
//!   marks itself while it works), so a `parallel_map*` call made from
//!   inside one keeps exactly one level of parallelism instead of
//!   oversubscribing workers²;
//! * *concurrent top-level* fan-outs from different threads do not block
//!   each other: the pool serves one fan-out at a time (a `try_lock` lease)
//!   and losers simply run inline;
//! * a panic inside the mapped closure is caught, the fan-out drains, and
//!   the panic is propagated on the calling thread — the pool itself
//!   survives and serves subsequent fan-outs;
//! * the pool is never torn down; its parked threads die with the process.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::panic::AssertUnwindSafe;
use std::sync::{Condvar, Mutex, OnceLock};

thread_local! {
    /// Set while this thread is executing fan-out work (pool workers
    /// permanently, the calling thread while it participates), so nested
    /// fan-outs run inline instead of re-entering the pool.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of worker threads available to fan-outs (`available_parallelism`,
/// floored at 1). Exposed so callers can size work chunks consistently.
pub fn max_workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
        .max(1)
}

/// A type-erased fan-out job: each invocation pulls queue items until the
/// queue drains. Valid only between publish and retire (the publisher waits
/// for every participating worker before its stack frame unwinds).
#[derive(Clone, Copy)]
struct JobRef(*const (dyn Fn() + Sync));

// SAFETY: the pointee is `Sync` (it is only ever a `&(dyn Fn() + Sync)`),
// and the publisher keeps it alive while any worker can hold it.
unsafe impl Send for JobRef {}

/// Pool state guarded by one mutex.
struct PoolState {
    /// Generation counter; bumped on every publish so a worker never runs
    /// the same job twice.
    epoch: u64,
    /// The published job, cleared by the publisher at retire time.
    job: Option<JobRef>,
    /// Workers currently inside the job closure.
    active: usize,
    /// A worker panicked while running the current job.
    panicked: bool,
}

/// The process-wide persistent worker pool (see module docs).
struct WorkerPool {
    state: Mutex<PoolState>,
    /// Wakes parked workers when a job is published.
    work_ready: Condvar,
    /// Wakes the publisher when the last active worker leaves the job.
    work_done: Condvar,
    /// Held by the publishing thread for the duration of a fan-out;
    /// concurrent top-level fan-outs fail the `try_lock` and run inline.
    lease: Mutex<()>,
}

impl WorkerPool {
    fn new() -> Self {
        WorkerPool {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                active: 0,
                panicked: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
            lease: Mutex::new(()),
        }
    }
}

fn worker_loop(pool: &'static WorkerPool) {
    IN_WORKER.with(|w| w.set(true));
    let mut seen = 0u64;
    let mut st = pool.state.lock().expect("pool state poisoned");
    loop {
        if st.epoch != seen {
            seen = st.epoch;
            if let Some(job) = st.job {
                st.active += 1;
                drop(st);
                // SAFETY: the publisher waits for `active == 0` before its
                // frame (and the closure's borrows) can unwind.
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)() }));
                st = pool.state.lock().expect("pool state poisoned");
                st.active -= 1;
                if outcome.is_err() {
                    st.panicked = true;
                }
                if st.active == 0 {
                    pool.work_done.notify_all();
                }
                continue;
            }
        }
        st = pool.work_ready.wait(st).expect("pool state poisoned");
    }
}

/// The lazily spawned process-wide pool; `None` on single-core hosts
/// (everything runs inline there).
fn pool() -> Option<&'static WorkerPool> {
    static POOL: OnceLock<Option<&'static WorkerPool>> = OnceLock::new();
    *POOL.get_or_init(|| {
        let threads = max_workers().saturating_sub(1);
        if threads == 0 {
            return None;
        }
        let pool: &'static WorkerPool = Box::leak(Box::new(WorkerPool::new()));
        for i in 0..threads {
            std::thread::Builder::new()
                .name(format!("simcore-par-{i}"))
                .spawn(move || worker_loop(pool))
                .expect("failed to spawn pool worker");
        }
        Some(pool)
    })
}

/// Number of persistent pool threads (0 when everything runs inline).
/// The calling thread always works too, so peak fan-out concurrency is
/// `pool_size() + 1`.
pub fn pool_size() -> usize {
    if max_workers() <= 1 {
        0
    } else {
        max_workers() - 1
    }
}

/// Map `f` over `items` in parallel on the persistent pool (at most
/// `available_parallelism` threads), preserving input order.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with(items, || (), |(), item| f(item))
}

/// Map `f` over `items` in parallel, giving every participating thread a
/// private scratch value built by `init`. Results come back in input order.
///
/// `init` runs once per participating thread (not per item); `f` receives
/// the thread's scratch by mutable reference, so buffers allocated there
/// are reused across all items that thread processes. Threads that find the
/// queue already drained never call `init`.
pub fn parallel_map_with<S, T, R, I, F>(items: Vec<T>, init: I, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let n = items.len();
    // Run inline for trivial inputs and for *nested* fan-outs: when the
    // calling thread is already executing fan-out work, the outer call owns
    // the parallelism — re-entering the pool would deadlock on the lease
    // and oversubscribe the machine.
    if n <= 1 || IN_WORKER.with(Cell::get) {
        return run_inline(items, init, f);
    }
    let Some(pool) = pool() else {
        return run_inline(items, init, f);
    };
    // One fan-out at a time; a concurrent top-level caller runs inline
    // rather than blocking (results are index-ordered either way). A
    // poisoned lease (an earlier fan-out panicked while holding it) is
    // recovered, not treated as busy — the lease guards no data, so losing
    // the pool forever would be the only consequence of honoring poison.
    let _lease = match pool.lease.try_lock() {
        Ok(guard) => guard,
        Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
        Err(std::sync::TryLockError::WouldBlock) => {
            return run_inline(items, init, f);
        }
    };

    let queue = Mutex::new(items.into_iter().enumerate());
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let slots = Mutex::new(&mut out);

    let run = || {
        // Take items while holding the lock only for the pull, never
        // during `f`; build scratch only after securing a first item.
        let next = || queue.lock().expect("queue poisoned").next();
        let Some((first_idx, first_item)) = next() else {
            return;
        };
        let mut scratch = init();
        let mut local: Vec<(usize, R)> = Vec::new();
        local.push((first_idx, f(&mut scratch, first_item)));
        while let Some((i, item)) = next() {
            local.push((i, f(&mut scratch, item)));
        }
        let mut slots = slots.lock().expect("results poisoned");
        for (i, r) in local {
            debug_assert!(slots[i].is_none(), "duplicate result for cell {i}");
            slots[i] = Some(r);
        }
    };
    // Erase the closure's borrow of this stack frame. SAFETY: this frame
    // does not return (or unwind) until `active == 0` below.
    let job: &'static (dyn Fn() + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(&run) };

    {
        let mut st = pool.state.lock().expect("pool state poisoned");
        st.epoch += 1;
        st.job = Some(JobRef(job));
        st.panicked = false;
    }
    pool.work_ready.notify_all();

    // The caller works too (marked so nested fan-outs inline). Catch a
    // local panic: the workers still borrow this frame, so unwinding must
    // wait for them.
    IN_WORKER.with(|w| w.set(true));
    let caller_outcome = std::panic::catch_unwind(AssertUnwindSafe(&run));
    IN_WORKER.with(|w| w.set(false));

    // Retire the job: stop late wakers, then wait out active workers.
    let worker_panicked;
    {
        let mut st = pool.state.lock().expect("pool state poisoned");
        st.job = None;
        while st.active > 0 {
            st = pool.work_done.wait(st).expect("pool state poisoned");
        }
        worker_panicked = st.panicked;
        st.panicked = false;
    }

    if let Err(payload) = caller_outcome {
        std::panic::resume_unwind(payload);
    }
    assert!(
        !worker_panicked,
        "a pool worker panicked during parallel_map"
    );
    out.into_iter()
        .map(|r| r.expect("every cell produced a result"))
        .collect()
}

/// Fan a closure out over mutable shards of caller-owned state, returning
/// each shard's output in shard order.
///
/// Each shard is processed exactly once by exactly one thread; the closure
/// receives the shard index and exclusive access to the shard. Because every
/// mutation lands in state the shard owns, the outcome is a pure function of
/// `(shard contents, f)` — identical whether the fan-out ran on the whole
/// pool, inline (nested or contested), or on a single-core host. Callers
/// that need randomness inside `f` must keep the RNG streams *inside the
/// shards* (see the module docs); that is what makes parallel protocol
/// rounds reproduce their serial equivalents bit for bit.
pub fn parallel_shard_map<S, R, F>(shards: &mut [S], f: F) -> Vec<R>
where
    S: Send,
    R: Send,
    F: Fn(usize, &mut S) -> R + Sync,
{
    let refs: Vec<(usize, &mut S)> = shards.iter_mut().enumerate().collect();
    parallel_map(refs, |(i, shard)| f(i, shard))
}

/// The canonical contiguous partition of `n` items into at most `shards`
/// near-equal spans: `ceil(n / shards)` items per shard (the final span
/// takes the remainder). Returns the non-empty `start..end` ranges.
///
/// Shard boundaries are a pure function of `(n, shards)`, so two runs that
/// agree on the shard count agree on which shard owns which item — the
/// anchor for reproducible sharded state. With `shards >= n` every item
/// gets its own span; `shards = 1` yields the serial layout.
///
/// # Panics
/// Panics if `shards == 0` (an empty partition of non-empty state has no
/// meaning; pass 1 for serial layout).
pub fn shard_spans(n: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    assert!(shards > 0, "shard_spans needs at least one shard");
    if n == 0 {
        return Vec::new();
    }
    let per = n.div_ceil(shards);
    (0..n.div_ceil(per))
        .map(|k| k * per..((k + 1) * per).min(n))
        .collect()
}

/// Serial fallback shared by all inline paths.
fn run_inline<S, T, R, I, F>(items: Vec<T>, init: I, f: F) -> Vec<R>
where
    I: Fn() -> S,
    F: Fn(&mut S, T) -> R,
{
    let mut scratch = init();
    items
        .into_iter()
        .map(|item| f(&mut scratch, item))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::thread::ThreadId;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(empty.is_empty());
        assert_eq!(parallel_map(vec![7], |x: i32| x + 1), vec![8]);
    }

    #[test]
    fn heavy_closure_runs_once_per_item() {
        let calls = AtomicU32::new(0);
        let out = parallel_map((0..32).collect(), |x: u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 32);
        assert_eq!(calls.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn non_copy_items_move_through() {
        let items: Vec<String> = (0..10).map(|i| format!("s{i}")).collect();
        let out = parallel_map(items, |s| s.len());
        assert_eq!(out, vec![2; 10]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        // cells with wildly different costs must still land in order
        let out = parallel_map((0..24u64).collect(), |x| {
            if x % 3 == 0 {
                // burn a little CPU
                let mut acc = 0u64;
                for i in 0..50_000 {
                    acc = acc.wrapping_add(i ^ x);
                }
                std::hint::black_box(acc);
            }
            x * 10
        });
        assert_eq!(out, (0..24u64).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn scratch_is_per_worker_and_reused() {
        // Each participating thread builds exactly one scratch; the number
        // of scratches must not exceed the available concurrency and every
        // item must be seen exactly once.
        let inits = AtomicU32::new(0);
        let out = parallel_map_with(
            (0..64u32).collect(),
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u32 // per-worker processed counter
            },
            |seen, x| {
                *seen += 1;
                (x, *seen)
            },
        );
        let total: u32 = out.iter().map(|&(_, seen)| u32::from(seen >= 1)).sum();
        assert_eq!(total, 64);
        let scratches = inits.load(Ordering::Relaxed) as usize;
        assert!(scratches <= pool_size() + 1);
        // order preserved
        for (i, &(x, _)) in out.iter().enumerate() {
            assert_eq!(x as usize, i);
        }
    }

    #[test]
    fn nested_fan_out_runs_inline() {
        // A parallel_map inside fan-out work must not re-enter the pool:
        // the inner call sees the worker marker and stays on-thread.
        let inner_inits = AtomicU32::new(0);
        let out = parallel_map((0..8u32).collect(), |x| {
            let inner = parallel_map_with(
                (0..4u32).collect(),
                || {
                    inner_inits.fetch_add(1, Ordering::Relaxed);
                },
                |(), y| y + x,
            );
            inner.iter().sum::<u32>()
        });
        assert_eq!(out.len(), 8);
        // one scratch per inner call (inline), never more
        assert_eq!(inner_inits.load(Ordering::Relaxed), 8);
        for (x, total) in out.iter().enumerate() {
            assert_eq!(*total, 6 + 4 * x as u32);
        }
    }

    #[test]
    fn scratch_init_runs_inline_for_tiny_inputs() {
        let out = parallel_map_with(vec![5u32], || vec![0u8; 16], |buf, x| x + buf.len() as u32);
        assert_eq!(out, vec![21]);
    }

    #[test]
    fn pool_threads_persist_across_fanouts() {
        // Many successive fan-outs must reuse the same pool threads: the
        // set of distinct thread ids observed over 20 fan-outs is bounded
        // by pool size + callers, whereas spawn-per-fan-out designs mint
        // fresh ids every time (ThreadId is never reused).
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        for round in 0..20u64 {
            let out = parallel_map((0..64u64).collect(), |x| {
                seen.lock().unwrap().insert(std::thread::current().id());
                // enough work that pool threads actually wake and engage
                let mut acc = 0u64;
                for i in 0..5_000 {
                    acc = acc.wrapping_add(i ^ x ^ round);
                }
                std::hint::black_box(acc);
                x
            });
            assert_eq!(out.len(), 64);
        }
        let distinct = seen.lock().unwrap().len();
        assert!(
            distinct <= pool_size() + 1,
            "saw {distinct} distinct threads over 20 fan-outs (pool size {})",
            pool_size()
        );
    }

    #[test]
    fn concurrent_top_level_fanouts_all_complete() {
        // Several threads fan out at once: one wins the pool lease, the
        // rest run inline — all must produce correct, ordered results.
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4u64)
                .map(|t| {
                    scope.spawn(move || parallel_map((0..50u64).collect(), move |x| x * 3 + t))
                })
                .collect();
            for (t, h) in handles.into_iter().enumerate() {
                let out = h.join().expect("fan-out thread panicked");
                assert_eq!(
                    out,
                    (0..50u64).map(|x| x * 3 + t as u64).collect::<Vec<_>>()
                );
            }
        });
    }

    #[test]
    fn shard_map_mutates_every_shard_once() {
        let mut shards: Vec<Vec<u64>> = (0..9).map(|i| vec![i; 4]).collect();
        let sums = parallel_shard_map(&mut shards, |idx, shard| {
            for v in shard.iter_mut() {
                *v += 100;
            }
            (idx, shard.iter().sum::<u64>())
        });
        // outputs in shard order, each shard visited exactly once
        for (k, &(idx, sum)) in sums.iter().enumerate() {
            assert_eq!(idx, k);
            assert_eq!(sum, 4 * (100 + k as u64));
        }
        // mutations landed in the caller's state
        for (k, shard) in shards.iter().enumerate() {
            assert!(shard.iter().all(|&v| v == 100 + k as u64));
        }
    }

    #[test]
    fn shard_map_with_shard_owned_rng_is_scheduling_independent() {
        // RNG streams owned by the shards: the draws each shard makes are a
        // pure function of its stream, so any interleaving of shards across
        // workers produces identical output. Compare a (potentially)
        // parallel run against a strictly serial fold.
        use crate::rng::SeedSplitter;
        let splitter = SeedSplitter::new(99);
        let mk = || -> Vec<crate::rng::RngStream> {
            (0..16).map(|i| splitter.stream("shard", i)).collect()
        };
        let mut parallel_shards = mk();
        let par_out = parallel_shard_map(&mut parallel_shards, |_, rng| {
            (0..100)
                .map(|_| rng.next_raw())
                .fold(0u64, u64::wrapping_add)
        });
        let serial_out: Vec<u64> = mk()
            .iter_mut()
            .map(|rng| {
                (0..100)
                    .map(|_| rng.next_raw())
                    .fold(0u64, u64::wrapping_add)
            })
            .collect();
        assert_eq!(par_out, serial_out);
    }

    #[test]
    fn shard_spans_cover_exactly_once() {
        for n in [0usize, 1, 7, 64, 1000] {
            for shards in [1usize, 2, 3, 7, 64, 1000] {
                let spans = shard_spans(n, shards);
                assert!(spans.len() <= shards);
                let mut covered = 0usize;
                for (k, span) in spans.iter().enumerate() {
                    assert_eq!(
                        span.start, covered,
                        "gap before span {k} (n={n}, shards={shards})"
                    );
                    assert!(span.end > span.start, "empty span {k}");
                    covered = span.end;
                }
                assert_eq!(covered, n, "spans must cover 0..{n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn shard_spans_zero_shards_panics() {
        shard_spans(10, 0);
    }

    #[test]
    fn panic_in_closure_propagates_and_pool_survives() {
        let result = std::panic::catch_unwind(|| {
            parallel_map((0..32u32).collect(), |x| {
                if x == 13 {
                    panic!("boom at {x}");
                }
                x
            })
        });
        assert!(result.is_err(), "panic in the mapped closure must surface");
        // The pool must still serve subsequent fan-outs *in parallel*: the
        // panic above unwound through the publisher while it held the pool
        // lease, and a poisoned lease must be recovered, not treated as
        // "busy forever". A single attempt can legitimately run inline
        // (a concurrently running test may hold the lease at that instant),
        // so retry: with a poisoned-and-ignored lease every attempt would
        // stay single-threaded, while a healthy pool engages quickly.
        if pool_size() == 0 {
            return;
        }
        let items = 2 * (pool_size() + 1);
        for attempt in 0..50 {
            let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
            let out = parallel_map((0..items as u32).collect(), |x| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(2));
                x + 1
            });
            assert_eq!(out, (1..=items as u32).collect::<Vec<_>>());
            if seen.lock().unwrap().len() > 1 {
                return; // pool engaged — lease recovered
            }
            // lease presumably held by a sibling test; back off and retry
            std::thread::sleep(std::time::Duration::from_millis(2 * attempt + 1));
        }
        panic!("pool never parallelized again after a panic (lease left poisoned?)");
    }
}

//! Measurement infrastructure: counters, per-kind message accounting and
//! time-bucketed series.
//!
//! Every overhead number in the paper is a count of control messages,
//! sometimes split by kind (contact-selection vs backtracking vs
//! maintenance) and sometimes bucketed over time (Figs 10–13). This module
//! provides exactly those aggregations, independent of any protocol.

use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// A plain monotonically increasing counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }
    /// Increment by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }
    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }
    /// Current value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Classification of every control message the reproduction can emit.
///
/// The variants mirror the paper's overhead taxonomy (§III.B "Overhead",
/// §IV.B) plus the baseline schemes of Fig 15.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MsgKind {
    /// Contact Selection Query forward hop (§III.C.1).
    Csq,
    /// CSQ backtracking hop (DFS retreat) — Figs 4, 12.
    CsqBacktrack,
    /// Path returned from a newly selected contact to the source.
    CsqReply,
    /// Periodic contact validation hop (§III.C.3).
    Validation,
    /// Validation acknowledgement hop back to the source.
    ValidationReply,
    /// Destination Search Query hop (§III.C.4).
    Dsq,
    /// DSQ answer hop carrying the path to the target.
    DsqReply,
    /// Standing-query resolution hop: the DSQ-style search a long-lived
    /// subscription runs when first registered or re-resolved after a break.
    StandingDsq,
    /// Standing-query resolution answer hop back to the subscriber.
    StandingReply,
    /// Standing-query revalidation hop: probing the cached contact chain
    /// after mobility or a validation round touched it.
    StandingProbe,
    /// Flooding baseline transmission.
    Flood,
    /// Bordercast (ZRP IERP) transmission.
    Bordercast,
    /// Expanding-ring-search transmission (ablation baseline).
    ExpandingRing,
    /// Proactive intra-neighborhood routing update (DSDV substrate; not
    /// counted in the paper's overhead figures, tracked for completeness).
    RoutingUpdate,
}

impl MsgKind {
    /// All variants, for iteration in reports (declaration order, which is
    /// also `Ord` order — `in_bucket_where` relies on the first and last
    /// entries being the `Ord` extremes).
    pub const ALL: [MsgKind; 14] = [
        MsgKind::Csq,
        MsgKind::CsqBacktrack,
        MsgKind::CsqReply,
        MsgKind::Validation,
        MsgKind::ValidationReply,
        MsgKind::Dsq,
        MsgKind::DsqReply,
        MsgKind::StandingDsq,
        MsgKind::StandingReply,
        MsgKind::StandingProbe,
        MsgKind::Flood,
        MsgKind::Bordercast,
        MsgKind::ExpandingRing,
        MsgKind::RoutingUpdate,
    ];

    /// Is this message part of CARD's *contact selection* overhead
    /// (including backtracking), as counted in §IV.B item 1?
    pub fn is_selection(self) -> bool {
        matches!(
            self,
            MsgKind::Csq | MsgKind::CsqBacktrack | MsgKind::CsqReply
        )
    }

    /// Is this message part of CARD's *contact maintenance* overhead
    /// (§IV.B item 2)?
    pub fn is_maintenance(self) -> bool {
        matches!(self, MsgKind::Validation | MsgKind::ValidationReply)
    }

    /// Is this message part of query traffic (Fig 15)?
    pub fn is_query(self) -> bool {
        matches!(
            self,
            MsgKind::Dsq
                | MsgKind::DsqReply
                | MsgKind::Flood
                | MsgKind::Bordercast
                | MsgKind::ExpandingRing
        )
    }

    /// Is this message part of standing-query upkeep (resolution,
    /// re-resolution or cached-path revalidation of long-lived
    /// subscriptions)?
    pub fn is_standing(self) -> bool {
        matches!(
            self,
            MsgKind::StandingDsq | MsgKind::StandingReply | MsgKind::StandingProbe
        )
    }
}

/// Per-kind, time-bucketed message statistics.
///
/// `bucket_width` controls the resolution of the time series (the paper
/// plots 2-second buckets). Counts are recorded with [`MsgStats::record`]
/// at a given virtual time and can be read back either as totals or as a
/// per-bucket series.
#[derive(Clone, Debug)]
pub struct MsgStats {
    bucket_width: SimDuration,
    totals: BTreeMap<MsgKind, u64>,
    /// (bucket index, kind) -> count
    buckets: BTreeMap<(u64, MsgKind), u64>,
}

impl MsgStats {
    /// New statistics with the given time-bucket width.
    ///
    /// # Panics
    /// Panics if `bucket_width` is zero.
    pub fn new(bucket_width: SimDuration) -> Self {
        assert!(!bucket_width.is_zero(), "bucket width must be positive");
        MsgStats {
            bucket_width,
            totals: BTreeMap::new(),
            buckets: BTreeMap::new(),
        }
    }

    /// Record `count` messages of `kind` at virtual time `at`.
    pub fn record_n(&mut self, at: SimTime, kind: MsgKind, count: u64) {
        if count == 0 {
            return;
        }
        *self.totals.entry(kind).or_insert(0) += count;
        let idx = at.ticks() / self.bucket_width.ticks();
        *self.buckets.entry((idx, kind)).or_insert(0) += count;
    }

    /// Record one message of `kind` at virtual time `at`.
    #[inline]
    pub fn record(&mut self, at: SimTime, kind: MsgKind) {
        self.record_n(at, kind, 1);
    }

    /// Total messages of `kind` over the whole run.
    pub fn total(&self, kind: MsgKind) -> u64 {
        self.totals.get(&kind).copied().unwrap_or(0)
    }

    /// Total over all kinds satisfying `pred`.
    pub fn total_where(&self, pred: impl Fn(MsgKind) -> bool) -> u64 {
        self.totals
            .iter()
            .filter(|(k, _)| pred(**k))
            .map(|(_, v)| v)
            .sum()
    }

    /// Grand total over every kind.
    pub fn grand_total(&self) -> u64 {
        self.totals.values().sum()
    }

    /// Count of `kind` within time bucket `idx` (bucket `i` covers
    /// `[i*width, (i+1)*width)`).
    pub fn in_bucket(&self, idx: u64, kind: MsgKind) -> u64 {
        self.buckets.get(&(idx, kind)).copied().unwrap_or(0)
    }

    /// Count within bucket `idx` over all kinds satisfying `pred`.
    pub fn in_bucket_where(&self, idx: u64, pred: impl Fn(MsgKind) -> bool) -> u64 {
        self.buckets
            .range((idx, MsgKind::ALL[0])..=(idx, *MsgKind::ALL.last().unwrap()))
            .filter(|((_, k), _)| pred(*k))
            .map(|(_, v)| v)
            .sum()
    }

    /// Index of the last non-empty bucket, if any message was recorded.
    pub fn last_bucket(&self) -> Option<u64> {
        self.buckets.keys().map(|(i, _)| *i).max()
    }

    /// The configured bucket width.
    pub fn bucket_width(&self) -> SimDuration {
        self.bucket_width
    }

    /// Series of per-bucket counts for kinds satisfying `pred`, from bucket
    /// 0 through the last non-empty bucket (inclusive).
    pub fn series_where(&self, pred: impl Fn(MsgKind) -> bool + Copy) -> Vec<u64> {
        match self.last_bucket() {
            None => Vec::new(),
            Some(last) => (0..=last).map(|i| self.in_bucket_where(i, pred)).collect(),
        }
    }

    /// Merge the contents of `other` into `self` (bucket widths must match).
    pub fn merge(&mut self, other: &MsgStats) {
        assert_eq!(
            self.bucket_width, other.bucket_width,
            "cannot merge MsgStats with different bucket widths"
        );
        for (k, v) in &other.totals {
            *self.totals.entry(*k).or_insert(0) += v;
        }
        for (key, v) in &other.buckets {
            *self.buckets.entry(*key).or_insert(0) += v;
        }
    }
}

impl Default for MsgStats {
    fn default() -> Self {
        MsgStats::new(SimDuration::from_secs(2))
    }
}

/// A simple append-only `(time, value)` series for scalar observations
/// (e.g., "total contacts selected" over time, Fig 13).
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// New empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Append an observation. Times must be non-decreasing.
    ///
    /// # Panics
    /// Panics if `at` precedes the previous observation.
    pub fn push(&mut self, at: SimTime, value: f64) {
        if let Some((last, _)) = self.points.last() {
            assert!(*last <= at, "TimeSeries observations must be time-ordered");
        }
        self.points.push((at, value));
    }

    /// All recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Latest value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|(_, v)| *v)
    }
}

/// A fixed-bucket histogram over percentages (0–100], as used for every
/// reachability distribution figure (Figs 5–9).
///
/// Bucket `i` (0-based) covers `(i*width, (i+1)*width]`; a value of exactly
/// zero is counted in the first bucket.
#[derive(Clone, Debug)]
pub struct PercentHistogram {
    width: f64,
    counts: Vec<u64>,
}

impl PercentHistogram {
    /// Histogram with buckets of `width` percent (the paper uses 5%).
    ///
    /// # Panics
    /// Panics unless `0 < width <= 100` and divides 100 evenly enough to
    /// give at least one bucket.
    pub fn new(width: f64) -> Self {
        assert!(
            width > 0.0 && width <= 100.0,
            "invalid bucket width {width}"
        );
        let n = (100.0 / width).ceil() as usize;
        PercentHistogram {
            width,
            counts: vec![0; n],
        }
    }

    /// Record one observation of `pct` (clamped to [0, 100]).
    pub fn record(&mut self, pct: f64) {
        let pct = pct.clamp(0.0, 100.0);
        let idx = if pct == 0.0 {
            0
        } else {
            ((pct / self.width).ceil() as usize - 1).min(self.counts.len() - 1)
        };
        self.counts[idx] += 1;
    }

    /// Bucket counts, lowest bucket first.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Upper edge (inclusive) of bucket `i`, e.g. 5.0, 10.0, … for width 5.
    pub fn upper_edge(&self, i: usize) -> f64 {
        (i as f64 + 1.0) * self.width
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean of the recorded distribution, approximated by bucket mid-points.
    pub fn approx_mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * (self.upper_edge(i) - self.width / 2.0))
            .sum();
        sum / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn msg_kind_taxonomy() {
        assert!(MsgKind::Csq.is_selection());
        assert!(MsgKind::CsqBacktrack.is_selection());
        assert!(MsgKind::CsqReply.is_selection());
        assert!(MsgKind::Validation.is_maintenance());
        assert!(MsgKind::ValidationReply.is_maintenance());
        assert!(MsgKind::Dsq.is_query());
        assert!(MsgKind::Flood.is_query());
        assert!(MsgKind::StandingDsq.is_standing());
        assert!(MsgKind::StandingReply.is_standing());
        assert!(MsgKind::StandingProbe.is_standing());
        assert!(!MsgKind::StandingDsq.is_query());
        assert!(!MsgKind::RoutingUpdate.is_selection());
        assert!(!MsgKind::RoutingUpdate.is_maintenance());
        assert!(!MsgKind::RoutingUpdate.is_query());
        assert!(!MsgKind::RoutingUpdate.is_standing());
        // taxonomy is a partition over the kinds it covers
        for k in MsgKind::ALL {
            let cats = k.is_selection() as u8
                + k.is_maintenance() as u8
                + k.is_query() as u8
                + k.is_standing() as u8;
            assert!(cats <= 1, "{k:?} in multiple categories");
        }
        // `in_bucket_where` ranges over `(idx, ALL[0])..=(idx, ALL[last])`,
        // so the array must stay in declaration (= `Ord`) order.
        for w in MsgKind::ALL.windows(2) {
            assert!(w[0] < w[1], "MsgKind::ALL out of Ord order at {w:?}");
        }
    }

    #[test]
    fn record_and_totals() {
        let mut s = MsgStats::new(SimDuration::from_secs(2));
        s.record(SimTime::from_secs(1), MsgKind::Csq);
        s.record(SimTime::from_secs(1), MsgKind::Csq);
        s.record_n(SimTime::from_secs(3), MsgKind::CsqBacktrack, 5);
        assert_eq!(s.total(MsgKind::Csq), 2);
        assert_eq!(s.total(MsgKind::CsqBacktrack), 5);
        assert_eq!(s.total(MsgKind::Validation), 0);
        assert_eq!(s.grand_total(), 7);
        assert_eq!(s.total_where(MsgKind::is_selection), 7);
    }

    #[test]
    fn bucketing() {
        let mut s = MsgStats::new(SimDuration::from_secs(2));
        s.record(SimTime::from_millis(0), MsgKind::Csq); // bucket 0
        s.record(SimTime::from_millis(1999), MsgKind::Csq); // bucket 0
        s.record(SimTime::from_millis(2000), MsgKind::Csq); // bucket 1
        s.record(SimTime::from_secs(9), MsgKind::Validation); // bucket 4
        assert_eq!(s.in_bucket(0, MsgKind::Csq), 2);
        assert_eq!(s.in_bucket(1, MsgKind::Csq), 1);
        assert_eq!(s.in_bucket(4, MsgKind::Validation), 1);
        assert_eq!(s.last_bucket(), Some(4));
        let series = s.series_where(|k| k == MsgKind::Csq);
        assert_eq!(series, vec![2, 1, 0, 0, 0]);
        let all = s.series_where(|_| true);
        assert_eq!(all, vec![2, 1, 0, 0, 1]);
    }

    #[test]
    fn record_zero_is_noop() {
        let mut s = MsgStats::default();
        s.record_n(SimTime::ZERO, MsgKind::Dsq, 0);
        assert_eq!(s.grand_total(), 0);
        assert_eq!(s.last_bucket(), None);
        assert!(s.series_where(|_| true).is_empty());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MsgStats::new(SimDuration::from_secs(2));
        let mut b = MsgStats::new(SimDuration::from_secs(2));
        a.record(SimTime::from_secs(1), MsgKind::Csq);
        b.record(SimTime::from_secs(1), MsgKind::Csq);
        b.record(SimTime::from_secs(5), MsgKind::Dsq);
        a.merge(&b);
        assert_eq!(a.total(MsgKind::Csq), 2);
        assert_eq!(a.total(MsgKind::Dsq), 1);
        assert_eq!(a.in_bucket(0, MsgKind::Csq), 2);
        assert_eq!(a.in_bucket(2, MsgKind::Dsq), 1);
    }

    #[test]
    #[should_panic(expected = "different bucket widths")]
    fn merge_width_mismatch_panics() {
        let mut a = MsgStats::new(SimDuration::from_secs(1));
        let b = MsgStats::new(SimDuration::from_secs(2));
        a.merge(&b);
    }

    #[test]
    fn timeseries_ordering_enforced() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(1), 1.0);
        ts.push(SimTime::from_secs(1), 2.0); // equal time allowed
        ts.push(SimTime::from_secs(2), 3.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.last_value(), Some(3.0));
        assert!(!ts.is_empty());
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn timeseries_rejects_backwards() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(2), 1.0);
        ts.push(SimTime::from_secs(1), 2.0);
    }

    #[test]
    fn percent_histogram_buckets() {
        let mut h = PercentHistogram::new(5.0);
        assert_eq!(h.counts().len(), 20);
        h.record(0.0); // first bucket
        h.record(0.1); // (0,5]
        h.record(5.0); // (0,5]
        h.record(5.1); // (5,10]
        h.record(100.0); // last
        h.record(250.0); // clamped to last
        assert_eq!(h.counts()[0], 3);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[19], 2);
        assert_eq!(h.total(), 6);
        assert_eq!(h.upper_edge(0), 5.0);
        assert_eq!(h.upper_edge(19), 100.0);
    }

    #[test]
    fn percent_histogram_mean() {
        let mut h = PercentHistogram::new(10.0);
        h.record(10.0); // bucket (0,10], midpoint 5
        h.record(20.0); // bucket (10,20], midpoint 15
        assert!((h.approx_mean() - 10.0).abs() < 1e-9);
        let empty = PercentHistogram::new(10.0);
        assert_eq!(empty.approx_mean(), 0.0);
    }
}

//! # sim-core — deterministic discrete-event simulation engine
//!
//! This crate is the substrate that replaces NS-2 in the CARD reproduction
//! (see `ARCHITECTURE.md` at the repo root for where it sits in the
//! 4-layer stack). It provides:
//!
//! * [`time::SimTime`] / [`time::SimDuration`] — an integer virtual clock
//!   (microsecond ticks) so event ordering is exact and platform-independent;
//! * [`event::EventQueue`] — a stable priority queue: events pop in time
//!   order, FIFO among equal timestamps;
//! * [`engine::Engine`] — the simulation driver. The engine is *pull-based*:
//!   the caller pops `(time, event)` pairs and handles them, scheduling new
//!   events back onto the engine. This avoids callback-borrow gymnastics and
//!   keeps protocol state fully owned by the caller;
//! * [`rng`] — deterministic, splittable random-number streams
//!   (xoshiro256++, seeded via SplitMix64) so every node/purpose pair gets an
//!   independent reproducible stream;
//! * [`stats`] — counters, per-kind message accounting and time-bucketed
//!   series used for every overhead figure in the paper;
//! * [`trace`] — an optional bounded event trace for protocol debugging;
//! * [`util`] — a compact fixed-capacity bitset (per-query reachability
//!   sets) and a tiny Bloom filter ([`util::BloomSet`], the fast-negative
//!   half of the O(zone) neighborhood membership tests);
//! * [`par`] — order-preserving fork/join parallelism: owned-item maps
//!   with per-worker scratch buffers (the topology refresh idiom) and
//!   mutable-shard fan-outs ([`par::parallel_shard_map`], the sharded
//!   CARD protocol-state idiom), used by the experiment sweeps *and* by
//!   the layers below. Fan-outs execute on a process-wide persistent
//!   worker pool: `available_parallelism − 1` threads spawned lazily on
//!   first use, parked on a condvar between fan-outs (publish/retire
//!   costs ~1 µs instead of ~100 µs of scoped thread spawn), with the
//!   calling thread participating in every fan-out and nested fan-outs
//!   automatically inlined. The pool is never torn down; its parked
//!   threads die with the process.
//! * [`plane`] — the cross-shard message plane: shard-owned outboxes and
//!   mailboxes with batched, double-buffered exchange rounds and a
//!   deterministic `(dst shard, src shard, send seq)` delivery order,
//!   the seam along which in-process shards become process-level ones.
//! * [`faults`] — deterministic fault injection: seeded [`faults::FaultPlan`]s
//!   scheduling node crash/rejoin events, a frozen partition window, and
//!   content-keyed per-message drop/delay verdicts applied at the plane's
//!   exchange boundary, all replayable from `(seed, plan)` at any shard or
//!   worker count.
//!
//! The engine knows nothing about networks; `net-topology`, `manet-routing`
//! and `card-core` build the MANET world on top of it.
//!
//! ## Example
//!
//! ```
//! use sim_core::prelude::*;
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping(u32), Stop }
//!
//! let mut engine = Engine::new();
//! engine.schedule_at(SimTime::from_secs(1), Ev::Ping(1));
//! engine.schedule_at(SimTime::from_secs(2), Ev::Stop);
//!
//! let mut pings = 0;
//! while let Some((t, ev)) = engine.next_event() {
//!     match ev {
//!         Ev::Ping(n) => {
//!             pings += n;
//!             // reschedule relative to the current virtual time
//!             if t < SimTime::from_secs(2) {
//!                 engine.schedule_in(SimDuration::from_millis(500), Ev::Ping(1));
//!             }
//!         }
//!         Ev::Stop => break,
//!     }
//! }
//! assert!(pings >= 2);
//! ```

#![deny(missing_docs)]
pub mod engine;
pub mod event;
pub mod faults;
pub mod par;
pub mod plane;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;
pub mod util;

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::engine::Engine;
    pub use crate::event::EventQueue;
    pub use crate::faults::{FaultConfig, FaultPlan, FaultState, FaultVerdict};
    pub use crate::par::{parallel_map, parallel_map_with, parallel_shard_map};
    pub use crate::plane::{Mailbox, MessagePlane, Outbox, PlaneStats};
    pub use crate::rng::{RngStream, SeedSplitter};
    pub use crate::stats::{Counter, MsgStats, TimeSeries};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{Trace, TraceCategory};
    pub use crate::util::{BitSet, BloomSet};
}

pub use engine::Engine;
pub use par::{parallel_map, parallel_map_with};
pub use rng::{RngStream, SeedSplitter};
pub use time::{SimDuration, SimTime};

//! Virtual time for the discrete-event engine.
//!
//! Time is kept as an integer number of **microseconds** so that event
//! ordering is exact (no floating-point ties) and identical across platforms.
//! A microsecond tick is far below any timescale in the CARD evaluation
//! (per-hop latencies are milliseconds, validation periods are seconds).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of virtual-time ticks per second (1 tick = 1 µs).
pub const TICKS_PER_SEC: u64 = 1_000_000;

/// An absolute point in virtual time (µs since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time (µs).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation origin, t = 0.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microsecond ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * TICKS_PER_SEC)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from a (non-negative, finite) floating-point second count.
    ///
    /// # Panics
    /// Panics if `secs` is negative, NaN or not representable.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime::from_secs_f64 requires a finite non-negative value, got {secs}"
        );
        SimTime((secs * TICKS_PER_SEC as f64).round() as u64)
    }

    /// Raw microsecond ticks since the origin.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Whole seconds since the origin (truncating).
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / TICKS_PER_SEC
    }

    /// Seconds since the origin as `f64`.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self` (time never flows backwards
    /// inside the engine, so this indicates a logic error).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier:?}) is after self ({self:?})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating difference: zero if `earlier` is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw microsecond ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * TICKS_PER_SEC)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from a (non-negative, finite) floating-point second count.
    ///
    /// # Panics
    /// Panics if `secs` is negative, NaN or not representable.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration::from_secs_f64 requires a finite non-negative value, got {secs}"
        );
        SimDuration((secs * TICKS_PER_SEC as f64).round() as u64)
    }

    /// Raw microsecond ticks.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Seconds as `f64`.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer multiplication by a scalar count.
    #[inline]
    pub const fn times(self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div for SimDuration {
    type Output = u64;
    /// How many whole `rhs` spans fit in `self` (integer division).
    #[inline]
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_equivalences() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_ticks(1_000));
        assert_eq!(
            SimDuration::from_secs(1),
            SimDuration::from_micros(TICKS_PER_SEC)
        );
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::from_millis(500));
        assert_eq!(
            SimDuration::from_secs_f64(1.25),
            SimDuration::from_millis(1250)
        );
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t0 = SimTime::from_secs(3);
        let d = SimDuration::from_millis(750);
        let t1 = t0 + d;
        assert_eq!(t1.since(t0), d);
        assert_eq!(t1 - d, t0);
        let mut t2 = t0;
        t2 += d;
        assert_eq!(t2, t1);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_secs(2);
        let b = SimDuration::from_millis(500);
        assert_eq!(a + b, SimDuration::from_millis(2500));
        assert_eq!(a - b, SimDuration::from_millis(1500));
        assert_eq!(b * 4, a);
        assert_eq!(a / 4, b);
        assert_eq!(a / b, 4);
        assert_eq!(b.times(2), SimDuration::from_secs(1));
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::from_ticks(1));
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::from_secs(2) < SimTime::MAX);
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::from_ticks(1).is_zero());
    }

    #[test]
    fn saturating_since_future_is_zero() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_when_backwards() {
        let _ = SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn float_conversions() {
        let t = SimTime::from_millis(1500);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(t.as_secs(), 1);
        let d = SimDuration::from_millis(250);
        assert!((d.as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn checked_add_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_ticks(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_millis(42)), "0.042s");
        assert_eq!(format!("{:?}", SimTime::from_secs(1)), "t=1.000000s");
    }
}

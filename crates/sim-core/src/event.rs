//! Stable time-ordered event queue.
//!
//! The queue is a binary heap keyed on `(time, sequence)`. The monotonically
//! increasing sequence number guarantees **FIFO order among events scheduled
//! for the same instant**, which makes simulations fully deterministic: two
//! runs with the same seed schedule the same events in the same order and
//! therefore pop them in the same order.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry: the payload plus its ordering key.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the *earliest* entry.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of `(SimTime, E)` pairs with stable FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Create an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedule `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Timestamp and payload of the earliest pending event without removing
    /// it. The FIFO tie-break applies: among equal timestamps this is the
    /// entry `pop` would return next.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.heap.peek().map(|e| (e.time, &e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), 5);
        q.push(SimTime::from_secs(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_secs(3), 3);
        q.push(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 5);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(2), ());
        q.push(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_returns_the_next_pop_on_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.push(t, "first");
        q.push(t, "second");
        assert_eq!(q.peek(), Some((t, &"first")));
        assert_eq!(q.pop(), Some((t, "first")));
        assert_eq!(q.peek(), Some((t, &"second")));
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(16);
        q.push(SimTime::from_millis(10), 'x');
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), 'x')));
    }

    proptest! {
        /// Property: popping yields a non-decreasing time sequence, and among
        /// equal timestamps the original insertion order is preserved.
        #[test]
        fn prop_global_order_and_stability(times in proptest::collection::vec(0u64..50, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_ticks(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt, "time went backwards");
                    if t == lt {
                        prop_assert!(idx > lidx, "FIFO violated for equal timestamps");
                    }
                }
                last = Some((t, idx));
            }
        }

        /// Property: the queue returns exactly the multiset that was pushed.
        #[test]
        fn prop_conservation(times in proptest::collection::vec(0u64..1000, 0..100)) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.push(SimTime::ZERO + SimDuration::from_ticks(t), t);
            }
            let mut popped: Vec<u64> = Vec::new();
            while let Some((_, v)) = q.pop() {
                popped.push(v);
            }
            let mut expect = times.clone();
            expect.sort_unstable();
            prop_assert_eq!(popped, expect);
        }
    }
}

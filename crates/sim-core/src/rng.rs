//! Deterministic, splittable random-number streams.
//!
//! Reproducibility is a hard requirement for the experiment harness: the
//! same scenario seed must produce the same topology, the same mobility
//! traces and the same protocol decisions on every platform and every run.
//! We therefore implement the generator ourselves instead of relying on the
//! (version-dependent) algorithm behind `rand::rngs::SmallRng`:
//!
//! * [`RngStream`] — xoshiro256++ (Blackman & Vigna), a fast 256-bit-state
//!   generator with excellent statistical quality;
//! * [`SeedSplitter`] — SplitMix64-based derivation of independent
//!   sub-streams from a root seed and a (label, index) pair, so every
//!   node/purpose combination draws from its own stream. This keeps protocol
//!   decisions independent of event interleaving.
//!
//! `RngStream` implements [`rand::RngCore`], so the full `rand` distribution
//! API (`gen_range`, `Uniform`, shuffles, …) works on top of it.

use rand::RngCore;

/// SplitMix64 step — used for seeding and stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// xoshiro256++ pseudo-random generator with deterministic seeding.
#[derive(Clone, Debug)]
pub struct RngStream {
    s: [u64; 4],
}

impl RngStream {
    /// Create a stream from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state; SplitMix64 of any
        // seed cannot produce four zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        RngStream { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` using the high 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` via Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        // Lemire rejection sampling: unbiased and branch-light.
        let mut x = self.next_raw();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_raw();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` index in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.next_below(n as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Choose a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }
}

impl RngCore for RngStream {
    fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Derives independent named sub-streams from a root seed.
///
/// Streams are identified by a string label and a numeric index (typically a
/// node id), hashed together with the root seed through SplitMix64. Distinct
/// `(label, index)` pairs yield statistically independent streams.
#[derive(Clone, Copy, Debug)]
pub struct SeedSplitter {
    root: u64,
}

impl SeedSplitter {
    /// Create a splitter from the experiment's root seed.
    pub fn new(root_seed: u64) -> Self {
        SeedSplitter { root: root_seed }
    }

    /// The root seed.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Derive the 64-bit seed for `(label, index)`.
    pub fn derive_seed(&self, label: &str, index: u64) -> u64 {
        // FNV-1a over the label, then SplitMix64 mixing with root and index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut state = self.root.wrapping_mul(0x9E3779B97F4A7C15)
            ^ h.rotate_left(17)
            ^ index.wrapping_mul(0xD1B54A32D192ED03);
        let a = splitmix64(&mut state);
        let b = splitmix64(&mut state);
        a ^ b.rotate_left(32)
    }

    /// Derive a ready-to-use stream for `(label, index)`.
    pub fn stream(&self, label: &str, index: u64) -> RngStream {
        RngStream::seed_from_u64(self.derive_seed(label, index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = RngStream::seed_from_u64(42);
        let mut b = RngStream::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = RngStream::seed_from_u64(1);
        let mut b = RngStream::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_raw() == b.next_raw()).count();
        assert!(same < 4, "streams with different seeds should diverge");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = RngStream::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_bounds_and_coverage() {
        let mut r = RngStream::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn next_below_zero_panics() {
        RngStream::seed_from_u64(0).next_below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = RngStream::seed_from_u64(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut r = RngStream::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = RngStream::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50 elements should not stay in place"
        );
    }

    #[test]
    fn choose_empty_and_singleton() {
        let mut r = RngStream::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert_eq!(r.choose(&empty), None);
        assert_eq!(r.choose(&[42]), Some(&42));
    }

    #[test]
    fn splitter_streams_independent() {
        let sp = SeedSplitter::new(1234);
        let mut a = sp.stream("mobility", 0);
        let mut b = sp.stream("mobility", 1);
        let mut c = sp.stream("csq", 0);
        let ra: Vec<u64> = (0..8).map(|_| a.next_raw()).collect();
        let rb: Vec<u64> = (0..8).map(|_| b.next_raw()).collect();
        let rc: Vec<u64> = (0..8).map(|_| c.next_raw()).collect();
        assert_ne!(ra, rb);
        assert_ne!(ra, rc);
        assert_ne!(rb, rc);
        // Re-derivation reproduces exactly.
        let mut a2 = sp.stream("mobility", 0);
        let ra2: Vec<u64> = (0..8).map(|_| a2.next_raw()).collect();
        assert_eq!(ra, ra2);
    }

    #[test]
    fn rngcore_fill_bytes_all_lengths() {
        let mut r = RngStream::seed_from_u64(77);
        for len in 0..33 {
            let mut buf = vec![0u8; len];
            // disambiguate: proptest's prelude also globs an RngCore
            rand::RngCore::fill_bytes(&mut r, &mut buf);
            if len >= 16 {
                assert!(
                    buf.iter().any(|&b| b != 0),
                    "16+ random bytes all zero is implausible"
                );
            }
        }
    }

    #[test]
    fn range_f64_bounds() {
        let mut r = RngStream::seed_from_u64(13);
        for _ in 0..1000 {
            let x = r.range_f64(-5.0, 5.0);
            assert!((-5.0..5.0).contains(&x));
        }
    }

    proptest! {
        #[test]
        fn prop_next_below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
            let mut r = RngStream::seed_from_u64(seed);
            for _ in 0..32 {
                prop_assert!(r.next_below(n) < n);
            }
        }

        #[test]
        fn prop_derive_seed_stable(root in any::<u64>(), idx in any::<u64>()) {
            let sp = SeedSplitter::new(root);
            prop_assert_eq!(sp.derive_seed("x", idx), sp.derive_seed("x", idx));
        }
    }
}

//! Small performance-oriented utilities shared across the workspace.

/// A tiny Bloom filter over `u64` keys, sized to an expected element count.
///
/// The zone-local neighborhood tables keep a sorted member array per node
/// (O(zone) memory) instead of the former whole-network bitset (O(N) bits
/// per node). Membership tests then cost a binary search — unless a filter
/// answers "definitely not a member" first, which is the common case for
/// the overlap checks contact selection hammers (the queried node is
/// usually far outside the zone). `BloomSet` is that filter: ~8 bits and
/// two probes per expected element, so a negative answer is two word reads
/// and a positive one falls through to the exact check.
///
/// False positives are possible by design (callers must confirm with an
/// exact structure); false negatives are not.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BloomSet {
    /// Power-of-two number of words, so probes mask instead of mod.
    words: Box<[u64]>,
}

impl BloomSet {
    /// Bits provisioned per expected element (two probe bits are drawn
    /// from a 64-bit mix per key).
    const BITS_PER_ELEMENT: usize = 8;

    /// A filter sized for about `expected` elements (~8 bits each, minimum
    /// 128 bits).
    pub fn with_capacity(expected: usize) -> Self {
        let words = (expected * Self::BITS_PER_ELEMENT)
            .div_ceil(64)
            .next_power_of_two()
            .max(2);
        BloomSet {
            words: vec![0u64; words].into_boxed_slice(),
        }
    }

    /// SplitMix64 finalizer: both probe positions come from one mix.
    #[inline]
    fn mix(key: u64) -> u64 {
        let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[inline]
    fn probes(&self, key: u64) -> (usize, u64, usize, u64) {
        let h = Self::mix(key);
        let bits = self.words.len() * 64;
        let b1 = (h as usize) & (bits - 1);
        let b2 = ((h >> 32) as usize) & (bits - 1);
        (b1 >> 6, 1u64 << (b1 & 63), b2 >> 6, 1u64 << (b2 & 63))
    }

    /// Record `key` in the filter.
    #[inline]
    pub fn insert(&mut self, key: u64) {
        let (w1, m1, w2, m2) = self.probes(key);
        self.words[w1] |= m1;
        self.words[w2] |= m2;
    }

    /// `false` means `key` was definitely never inserted; `true` means it
    /// *may* have been (confirm with an exact structure).
    #[inline]
    pub fn may_contain(&self, key: u64) -> bool {
        let (w1, m1, w2, m2) = self.probes(key);
        (self.words[w1] & m1 != 0) && (self.words[w2] & m2 != 0)
    }

    /// Remove every element (keeps the allocated size).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Heap bytes held by the filter.
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// A compact growable bitset over `usize` indices.
///
/// Reachability analysis unions many R-hop neighborhood sets per node
/// (Figs 5–9); doing that with hash sets would dominate the runtime of the
/// larger scenarios. A `Vec<u64>`-backed bitset makes the union a word-wise
/// OR.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Create a bitset able to hold indices `0..capacity`, all clear.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The index capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Set bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= capacity`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(
            i < self.capacity,
            "BitSet index {i} out of range {}",
            self.capacity
        );
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(
            i < self.capacity,
            "BitSet index {i} out of range {}",
            self.capacity
        );
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Test bit `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bits are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clear all bits.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// In-place union with `other` (capacities must match).
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "BitSet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place intersection with `other` (capacities must match).
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "BitSet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// Size of the intersection without materializing it.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// True if the two sets share at least one element. This is the hot
    /// "neighborhood overlap" predicate in contact selection.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterate over set indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Collect set indices into a vector.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn bloom_no_false_negatives() {
        let mut f = BloomSet::with_capacity(64);
        for k in 0..64u64 {
            f.insert(k * 7919);
        }
        for k in 0..64u64 {
            assert!(f.may_contain(k * 7919), "inserted key {k} reported absent");
        }
    }

    #[test]
    fn bloom_mostly_rejects_absent_keys() {
        let mut f = BloomSet::with_capacity(100);
        for k in 0..100u64 {
            f.insert(k);
        }
        // At ~8 bits/element and 2 probes the false-positive rate is a few
        // percent; well under half of a large absent sample may pass.
        let false_positives = (1_000u64..11_000).filter(|&k| f.may_contain(k)).count();
        assert!(
            false_positives < 2_000,
            "filter saturated: {false_positives}/10000 absent keys passed"
        );
    }

    #[test]
    fn bloom_clear_resets() {
        let mut f = BloomSet::with_capacity(10);
        f.insert(42);
        assert!(f.may_contain(42));
        f.clear();
        assert!(!f.may_contain(42));
        assert!(f.heap_bytes() >= 16);
    }

    #[test]
    fn bloom_zero_capacity_is_usable() {
        let mut f = BloomSet::with_capacity(0);
        assert!(!f.may_contain(5));
        f.insert(5);
        assert!(f.may_contain(5));
    }

    proptest! {
        /// Every inserted key is reported as possibly present (no false
        /// negatives), for arbitrary key sets and filter sizes.
        #[test]
        fn prop_bloom_no_false_negatives(
            keys in proptest::collection::vec(any::<u64>(), 0..200),
            capacity in 0usize..300,
        ) {
            let mut f = BloomSet::with_capacity(capacity);
            for &k in &keys {
                f.insert(k);
            }
            for &k in &keys {
                prop_assert!(f.may_contain(k));
            }
        }
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(!s.contains(500)); // out of range reads as absent
        assert_eq!(s.len(), 4);
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        for i in [1, 5, 50] {
            a.insert(i);
        }
        for i in [5, 50, 99] {
            b.insert(i);
        }
        assert!(a.intersects(&b));
        assert_eq!(a.intersection_len(&b), 2);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 5, 50, 99]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![5, 50]);
    }

    #[test]
    fn disjoint_sets_do_not_intersect() {
        let mut a = BitSet::new(64);
        let mut b = BitSet::new(64);
        a.insert(1);
        b.insert(2);
        assert!(!a.intersects(&b));
        assert_eq!(a.intersection_len(&b), 0);
    }

    #[test]
    fn clear_resets() {
        let mut s = BitSet::new(10);
        s.insert(3);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn iter_order_is_increasing() {
        let mut s = BitSet::new(200);
        for i in [199, 0, 64, 65, 127, 128] {
            s.insert(i);
        }
        assert_eq!(s.to_vec(), vec![0, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn zero_capacity_is_fine() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert!(!s.contains(0));
        assert_eq!(s.to_vec(), Vec::<usize>::new());
    }

    proptest! {
        /// BitSet agrees with BTreeSet on arbitrary insert sequences.
        #[test]
        fn prop_matches_btreeset(indices in proptest::collection::vec(0usize..256, 0..100)) {
            let mut bs = BitSet::new(256);
            let mut reference = BTreeSet::new();
            for &i in &indices {
                bs.insert(i);
                reference.insert(i);
            }
            prop_assert_eq!(bs.len(), reference.len());
            prop_assert_eq!(bs.to_vec(), reference.iter().copied().collect::<Vec<_>>());
        }

        /// Union is commutative and yields the set-union cardinality.
        #[test]
        fn prop_union_commutes(
            xs in proptest::collection::vec(0usize..128, 0..50),
            ys in proptest::collection::vec(0usize..128, 0..50),
        ) {
            let mut a = BitSet::new(128);
            let mut b = BitSet::new(128);
            for &x in &xs { a.insert(x); }
            for &y in &ys { b.insert(y); }
            let mut ab = a.clone();
            ab.union_with(&b);
            let mut ba = b.clone();
            ba.union_with(&a);
            prop_assert_eq!(&ab, &ba);
            let expect: BTreeSet<usize> = xs.iter().chain(ys.iter()).copied().collect();
            prop_assert_eq!(ab.len(), expect.len());
            // intersects ⇔ intersection_len > 0
            prop_assert_eq!(a.intersects(&b), a.intersection_len(&b) > 0);
        }
    }
}

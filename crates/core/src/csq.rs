//! The Contact Selection Query (CSQ) — §III.C.1.
//!
//! Selection procedure, exactly as the paper specifies:
//!
//! 1. the source sends a CSQ *through each of its edge nodes, one at a
//!    time* (the query travels the known intra-zone route, R hops);
//! 2. the edge node forwards the CSQ to a randomly chosen neighbor;
//! 3. each node receiving the CSQ runs the PM/EM decision
//!    ([`crate::selection`]);
//! 4. a refusing node forwards the query to a random untried neighbor
//!    (never back where it came from);
//! 5. the query walks depth-first to at most `r` hops, **backtracking**
//!    when it runs out of fresh neighbors or hits the hop limit; every
//!    backtrack hop is a counted control message (this is the overhead that
//!    separates PM from EM in Figs 4 and 12);
//! 6. on acceptance the traversed path is returned to the source (R + d
//!    reply hops) and stored.
//!
//! The walk keeps a per-query visited set — the protocol equivalent of
//! "query and source IDs are included to prevent looping" (§III.C.2.b).
//!
//! Per-query DFS state (tried lists, on-path and evaluated flags) lives in
//! a reusable [`CsqScratch`] workspace: walks run every validation round
//! for every node, so allocating O(N) state per walk would dominate the
//! steady-state cost. The scratch clears only what the previous walk
//! touched.

use manet_routing::network::Network;
use net_topology::node::NodeId;
use sim_core::rng::RngStream;
use sim_core::stats::{MsgKind, MsgStats};
use sim_core::time::SimTime;

use crate::config::CardConfig;
use crate::contact::{Contact, ContactTable};
use crate::selection::decides_to_be_contact;

/// Walk budget meaning "CSQ through every edge node" (no cap) — the
/// paper's from-scratch selection mode (Figs 3–9).
pub const ALL_EDGE_NODES: usize = usize::MAX;

/// Outcome counters of a single CSQ walk (one edge node launch).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CsqWalkStats {
    /// Forward CSQ hops (including the R hops to the edge node).
    pub forward_msgs: u64,
    /// Backtrack hops.
    pub backtrack_msgs: u64,
    /// Reply hops returning the chosen path (0 when no contact found).
    pub reply_msgs: u64,
    /// Nodes that evaluated the PM/EM decision.
    pub nodes_evaluated: u64,
}

impl CsqWalkStats {
    /// Total messages of this walk.
    pub fn total(&self) -> u64 {
        self.forward_msgs + self.backtrack_msgs + self.reply_msgs
    }
}

/// Reusable per-query DFS state for CSQ walks.
///
/// All per-node arrays are cleared lazily: `marked` remembers exactly which
/// nodes the previous walk dirtied, so starting a new walk is O(touched),
/// not O(N), and a long-lived scratch (one per protocol *shard* in
/// [`crate::world::CardWorld`]'s sharded sweeps) makes walks
/// allocation-free. Scratch history never leaks into results — a reused
/// scratch behaves exactly like a fresh one — which is what lets any shard
/// layout produce identical walks.
#[derive(Clone, Debug, Default)]
pub struct CsqScratch {
    /// Neighbors already tried per node, for this query.
    tried: Vec<Vec<NodeId>>,
    /// Is the node currently on the query's path?
    on_path: Vec<bool>,
    /// Has the node already run (or been exempted from) the PM/EM decision?
    evaluated: Vec<bool>,
    /// Has the node been dirtied this walk (dedup for `marked`)?
    dirty: Vec<bool>,
    /// Nodes dirtied by the current walk (cleared on the next `begin`).
    marked: Vec<NodeId>,
    /// DFS stack of the walk beyond (and including) the edge node.
    walk: Vec<NodeId>,
    /// Candidate-neighbor buffer for the random forwarding choice.
    candidates: Vec<NodeId>,
    /// Shuffled edge-node list of the current selection pass.
    edges: Vec<NodeId>,
    /// Current contact ids of the source (overlap rule input).
    contact_list: Vec<NodeId>,
}

impl CsqScratch {
    /// A fresh workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset per-walk state, clearing only what the last walk touched.
    fn begin(&mut self, n: usize) {
        for &v in &self.marked {
            self.tried[v.index()].clear();
            self.on_path[v.index()] = false;
            self.evaluated[v.index()] = false;
            self.dirty[v.index()] = false;
        }
        self.marked.clear();
        self.walk.clear();
        if self.on_path.len() < n {
            self.tried.resize_with(n, Vec::new);
            self.on_path.resize(n, false);
            self.evaluated.resize(n, false);
            self.dirty.resize(n, false);
        }
    }

    /// Remember that `v`'s per-walk state must be cleared next time.
    #[inline]
    fn touch(&mut self, v: NodeId) {
        if !self.dirty[v.index()] {
            self.dirty[v.index()] = true;
            self.marked.push(v);
        }
    }
}

/// Launch one CSQ from `source` through `edge`: random DFS with
/// backtracking out to `cfg.max_contact_distance` hops. Returns the contact
/// if one accepted. Records messages into `stats` at time `at`.
///
/// DFS state is *per node, per query*, exactly as §III.C.1 describes it:
/// every node remembers which neighbors it has already tried for this query
/// (step 5: the previous node "forwards it to another randomly chosen
/// neighbor"), and never forwards to a node currently on the query's path
/// ("the query and source IDs are included to prevent looping"). Off-path
/// nodes may be *walked through* again via a different route — but each
/// node **evaluates the contact decision only once** per query: a node
/// whose probability draw failed stays failed, which is precisely the
/// "lost opportunities when the probability fails" cost the paper charges
/// against PM. The walk is bounded: each forward consumes one (node,
/// neighbor) pair, so it ends after at most 2·|edges| steps even without
/// the `max_csq_steps` budget.
#[allow(clippy::too_many_arguments)] // mirrors the protocol message fields
pub fn csq_walk(
    net: &Network,
    cfg: &CardConfig,
    source: NodeId,
    edge: NodeId,
    contact_list: &[NodeId],
    rng: &mut RngStream,
    stats: &mut MsgStats,
    at: SimTime,
    scratch: &mut CsqScratch,
) -> (Option<Contact>, CsqWalkStats) {
    let tables = net.tables();
    let mut ws = CsqWalkStats::default();

    // Intra-zone route source -> edge node (known proactively).
    let Some(route) = tables.of(source).path_to(edge) else {
        return (None, ws); // stale edge (mobility raced the tables)
    };
    ws.forward_msgs += route.len() as u64 - 1;

    let edge_list = tables.of(source).edge_nodes();
    let r = cfg.max_contact_distance;
    let n = net.node_count();

    // Per-node DFS state for this query, reused across walks.
    scratch.begin(n);
    for &v in &route {
        scratch.touch(v);
        scratch.on_path[v.index()] = true;
        scratch.evaluated[v.index()] = true; // intra-zone nodes are never candidates
    }
    // The edge node must not bounce the query straight back into the zone.
    if route.len() >= 2 {
        scratch.tried[edge.index()].push(route[route.len() - 2]);
    }

    // Walk stack beyond (and including) the edge node. Walk depth
    // d = hops from source = (route.len() - 1) + (walk.len() - 1).
    scratch.walk.push(edge);
    let mut steps: u32 = 0;
    let budget = cfg.csq_budget();

    while let Some(&cur) = scratch.walk.last() {
        if steps >= budget {
            break;
        }
        let d = (route.len() - 1 + scratch.walk.len() - 1) as u16;

        // Untried, off-path neighbors of the current node.
        let next = if d < r {
            scratch.candidates.clear();
            scratch
                .candidates
                .extend(net.adj().neighbors(cur).iter().copied().filter(|nb| {
                    !scratch.on_path[nb.index()] && !scratch.tried[cur.index()].contains(nb)
                }));
            rng.choose(&scratch.candidates).copied()
        } else {
            None
        };

        match next {
            Some(x) => {
                steps += 1;
                ws.forward_msgs += 1;
                scratch.touch(x);
                scratch.tried[cur.index()].push(x);
                scratch.on_path[x.index()] = true;
                scratch.walk.push(x);
                let d_x = d + 1;
                let accepts = if scratch.evaluated[x.index()] {
                    false // this node already declined this query
                } else {
                    scratch.evaluated[x.index()] = true;
                    ws.nodes_evaluated += 1;
                    decides_to_be_contact(cfg, tables, x, source, contact_list, edge_list, d_x, rng)
                };
                if accepts {
                    // Path = intra-zone route + walk (skip duplicated edge node).
                    let mut path = route.clone();
                    path.extend_from_slice(&scratch.walk[1..]);
                    ws.reply_msgs += path.len() as u64 - 1;
                    stats.record_n(at, MsgKind::Csq, ws.forward_msgs);
                    stats.record_n(at, MsgKind::CsqBacktrack, ws.backtrack_msgs);
                    stats.record_n(at, MsgKind::CsqReply, ws.reply_msgs);
                    return (Some(Contact::new(x, path)), ws);
                }
            }
            None => {
                // Dead end (or hop limit): backtrack one hop.
                let popped = scratch.walk.pop().expect("walk non-empty");
                scratch.on_path[popped.index()] = false;
                if !scratch.walk.is_empty() {
                    steps += 1;
                    ws.backtrack_msgs += 1;
                }
            }
        }
    }

    stats.record_n(at, MsgKind::Csq, ws.forward_msgs);
    stats.record_n(at, MsgKind::CsqBacktrack, ws.backtrack_msgs);
    (None, ws)
}

/// §III.C.1 step 1: run CSQs through the source's edge nodes (shuffled),
/// one at a time, until the table holds `cfg.target_contacts` contacts,
/// `max_walks` CSQs have been launched, or every edge node has been tried.
/// Pass [`ALL_EDGE_NODES`] for an unrestricted from-scratch pass, or the
/// per-round walk budget for steady-state re-selection (§III.C.3 rule 5).
/// Returns per-walk stats.
#[allow(clippy::too_many_arguments)] // mirrors the protocol message fields
pub fn select_contacts(
    net: &Network,
    cfg: &CardConfig,
    source: NodeId,
    table: &mut ContactTable,
    rng: &mut RngStream,
    stats: &mut MsgStats,
    at: SimTime,
    max_walks: usize,
    scratch: &mut CsqScratch,
) -> Vec<CsqWalkStats> {
    let mut edges = std::mem::take(&mut scratch.edges);
    edges.clear();
    edges.extend_from_slice(net.tables().of(source).edge_nodes());
    rng.shuffle(&mut edges);
    let mut contact_list = std::mem::take(&mut scratch.contact_list);
    let mut walk_stats = Vec::new();

    for &edge in edges.iter().take(max_walks) {
        if table.len() >= cfg.target_contacts {
            break;
        }
        contact_list.clear();
        contact_list.extend(table.ids());
        let (found, ws) = csq_walk(
            net,
            cfg,
            source,
            edge,
            &contact_list,
            rng,
            stats,
            at,
            scratch,
        );
        walk_stats.push(ws);
        if let Some(c) = found {
            // A tombstoned candidate was just watched dying: don't
            // re-select it until its tombstone decays (calm worlds never
            // tombstone, so this is the pre-fault behavior there).
            if !table.contains(c.id) && !table.is_tombstoned(c.id) {
                table.add(c);
            }
        }
    }

    scratch.edges = edges;
    scratch.contact_list = contact_list;
    walk_stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SelectionMethod;
    use net_topology::scenario::Scenario;
    use sim_core::time::SimDuration;

    fn stats() -> MsgStats {
        MsgStats::new(SimDuration::from_secs(2))
    }

    /// A dense-enough random network where contacts exist.
    fn test_net() -> Network {
        // ~short paths: 200 nodes, 600x600, range 60 → avg degree ~ 6
        Network::from_scenario(&Scenario::new(200, 600.0, 600.0, 60.0), 2, 11)
    }

    fn cfg_em() -> CardConfig {
        CardConfig::default()
            .with_radius(2)
            .with_max_contact_distance(10)
            .with_target_contacts(4)
            .with_method(SelectionMethod::Edge)
    }

    #[test]
    fn em_walk_finds_valid_contact() {
        let net = test_net();
        let cfg = cfg_em();
        let mut rng = RngStream::seed_from_u64(3);
        let mut st = stats();
        let mut scratch = CsqScratch::new();
        let source = NodeId::new(0);
        let mut table = ContactTable::new();
        let walks = select_contacts(
            &net,
            &cfg,
            source,
            &mut table,
            &mut rng,
            &mut st,
            SimTime::ZERO,
            ALL_EDGE_NODES,
            &mut scratch,
        );
        assert!(!walks.is_empty());
        if table.is_empty() {
            // extremely unlucky seed — fail loudly so we pick another seed
            panic!("no contacts selected on a 200-node network");
        }
        for c in table.contacts() {
            // EM invariant: walk-path hops within (2R, r]
            assert!(c.hops() > 2 * cfg.radius, "hops {} <= 2R", c.hops());
            assert!(c.hops() <= cfg.max_contact_distance);
            assert_eq!(c.source(), source);
            // true distance also > 2R (the edge check is geometric)
            let bfs = net_topology::bfs::full_bfs(net.adj(), source);
            assert!(bfs.distance(c.id).unwrap() > 2 * cfg.radius);
            // the stored path is a valid hop-by-hop route
            for w in c.path.windows(2) {
                assert!(net.is_link(w[0], w[1]), "broken stored path");
            }
            // no overlap with the source neighborhood at selection time
            assert!(!net.tables().of(c.id).contains(source));
        }
    }

    #[test]
    fn contact_list_prevents_overlapping_contacts() {
        let net = test_net();
        let cfg = cfg_em();
        let mut rng = RngStream::seed_from_u64(5);
        let mut st = stats();
        let mut scratch = CsqScratch::new();
        let mut table = ContactTable::new();
        select_contacts(
            &net,
            &cfg,
            NodeId::new(1),
            &mut table,
            &mut rng,
            &mut st,
            SimTime::ZERO,
            ALL_EDGE_NODES,
            &mut scratch,
        );
        // pairwise: no contact inside another contact's neighborhood
        let ids: Vec<NodeId> = table.ids().collect();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                assert!(
                    !net.tables().of(a).contains(b),
                    "contacts {a} and {b} have overlapping neighborhoods"
                );
            }
        }
    }

    #[test]
    fn messages_are_recorded_by_kind() {
        let net = test_net();
        let cfg = cfg_em();
        let mut rng = RngStream::seed_from_u64(7);
        let mut st = stats();
        let mut scratch = CsqScratch::new();
        let mut table = ContactTable::new();
        let walks = select_contacts(
            &net,
            &cfg,
            NodeId::new(2),
            &mut table,
            &mut rng,
            &mut st,
            SimTime::ZERO,
            ALL_EDGE_NODES,
            &mut scratch,
        );
        let fwd: u64 = walks.iter().map(|w| w.forward_msgs).sum();
        let bt: u64 = walks.iter().map(|w| w.backtrack_msgs).sum();
        let rep: u64 = walks.iter().map(|w| w.reply_msgs).sum();
        assert_eq!(st.total(MsgKind::Csq), fwd);
        assert_eq!(st.total(MsgKind::CsqBacktrack), bt);
        assert_eq!(st.total(MsgKind::CsqReply), rep);
        assert_eq!(st.total_where(MsgKind::is_selection), fwd + bt + rep);
        for w in &walks {
            assert_eq!(w.total(), w.forward_msgs + w.backtrack_msgs + w.reply_msgs);
        }
    }

    #[test]
    fn respects_target_contacts_cap() {
        let net = test_net();
        let cfg = cfg_em().with_target_contacts(1);
        let mut rng = RngStream::seed_from_u64(9);
        let mut st = stats();
        let mut scratch = CsqScratch::new();
        let mut table = ContactTable::new();
        select_contacts(
            &net,
            &cfg,
            NodeId::new(3),
            &mut table,
            &mut rng,
            &mut st,
            SimTime::ZERO,
            ALL_EDGE_NODES,
            &mut scratch,
        );
        assert!(table.len() <= 1);
    }

    #[test]
    fn pm_eq2_contact_is_beyond_2r_in_walk_distance() {
        let net = test_net();
        let cfg = cfg_em().with_method(SelectionMethod::ProbabilisticEq2);
        let mut rng = RngStream::seed_from_u64(13);
        let mut st = stats();
        let mut scratch = CsqScratch::new();
        let mut table = ContactTable::new();
        select_contacts(
            &net,
            &cfg,
            NodeId::new(4),
            &mut table,
            &mut rng,
            &mut st,
            SimTime::ZERO,
            ALL_EDGE_NODES,
            &mut scratch,
        );
        for c in table.contacts() {
            assert!(
                c.hops() > 2 * cfg.radius,
                "eq2 P=0 at d<=2R, got {}",
                c.hops()
            );
            assert!(c.hops() <= cfg.max_contact_distance);
        }
    }

    #[test]
    fn isolated_source_selects_nothing() {
        // One lonely node: no edge nodes, no walks, no messages.
        let net = Network::from_positions(
            net_topology::geometry::Field::square(100.0),
            vec![net_topology::geometry::Point2::new(50.0, 50.0)],
            30.0,
            2,
        );
        let cfg = cfg_em();
        let mut rng = RngStream::seed_from_u64(1);
        let mut st = stats();
        let mut scratch = CsqScratch::new();
        let mut table = ContactTable::new();
        let walks = select_contacts(
            &net,
            &cfg,
            NodeId::new(0),
            &mut table,
            &mut rng,
            &mut st,
            SimTime::ZERO,
            ALL_EDGE_NODES,
            &mut scratch,
        );
        assert!(walks.is_empty());
        assert!(table.is_empty());
        assert_eq!(st.grand_total(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let net = test_net();
            let cfg = cfg_em();
            let mut rng = RngStream::seed_from_u64(seed);
            let mut st = stats();
            let mut scratch = CsqScratch::new();
            let mut table = ContactTable::new();
            select_contacts(
                &net,
                &cfg,
                NodeId::new(5),
                &mut table,
                &mut rng,
                &mut st,
                SimTime::ZERO,
                ALL_EDGE_NODES,
                &mut scratch,
            );
            (table.ids().collect::<Vec<_>>(), st.grand_total())
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        // One long-lived scratch across many sources must behave exactly
        // like a fresh scratch per source (lazy clearing leaks nothing).
        let net = test_net();
        let cfg = cfg_em();
        let run = |reuse: bool| {
            let mut st = stats();
            let mut shared = CsqScratch::new();
            let mut all: Vec<Vec<NodeId>> = Vec::new();
            for i in 0..20u32 {
                let mut rng = RngStream::seed_from_u64(1000 + i as u64);
                let mut table = ContactTable::new();
                let mut fresh = CsqScratch::new();
                let scratch = if reuse { &mut shared } else { &mut fresh };
                select_contacts(
                    &net,
                    &cfg,
                    NodeId::new(i),
                    &mut table,
                    &mut rng,
                    &mut st,
                    SimTime::ZERO,
                    ALL_EDGE_NODES,
                    scratch,
                );
                all.push(table.ids().collect());
            }
            all
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn budget_caps_walk() {
        let net = test_net();
        let mut cfg = cfg_em();
        cfg.max_csq_steps = 3; // floored to 2r by csq_budget()
        let budget = cfg.csq_budget() as u64;
        assert_eq!(budget, 2 * cfg.max_contact_distance as u64);
        let mut rng = RngStream::seed_from_u64(17);
        let mut st = stats();
        let mut scratch = CsqScratch::new();
        let edge = net
            .tables()
            .of(NodeId::new(0))
            .edge_nodes()
            .first()
            .copied();
        if let Some(edge) = edge {
            let (_, ws) = csq_walk(
                &net,
                &cfg,
                NodeId::new(0),
                edge,
                &[],
                &mut rng,
                &mut st,
                SimTime::ZERO,
                &mut scratch,
            );
            // intra-zone route hops are charged before the budgeted DFS
            assert!(ws.forward_msgs + ws.backtrack_msgs <= budget + cfg.radius as u64 + 1);
        }
    }

    #[test]
    fn limited_selection_launches_at_most_max_walks() {
        let net = test_net();
        let cfg = cfg_em();
        let mut rng = RngStream::seed_from_u64(23);
        let mut st = stats();
        let mut scratch = CsqScratch::new();
        let mut table = ContactTable::new();
        let walks = select_contacts(
            &net,
            &cfg,
            NodeId::new(6),
            &mut table,
            &mut rng,
            &mut st,
            SimTime::ZERO,
            2,
            &mut scratch,
        );
        assert!(walks.len() <= 2);
        assert!(table.len() <= 2);
    }
}

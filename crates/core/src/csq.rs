//! The Contact Selection Query (CSQ) — §III.C.1.
//!
//! Selection procedure, exactly as the paper specifies:
//!
//! 1. the source sends a CSQ *through each of its edge nodes, one at a
//!    time* (the query travels the known intra-zone route, R hops);
//! 2. the edge node forwards the CSQ to a randomly chosen neighbor;
//! 3. each node receiving the CSQ runs the PM/EM decision
//!    ([`crate::selection`]);
//! 4. a refusing node forwards the query to a random untried neighbor
//!    (never back where it came from);
//! 5. the query walks depth-first to at most `r` hops, **backtracking**
//!    when it runs out of fresh neighbors or hits the hop limit; every
//!    backtrack hop is a counted control message (this is the overhead that
//!    separates PM from EM in Figs 4 and 12);
//! 6. on acceptance the traversed path is returned to the source (R + d
//!    reply hops) and stored.
//!
//! The walk keeps a per-query visited set — the protocol equivalent of
//! "query and source IDs are included to prevent looping" (§III.C.2.b).

use manet_routing::network::Network;
use net_topology::node::NodeId;
use sim_core::rng::RngStream;
use sim_core::stats::{MsgKind, MsgStats};
use sim_core::time::SimTime;

use crate::config::CardConfig;
use crate::contact::{Contact, ContactTable};
use crate::selection::decides_to_be_contact;

/// Outcome counters of a single CSQ walk (one edge node launch).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CsqWalkStats {
    /// Forward CSQ hops (including the R hops to the edge node).
    pub forward_msgs: u64,
    /// Backtrack hops.
    pub backtrack_msgs: u64,
    /// Reply hops returning the chosen path (0 when no contact found).
    pub reply_msgs: u64,
    /// Nodes that evaluated the PM/EM decision.
    pub nodes_evaluated: u64,
}

impl CsqWalkStats {
    /// Total messages of this walk.
    pub fn total(&self) -> u64 {
        self.forward_msgs + self.backtrack_msgs + self.reply_msgs
    }
}

/// Launch one CSQ from `source` through `edge`: random DFS with
/// backtracking out to `cfg.max_contact_distance` hops. Returns the contact
/// if one accepted. Records messages into `stats` at time `at`.
///
/// DFS state is *per node, per query*, exactly as §III.C.1 describes it:
/// every node remembers which neighbors it has already tried for this query
/// (step 5: the previous node "forwards it to another randomly chosen
/// neighbor"), and never forwards to a node currently on the query's path
/// ("the query and source IDs are included to prevent looping"). Off-path
/// nodes may be *walked through* again via a different route — but each
/// node **evaluates the contact decision only once** per query: a node
/// whose probability draw failed stays failed, which is precisely the
/// "lost opportunities when the probability fails" cost the paper charges
/// against PM. The walk is bounded: each forward consumes one (node,
/// neighbor) pair, so it ends after at most 2·|edges| steps even without
/// the `max_csq_steps` budget.
#[allow(clippy::too_many_arguments)] // mirrors the protocol message fields
pub fn csq_walk(
    net: &Network,
    cfg: &CardConfig,
    source: NodeId,
    edge: NodeId,
    contact_list: &[NodeId],
    rng: &mut RngStream,
    stats: &mut MsgStats,
    at: SimTime,
) -> (Option<Contact>, CsqWalkStats) {
    let tables = net.tables();
    let mut ws = CsqWalkStats::default();

    // Intra-zone route source -> edge node (known proactively).
    let Some(route) = tables.of(source).path_to(edge) else {
        return (None, ws); // stale edge (mobility raced the tables)
    };
    ws.forward_msgs += route.len() as u64 - 1;

    let edge_list: Vec<NodeId> = tables.of(source).edge_nodes().to_vec();
    let r = cfg.max_contact_distance;
    let n = net.node_count();

    // Per-node DFS state for this query.
    let mut tried: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut on_path = vec![false; n];
    let mut evaluated = vec![false; n];
    for &v in &route {
        on_path[v.index()] = true;
        evaluated[v.index()] = true; // intra-zone nodes are never candidates
    }
    // The edge node must not bounce the query straight back into the zone.
    if route.len() >= 2 {
        tried[edge.index()].push(route[route.len() - 2]);
    }

    // Walk stack beyond (and including) the edge node. Walk depth
    // d = hops from source = (route.len() - 1) + (walk.len() - 1).
    let mut walk: Vec<NodeId> = vec![edge];
    let mut steps: u32 = 0;
    let budget = cfg.csq_budget();
    let mut scratch: Vec<NodeId> = Vec::new();

    while let Some(&cur) = walk.last() {
        if steps >= budget {
            break;
        }
        let d = (route.len() - 1 + walk.len() - 1) as u16;

        // Untried, off-path neighbors of the current node.
        let next = if d < r {
            scratch.clear();
            scratch.extend(
                net.adj()
                    .neighbors(cur)
                    .iter()
                    .copied()
                    .filter(|nb| !on_path[nb.index()] && !tried[cur.index()].contains(nb)),
            );
            rng.choose(&scratch).copied()
        } else {
            None
        };

        match next {
            Some(x) => {
                steps += 1;
                ws.forward_msgs += 1;
                tried[cur.index()].push(x);
                on_path[x.index()] = true;
                walk.push(x);
                let d_x = d + 1;
                let accepts = if evaluated[x.index()] {
                    false // this node already declined this query
                } else {
                    evaluated[x.index()] = true;
                    ws.nodes_evaluated += 1;
                    decides_to_be_contact(
                        cfg,
                        tables,
                        x,
                        source,
                        contact_list,
                        &edge_list,
                        d_x,
                        rng,
                    )
                };
                if accepts {
                    // Path = intra-zone route + walk (skip duplicated edge node).
                    let mut path = route.clone();
                    path.extend_from_slice(&walk[1..]);
                    ws.reply_msgs += path.len() as u64 - 1;
                    stats.record_n(at, MsgKind::Csq, ws.forward_msgs);
                    stats.record_n(at, MsgKind::CsqBacktrack, ws.backtrack_msgs);
                    stats.record_n(at, MsgKind::CsqReply, ws.reply_msgs);
                    return (Some(Contact::new(x, path)), ws);
                }
            }
            None => {
                // Dead end (or hop limit): backtrack one hop.
                let popped = walk.pop().expect("walk non-empty");
                on_path[popped.index()] = false;
                if !walk.is_empty() {
                    steps += 1;
                    ws.backtrack_msgs += 1;
                }
            }
        }
    }

    stats.record_n(at, MsgKind::Csq, ws.forward_msgs);
    stats.record_n(at, MsgKind::CsqBacktrack, ws.backtrack_msgs);
    (None, ws)
}

/// §III.C.1 step 1: run CSQs through the source's edge nodes (shuffled),
/// one at a time, until the table holds `cfg.target_contacts` contacts,
/// `max_walks` CSQs have been launched, or every edge node has been tried.
/// Returns per-walk stats.
#[allow(clippy::too_many_arguments)] // mirrors the protocol message fields
pub fn select_contacts_limited(
    net: &Network,
    cfg: &CardConfig,
    source: NodeId,
    table: &mut ContactTable,
    rng: &mut RngStream,
    stats: &mut MsgStats,
    at: SimTime,
    max_walks: usize,
) -> Vec<CsqWalkStats> {
    let mut edges: Vec<NodeId> = net.tables().of(source).edge_nodes().to_vec();
    rng.shuffle(&mut edges);
    let mut walk_stats = Vec::new();

    for edge in edges.into_iter().take(max_walks) {
        if table.len() >= cfg.target_contacts {
            break;
        }
        let contact_list: Vec<NodeId> = table.ids().collect();
        let (found, ws) = csq_walk(net, cfg, source, edge, &contact_list, rng, stats, at);
        walk_stats.push(ws);
        if let Some(c) = found {
            if !table.contains(c.id) {
                table.add(c);
            }
        }
    }
    walk_stats
}

/// Full selection pass: CSQs through *every* edge node (used for the
/// paper's from-scratch selection analyses, Figs 3–9).
pub fn select_contacts(
    net: &Network,
    cfg: &CardConfig,
    source: NodeId,
    table: &mut ContactTable,
    rng: &mut RngStream,
    stats: &mut MsgStats,
    at: SimTime,
) -> Vec<CsqWalkStats> {
    select_contacts_limited(net, cfg, source, table, rng, stats, at, usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SelectionMethod;
    use net_topology::scenario::Scenario;
    use sim_core::time::SimDuration;

    fn stats() -> MsgStats {
        MsgStats::new(SimDuration::from_secs(2))
    }

    /// A dense-enough random network where contacts exist.
    fn test_net() -> Network {
        // ~short paths: 200 nodes, 600x600, range 60 → avg degree ~ 6
        Network::from_scenario(&Scenario::new(200, 600.0, 600.0, 60.0), 2, 11)
    }

    fn cfg_em() -> CardConfig {
        CardConfig::default()
            .with_radius(2)
            .with_max_contact_distance(10)
            .with_target_contacts(4)
            .with_method(SelectionMethod::Edge)
    }

    #[test]
    fn em_walk_finds_valid_contact() {
        let net = test_net();
        let cfg = cfg_em();
        let mut rng = RngStream::seed_from_u64(3);
        let mut st = stats();
        let source = NodeId::new(0);
        let mut table = ContactTable::new();
        let walks = select_contacts(&net, &cfg, source, &mut table, &mut rng, &mut st, SimTime::ZERO);
        assert!(!walks.is_empty());
        if table.is_empty() {
            // extremely unlucky seed — fail loudly so we pick another seed
            panic!("no contacts selected on a 200-node network");
        }
        for c in table.contacts() {
            // EM invariant: walk-path hops within (2R, r]
            assert!(c.hops() > 2 * cfg.radius, "hops {} <= 2R", c.hops());
            assert!(c.hops() <= cfg.max_contact_distance);
            assert_eq!(c.source(), source);
            // true distance also > 2R (the edge check is geometric)
            let bfs = net_topology::bfs::full_bfs(net.adj(), source);
            assert!(bfs.distance(c.id).unwrap() > 2 * cfg.radius);
            // the stored path is a valid hop-by-hop route
            for w in c.path.windows(2) {
                assert!(net.is_link(w[0], w[1]), "broken stored path");
            }
            // no overlap with the source neighborhood at selection time
            assert!(!net.tables().of(c.id).contains(source));
        }
    }

    #[test]
    fn contact_list_prevents_overlapping_contacts() {
        let net = test_net();
        let cfg = cfg_em();
        let mut rng = RngStream::seed_from_u64(5);
        let mut st = stats();
        let mut table = ContactTable::new();
        select_contacts(&net, &cfg, NodeId::new(1), &mut table, &mut rng, &mut st, SimTime::ZERO);
        // pairwise: no contact inside another contact's neighborhood
        let ids: Vec<NodeId> = table.ids().collect();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                assert!(
                    !net.tables().of(a).contains(b),
                    "contacts {a} and {b} have overlapping neighborhoods"
                );
            }
        }
    }

    #[test]
    fn messages_are_recorded_by_kind() {
        let net = test_net();
        let cfg = cfg_em();
        let mut rng = RngStream::seed_from_u64(7);
        let mut st = stats();
        let mut table = ContactTable::new();
        let walks =
            select_contacts(&net, &cfg, NodeId::new(2), &mut table, &mut rng, &mut st, SimTime::ZERO);
        let fwd: u64 = walks.iter().map(|w| w.forward_msgs).sum();
        let bt: u64 = walks.iter().map(|w| w.backtrack_msgs).sum();
        let rep: u64 = walks.iter().map(|w| w.reply_msgs).sum();
        assert_eq!(st.total(MsgKind::Csq), fwd);
        assert_eq!(st.total(MsgKind::CsqBacktrack), bt);
        assert_eq!(st.total(MsgKind::CsqReply), rep);
        assert_eq!(st.total_where(MsgKind::is_selection), fwd + bt + rep);
        for w in &walks {
            assert_eq!(w.total(), w.forward_msgs + w.backtrack_msgs + w.reply_msgs);
        }
    }

    #[test]
    fn respects_target_contacts_cap() {
        let net = test_net();
        let cfg = cfg_em().with_target_contacts(1);
        let mut rng = RngStream::seed_from_u64(9);
        let mut st = stats();
        let mut table = ContactTable::new();
        select_contacts(&net, &cfg, NodeId::new(3), &mut table, &mut rng, &mut st, SimTime::ZERO);
        assert!(table.len() <= 1);
    }

    #[test]
    fn pm_eq2_contact_is_beyond_2r_in_walk_distance() {
        let net = test_net();
        let cfg = cfg_em().with_method(SelectionMethod::ProbabilisticEq2);
        let mut rng = RngStream::seed_from_u64(13);
        let mut st = stats();
        let mut table = ContactTable::new();
        select_contacts(&net, &cfg, NodeId::new(4), &mut table, &mut rng, &mut st, SimTime::ZERO);
        for c in table.contacts() {
            assert!(c.hops() > 2 * cfg.radius, "eq2 P=0 at d<=2R, got {}", c.hops());
            assert!(c.hops() <= cfg.max_contact_distance);
        }
    }

    #[test]
    fn isolated_source_selects_nothing() {
        // One lonely node: no edge nodes, no walks, no messages.
        let net = Network::from_positions(
            net_topology::geometry::Field::square(100.0),
            vec![net_topology::geometry::Point2::new(50.0, 50.0)],
            30.0,
            2,
        );
        let cfg = cfg_em();
        let mut rng = RngStream::seed_from_u64(1);
        let mut st = stats();
        let mut table = ContactTable::new();
        let walks =
            select_contacts(&net, &cfg, NodeId::new(0), &mut table, &mut rng, &mut st, SimTime::ZERO);
        assert!(walks.is_empty());
        assert!(table.is_empty());
        assert_eq!(st.grand_total(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let net = test_net();
            let cfg = cfg_em();
            let mut rng = RngStream::seed_from_u64(seed);
            let mut st = stats();
            let mut table = ContactTable::new();
            select_contacts(&net, &cfg, NodeId::new(5), &mut table, &mut rng, &mut st, SimTime::ZERO);
            (table.ids().collect::<Vec<_>>(), st.grand_total())
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn budget_caps_walk() {
        let net = test_net();
        let mut cfg = cfg_em();
        cfg.max_csq_steps = 3; // floored to 2r by csq_budget()
        let budget = cfg.csq_budget() as u64;
        assert_eq!(budget, 2 * cfg.max_contact_distance as u64);
        let mut rng = RngStream::seed_from_u64(17);
        let mut st = stats();
        let edge = net.tables().of(NodeId::new(0)).edge_nodes().first().copied();
        if let Some(edge) = edge {
            let (_, ws) =
                csq_walk(&net, &cfg, NodeId::new(0), edge, &[], &mut rng, &mut st, SimTime::ZERO);
            // intra-zone route hops are charged before the budgeted DFS
            assert!(ws.forward_msgs + ws.backtrack_msgs <= budget + cfg.radius as u64 + 1);
        }
    }

    #[test]
    fn limited_selection_launches_at_most_max_walks() {
        let net = test_net();
        let cfg = cfg_em();
        let mut rng = RngStream::seed_from_u64(23);
        let mut st = stats();
        let mut table = ContactTable::new();
        let walks = select_contacts_limited(
            &net, &cfg, NodeId::new(6), &mut table, &mut rng, &mut st, SimTime::ZERO, 2,
        );
        assert!(walks.len() <= 2);
        assert!(table.len() <= 2);
    }
}

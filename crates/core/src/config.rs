//! CARD protocol configuration.
//!
//! Every parameter the paper sweeps lives here, under the paper's own
//! names: R (neighborhood radius), r (maximum contact distance), NoC
//! (number of contacts), D (depth of search), plus the selection method and
//! timing knobs the paper leaves implicit (validation period, mobility
//! tick) with documented defaults.

use sim_core::time::SimDuration;

/// Which contact-selection decision rule a node applies (§III.C.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectionMethod {
    /// Probabilistic method with equation (1): `P = (d − R)/(r − R)`.
    /// Kept for the paper's Fig 1 discussion and the eq.1-vs-eq.2 ablation.
    ProbabilisticEq1,
    /// Probabilistic method with equation (2): `P = (d − 2R)/(r − 2R)`
    /// (contacts only between 2R and r hops).
    ProbabilisticEq2,
    /// Edge method: deterministic acceptance once the candidate's
    /// neighborhood is disjoint from the source's neighborhood, every
    /// already-chosen contact's neighborhood, and every source edge node's
    /// neighborhood. The paper's preferred method.
    Edge,
}

impl SelectionMethod {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SelectionMethod::ProbabilisticEq1 => "PM(eq1)",
            SelectionMethod::ProbabilisticEq2 => "PM(eq2)",
            SelectionMethod::Edge => "EM",
        }
    }
}

/// Full CARD configuration.
#[derive(Clone, Copy, Debug)]
pub struct CardConfig {
    /// Neighborhood radius R in hops (§III.B).
    pub radius: u16,
    /// Maximum contact distance r in hops (§III.B).
    pub max_contact_distance: u16,
    /// NoC: the maximum number of contacts to search for per node.
    pub target_contacts: usize,
    /// D: depth of search for queries (levels of contacts).
    pub depth: u16,
    /// Contact-selection method.
    pub method: SelectionMethod,
    /// Period between contact-validation rounds (§III.C.3). The paper does
    /// not state a value; 1 s is consistent with its 2-second reporting
    /// buckets (Figs 10–13).
    pub validation_period: SimDuration,
    /// Whether maintenance attempts local recovery on broken paths
    /// (§III.C.3); disabling it is the `ablation_local_recovery` bench.
    pub local_recovery: bool,
    /// Mobility/topology refresh tick. Connectivity and neighborhood tables
    /// are recomputed at this granularity.
    pub mobility_tick: SimDuration,
    /// Hard cap on DFS steps per CSQ (forward + backtrack). The effective
    /// per-walk budget is `min(max_csq_steps, csq_step_factor · r)` — a
    /// TTL-like lifetime, without which a failed CSQ in a saturated region
    /// would exhaust every edge within r hops (thousands of messages),
    /// far beyond the per-node overheads the paper reports.
    pub max_csq_steps: u32,
    /// Multiplier for the r-proportional walk budget (see `max_csq_steps`).
    pub csq_step_factor: u32,
    /// How many CSQ walks a below-NoC node launches per validation round
    /// (§III.C.1 step 1 sends CSQs "one at a time"; Fig 13's slowly-growing
    /// contact count shows selection trickling over many periods).
    pub selection_walks_per_round: usize,
    /// Root seed for every random decision (placement, walk choices, PM
    /// probability draws).
    pub seed: u64,
    /// Whether the §V route-hint cache is enabled (see `crate::hints`).
    /// Off by default: the cache-off query path is the bit-identical
    /// reference the hinted sweeps are measured against.
    pub hints_enabled: bool,
    /// LRU slots per distance bucket of each node's hint table
    /// (`hints::HINT_BUCKETS` buckets per node).
    pub hint_slots_per_bucket: usize,
    /// Hint TTL in validation rounds: a hint older than this is reported
    /// stale and recycled instead of probed.
    pub hint_ttl: u32,
    /// Tombstone TTL in validation rounds: how long a confirmed-dead
    /// contact is barred from CSQ re-selection (fault injection only;
    /// irrelevant in a calm world).
    pub tombstone_ttl: u32,
    /// How many unacked validation probes a contact survives before it is
    /// evicted (per-contact exponential retry; fault injection only).
    pub validation_retry_cap: u32,
    /// How many times a failed query is retried with capped exponential
    /// backoff before being abandoned (fault injection only).
    pub query_retry_cap: u32,
}

impl Default for CardConfig {
    /// Paper-flavored defaults: R=3, r=16, NoC=10, D=1, edge method.
    fn default() -> Self {
        CardConfig {
            radius: 3,
            max_contact_distance: 16,
            target_contacts: 10,
            depth: 1,
            method: SelectionMethod::Edge,
            validation_period: SimDuration::from_secs(1),
            local_recovery: true,
            mobility_tick: SimDuration::from_millis(100),
            max_csq_steps: 320,
            csq_step_factor: 1_000,
            selection_walks_per_round: 3,
            seed: 1,
            hints_enabled: false,
            hint_slots_per_bucket: 4,
            hint_ttl: 32,
            tombstone_ttl: 4,
            validation_retry_cap: 3,
            query_retry_cap: 3,
        }
    }
}

impl CardConfig {
    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style neighborhood radius override.
    pub fn with_radius(mut self, radius: u16) -> Self {
        self.radius = radius;
        self
    }

    /// Builder-style maximum contact distance override.
    pub fn with_max_contact_distance(mut self, r: u16) -> Self {
        self.max_contact_distance = r;
        self
    }

    /// Builder-style NoC override.
    pub fn with_target_contacts(mut self, noc: usize) -> Self {
        self.target_contacts = noc;
        self
    }

    /// Builder-style depth-of-search override.
    pub fn with_depth(mut self, depth: u16) -> Self {
        self.depth = depth;
        self
    }

    /// Builder-style selection-method override.
    pub fn with_method(mut self, method: SelectionMethod) -> Self {
        self.method = method;
        self
    }

    /// Builder-style route-hint cache toggle (§V; see `crate::hints`).
    pub fn with_hints(mut self, enabled: bool) -> Self {
        self.hints_enabled = enabled;
        self
    }

    /// Builder-style hint-table size override (LRU slots per bucket).
    pub fn with_hint_slots_per_bucket(mut self, slots: usize) -> Self {
        self.hint_slots_per_bucket = slots;
        self
    }

    /// Builder-style hint TTL override (validation rounds).
    pub fn with_hint_ttl(mut self, ttl: u32) -> Self {
        self.hint_ttl = ttl;
        self
    }

    /// Builder-style tombstone TTL override (validation rounds).
    pub fn with_tombstone_ttl(mut self, ttl: u32) -> Self {
        self.tombstone_ttl = ttl;
        self
    }

    /// Builder-style per-contact validation retry cap override.
    pub fn with_validation_retry_cap(mut self, cap: u32) -> Self {
        self.validation_retry_cap = cap;
        self
    }

    /// Builder-style query retry cap override.
    pub fn with_query_retry_cap(mut self, cap: u32) -> Self {
        self.query_retry_cap = cap;
        self
    }

    /// Validate the parameter combination.
    ///
    /// # Panics
    /// Panics when R = 0, D = 0, or the contact annulus is inverted
    /// (for eq.2/EM that means `r < 2R`; eq.1 needs `r >= R`). The
    /// *degenerate* case `r = 2R` is allowed — Fig 6 sweeps it — and simply
    /// yields (almost) no contacts, since no candidate can be both within
    /// `r` walk hops and strictly beyond `2R` true hops.
    pub fn validate(&self) {
        assert!(self.radius >= 1, "R must be >= 1");
        assert!(self.depth >= 1, "D must be >= 1");
        assert!(self.tombstone_ttl >= 1, "tombstone TTL must be >= 1 round");
        if self.hints_enabled {
            assert!(
                self.hint_slots_per_bucket >= 1,
                "hint buckets need at least one slot"
            );
            assert!(self.hint_ttl >= 1, "hint TTL must be >= 1 round");
        }
        match self.method {
            SelectionMethod::ProbabilisticEq1 => assert!(
                self.max_contact_distance >= self.radius,
                "PM(eq1) needs r >= R (got r={}, R={})",
                self.max_contact_distance,
                self.radius
            ),
            SelectionMethod::ProbabilisticEq2 | SelectionMethod::Edge => assert!(
                self.max_contact_distance >= 2 * self.radius,
                "{} needs r >= 2R (got r={}, R={})",
                self.method.label(),
                self.max_contact_distance,
                self.radius
            ),
        }
    }

    /// The closed hop interval `[2R, r]` a maintained contact path must
    /// stay within (§III.C.3 rule 4).
    pub fn valid_path_hops(&self) -> (u16, u16) {
        (2 * self.radius, self.max_contact_distance)
    }

    /// Effective per-walk CSQ step budget (see `max_csq_steps`).
    pub fn csq_budget(&self) -> u32 {
        self.max_csq_steps
            .min(self.csq_step_factor * self.max_contact_distance as u32)
            .max(2 * self.max_contact_distance as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_flavored() {
        let c = CardConfig::default();
        assert_eq!(c.radius, 3);
        assert_eq!(c.max_contact_distance, 16);
        assert_eq!(c.target_contacts, 10);
        assert_eq!(c.depth, 1);
        assert_eq!(c.method, SelectionMethod::Edge);
        assert!(c.local_recovery);
        assert!(!c.hints_enabled, "the cache-off reference is the default");
        assert_eq!(c.hint_slots_per_bucket, 4);
        assert_eq!(c.hint_ttl, 32);
        assert_eq!(c.tombstone_ttl, 4);
        assert_eq!(c.validation_retry_cap, 3);
        assert_eq!(c.query_retry_cap, 3);
        c.validate();
    }

    #[test]
    fn fault_builders_chain() {
        let c = CardConfig::default()
            .with_tombstone_ttl(6)
            .with_validation_retry_cap(2)
            .with_query_retry_cap(5);
        assert_eq!(c.tombstone_ttl, 6);
        assert_eq!(c.validation_retry_cap, 2);
        assert_eq!(c.query_retry_cap, 5);
        c.validate();
    }

    #[test]
    fn hint_builders_chain_and_validate() {
        let c = CardConfig::default()
            .with_hints(true)
            .with_hint_slots_per_bucket(2)
            .with_hint_ttl(8);
        assert!(c.hints_enabled);
        assert_eq!(c.hint_slots_per_bucket, 2);
        assert_eq!(c.hint_ttl, 8);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn hints_reject_zero_slots() {
        CardConfig::default()
            .with_hints(true)
            .with_hint_slots_per_bucket(0)
            .validate();
    }

    #[test]
    fn builders_chain() {
        let c = CardConfig::default()
            .with_seed(9)
            .with_radius(4)
            .with_max_contact_distance(20)
            .with_target_contacts(5)
            .with_depth(3)
            .with_method(SelectionMethod::ProbabilisticEq2);
        assert_eq!(c.seed, 9);
        assert_eq!(c.radius, 4);
        assert_eq!(c.max_contact_distance, 20);
        assert_eq!(c.target_contacts, 5);
        assert_eq!(c.depth, 3);
        assert_eq!(c.method, SelectionMethod::ProbabilisticEq2);
        c.validate();
    }

    #[test]
    fn valid_path_hops_interval() {
        let c = CardConfig::default()
            .with_radius(3)
            .with_max_contact_distance(10);
        assert_eq!(c.valid_path_hops(), (6, 10));
    }

    #[test]
    fn csq_budget_combines_cap_factor_and_floor() {
        // default: the flat 320-step cap governs (factor 1000 inoperative)
        let c = CardConfig::default()
            .with_radius(3)
            .with_max_contact_distance(10);
        assert_eq!(c.csq_budget(), 320);
        // a small factor makes the budget r-proportional
        let mut scaled = c;
        scaled.csq_step_factor = 16;
        assert_eq!(scaled.csq_budget(), 160);
        assert_eq!(scaled.with_max_contact_distance(20).csq_budget(), 320);
        // the hard cap still applies
        let mut tight = c;
        tight.max_csq_steps = 50;
        assert_eq!(tight.csq_budget(), 50);
        // and the floor keeps at least one out-and-back traversal possible
        let mut tiny = c;
        tiny.max_csq_steps = 1;
        assert_eq!(tiny.csq_budget(), 20);
    }

    #[test]
    #[should_panic(expected = "needs r >= 2R")]
    fn em_rejects_inverted_annulus() {
        CardConfig::default()
            .with_radius(3)
            .with_max_contact_distance(5)
            .validate();
    }

    #[test]
    fn em_allows_degenerate_r_equals_2r() {
        // Fig 6's r = 2R sweep point: legal, yields ~no contacts.
        CardConfig::default()
            .with_radius(3)
            .with_max_contact_distance(6)
            .validate();
    }

    #[test]
    fn eq1_allows_r_between_r_and_2r() {
        CardConfig::default()
            .with_method(SelectionMethod::ProbabilisticEq1)
            .with_radius(3)
            .with_max_contact_distance(5)
            .validate();
    }

    #[test]
    #[should_panic(expected = "R must be >= 1")]
    fn zero_radius_rejected() {
        CardConfig::default().with_radius(0).validate();
    }

    #[test]
    fn labels() {
        assert_eq!(SelectionMethod::ProbabilisticEq1.label(), "PM(eq1)");
        assert_eq!(SelectionMethod::ProbabilisticEq2.label(), "PM(eq2)");
        assert_eq!(SelectionMethod::Edge.label(), "EM");
    }
}

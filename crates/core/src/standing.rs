//! Standing queries — long-lived resource subscriptions.
//!
//! A standing query is a `(source, target)` subscription registered once
//! and kept *resolved* for the rest of the run: the source holds a contact
//! chain `source → c₁ → … → cₖ` with the target inside `cₖ`'s
//! neighborhood (`k = 0` when the target sits inside the source's own
//! neighborhood). Instead of re-running the full DSQ escalation every time
//! the subscription is consulted, the chain is *revalidated incrementally*:
//!
//! * a mobility refresh marks exactly the standing queries whose chain (or
//!   target) intersects the refresh's dirty set — untouched chains cost
//!   nothing;
//! * a validation round marks every query (contact tables may have been
//!   rewritten wholesale by maintenance and re-selection);
//! * a marked, resolved query is probed along its chain
//!   ([`sim_core::stats::MsgKind::StandingProbe`] messages, one per
//!   contact-path hop); a probe failure *breaks* the query, which is
//!   immediately re-resolved with a fresh escalation
//!   ([`sim_core::stats::MsgKind::StandingDsq`] /
//!   [`sim_core::stats::MsgKind::StandingReply`]). A failed re-resolve
//!   leaves the query broken; it retries at the next validation round.
//!
//! [`StandingStats`] accounts the lifecycle — including total virtual time
//! spent broken, the re-resolve latency the paper-style evaluation reads
//! out. This module owns the pure bookkeeping (table, per-node path index,
//! mark/drain machinery); resolution and probing live on
//! [`crate::world::CardWorld`], which owns the network and message
//! statistics.

use net_topology::node::NodeId;
use sim_core::time::SimTime;

/// Lifecycle state of a standing query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StandingState {
    /// The cached chain was valid when last checked.
    Resolved,
    /// No valid chain is held; re-resolution is pending.
    Broken,
}

/// One standing subscription and its cached answer chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StandingQuery {
    /// The subscribing node.
    pub source: NodeId,
    /// The node the subscription tracks.
    pub target: NodeId,
    /// Source-first contact chain; `[source]` alone when the target lies in
    /// the source's own neighborhood. Empty while broken.
    pub path: Vec<NodeId>,
    /// Current lifecycle state.
    pub state: StandingState,
    /// When the query last entered [`StandingState::Broken`] (registration
    /// counts: a query is born broken and resolves immediately).
    pub broken_since: SimTime,
}

impl StandingQuery {
    /// Is the cached chain currently valid?
    pub fn is_resolved(&self) -> bool {
        self.state == StandingState::Resolved
    }
}

/// Lifecycle counters of the standing-query subsystem.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StandingStats {
    /// Subscriptions registered.
    pub registered: u64,
    /// Successful initial resolutions.
    pub resolved: u64,
    /// Successful re-resolutions after a break.
    pub reresolved: u64,
    /// Resolution attempts (initial or re-) that found no chain.
    pub resolve_failures: u64,
    /// Probe failures that broke a resolved chain.
    pub breaks: u64,
    /// Marked queries examined by revalidation passes.
    pub revalidations: u64,
    /// Total virtual µs subscriptions spent broken (break → re-resolve).
    pub broken_ticks: u64,
}

/// The standing-query table: queries, the node → query path index, and the
/// pending-revalidation marks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StandingQueries {
    queries: Vec<StandingQuery>,
    /// `path_index[node]` lists the ids of resolved queries whose chain
    /// (or target) includes `node` — the set a dirty `node` invalidates.
    path_index: Vec<Vec<u32>>,
    /// Pending-revalidation flag per query id.
    marked: Vec<bool>,
    /// How many `marked` entries are set (fast emptiness check).
    mark_count: usize,
    stats: StandingStats,
}

impl StandingQueries {
    /// An empty table over a network of `n` nodes.
    pub fn new(n: usize) -> Self {
        StandingQueries {
            path_index: vec![Vec::new(); n],
            ..Self::default()
        }
    }

    /// Number of registered standing queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// All queries, indexed by id.
    pub fn queries(&self) -> &[StandingQuery] {
        &self.queries
    }

    /// One query by id.
    pub fn get(&self, id: u32) -> &StandingQuery {
        &self.queries[id as usize]
    }

    /// Lifecycle counters.
    pub fn stats(&self) -> &StandingStats {
        &self.stats
    }

    /// Create a new (broken, empty-chain) query and return its id. The
    /// caller resolves it and installs the chain via
    /// [`StandingQueries::set_resolved`].
    pub(crate) fn register(&mut self, source: NodeId, target: NodeId, now: SimTime) -> u32 {
        let id = self.queries.len() as u32;
        self.queries.push(StandingQuery {
            source,
            target,
            path: Vec::new(),
            state: StandingState::Broken,
            broken_since: now,
        });
        self.marked.push(false);
        self.stats.registered += 1;
        id
    }

    /// Install a freshly resolved chain: index it, flip the state, account
    /// the resolve (and the broken interval, for re-resolves).
    pub(crate) fn set_resolved(&mut self, id: u32, path: Vec<NodeId>, now: SimTime, initial: bool) {
        debug_assert!(
            !path.is_empty(),
            "a resolved chain holds at least the source"
        );
        let q = &mut self.queries[id as usize];
        debug_assert_eq!(q.state, StandingState::Broken, "resolve of a live chain");
        for &node in &path {
            self.path_index[node.index()].push(id);
        }
        if !path.contains(&q.target) {
            self.path_index[q.target.index()].push(id);
        }
        q.path = path;
        q.state = StandingState::Resolved;
        if initial {
            self.stats.resolved += 1;
        } else {
            self.stats.reresolved += 1;
        }
        self.stats.broken_ticks += now.since(q.broken_since).ticks();
    }

    /// Account a resolution attempt that found no chain; the query stays
    /// broken and retries at the next validation round.
    pub(crate) fn set_failed(&mut self, _id: u32) {
        self.stats.resolve_failures += 1;
    }

    /// A probe failed: drop the chain from the index, flip to broken, and
    /// start the broken clock.
    pub(crate) fn record_break(&mut self, id: u32, now: SimTime) {
        let q = &mut self.queries[id as usize];
        debug_assert_eq!(q.state, StandingState::Resolved, "break of a broken chain");
        for &node in &q.path {
            self.path_index[node.index()].retain(|&qid| qid != id);
        }
        if !q.path.contains(&q.target) {
            self.path_index[q.target.index()].retain(|&qid| qid != id);
        }
        q.path.clear();
        q.state = StandingState::Broken;
        q.broken_since = now;
        self.stats.breaks += 1;
    }

    /// Mark every query whose indexed chain touches `node`.
    pub(crate) fn mark_node_dirty(&mut self, node: NodeId) {
        for &id in &self.path_index[node.index()] {
            if !self.marked[id as usize] {
                self.marked[id as usize] = true;
                self.mark_count += 1;
            }
        }
    }

    /// Mark every query (broken ones included — validation rounds are the
    /// retry heartbeat of failed re-resolves).
    pub(crate) fn mark_all(&mut self) {
        for m in &mut self.marked {
            *m = true;
        }
        self.mark_count = self.marked.len();
    }

    /// Any marks pending?
    pub(crate) fn has_marks(&self) -> bool {
        self.mark_count > 0
    }

    /// Drain the pending marks into `out`, ascending by id.
    pub(crate) fn take_marked(&mut self, out: &mut Vec<u32>) {
        out.clear();
        if self.mark_count == 0 {
            return;
        }
        for (id, m) in self.marked.iter_mut().enumerate() {
            if *m {
                *m = false;
                out.push(id as u32);
            }
        }
        self.mark_count = 0;
    }

    /// Account one revalidation examination.
    pub(crate) fn note_revalidation(&mut self) {
        self.stats.revalidations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from(i)
    }

    #[test]
    fn register_resolve_break_cycle() {
        let mut sq = StandingQueries::new(10);
        assert!(sq.is_empty());
        let id = sq.register(n(0), n(5), SimTime::from_secs(1));
        assert_eq!(sq.len(), 1);
        assert!(!sq.get(id).is_resolved());
        sq.set_resolved(id, vec![n(0), n(3)], SimTime::from_secs(2), true);
        assert!(sq.get(id).is_resolved());
        assert_eq!(sq.get(id).path, vec![n(0), n(3)]);
        assert_eq!(sq.stats().resolved, 1);
        assert_eq!(sq.stats().broken_ticks, 1_000_000);
        // chain nodes and the target are indexed
        sq.mark_node_dirty(n(3));
        assert!(sq.has_marks());
        let mut ids = Vec::new();
        sq.take_marked(&mut ids);
        assert_eq!(ids, vec![id]);
        assert!(!sq.has_marks());
        sq.mark_node_dirty(n(5)); // the target, not on the chain
        assert!(sq.has_marks());
        sq.take_marked(&mut ids);
        assert_eq!(ids, vec![id]);
        // breaking unindexes everything
        sq.record_break(id, SimTime::from_secs(4));
        assert_eq!(sq.stats().breaks, 1);
        sq.mark_node_dirty(n(3));
        sq.mark_node_dirty(n(5));
        assert!(!sq.has_marks());
        // re-resolve accumulates broken time separately
        sq.set_resolved(id, vec![n(0), n(7)], SimTime::from_secs(7), false);
        assert_eq!(sq.stats().reresolved, 1);
        assert_eq!(sq.stats().broken_ticks, 4_000_000);
    }

    #[test]
    fn mark_all_includes_broken_queries() {
        let mut sq = StandingQueries::new(4);
        let a = sq.register(n(0), n(1), SimTime::ZERO);
        let b = sq.register(n(2), n(3), SimTime::ZERO);
        sq.set_resolved(a, vec![n(0)], SimTime::ZERO, true);
        sq.set_failed(b);
        assert_eq!(sq.stats().resolve_failures, 1);
        sq.mark_all();
        let mut ids = Vec::new();
        sq.take_marked(&mut ids);
        assert_eq!(ids, vec![a, b], "broken queries retry on mark_all");
    }

    #[test]
    fn duplicate_marks_count_once() {
        let mut sq = StandingQueries::new(4);
        let id = sq.register(n(0), n(3), SimTime::ZERO);
        sq.set_resolved(id, vec![n(0), n(1), n(2)], SimTime::ZERO, true);
        sq.mark_node_dirty(n(1));
        sq.mark_node_dirty(n(2));
        let mut ids = Vec::new();
        sq.take_marked(&mut ids);
        assert_eq!(ids, vec![id]);
    }
}

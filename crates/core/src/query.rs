//! The Destination Search Query (DSQ) — §III.C.4.
//!
//! A source looking for target T first checks its own neighborhood table.
//! Failing that it sends a DSQ with depth D=1 to each contact, one at a
//! time: the contact answers from its neighborhood table. If no answer
//! comes back, the source escalates with D=2 — contacts recognize the query
//! is not for them, decrement D and forward to *their* contacts — and so on
//! up to the configured maximum depth: a tree search over contact links,
//! "similar to the expanding ring search … \[but\] much more efficient … as
//! the queries are not flooded with different TTLs but are directed to
//! individual nodes".
//!
//! ## The query engine
//!
//! Queries are CARD's steady-state workload, so the walk machinery is built
//! for zero per-query allocation and shared by every consumer:
//!
//! * [`QueryScratch`] is an epoch-stamped workspace (mirroring
//!   `net_topology::bfs::BfsScratch`): the *seen* marks and both frontier
//!   buffers persist across queries, so starting a new walk is O(1) — no
//!   clearing, no zeroing, no allocation once the buffers have grown to
//!   the network size. [`dsq_query`], [`crate::resources::resource_query`]
//!   and [`crate::reachability::reachability_set`] all run on the same
//!   generic level-synchronous contact walker
//!   (`QueryScratch::advance_level`), differing only in their per-contact
//!   visit closure.
//! * Escalation is **incremental**: on the wire, a depth-d attempt re-sends
//!   DSQs along levels 1‥d−1 before probing level d, but the simulator need
//!   not re-traverse them — the scratch caches the deepest frontier and the
//!   cumulative per-level message cost (`QueryScratch::walked_msgs`), so
//!   depth d only walks its final level while the *accounting* stays
//!   bit-identical to the from-scratch re-walk. [`dsq_query_rewalk`] keeps
//!   the literal per-depth re-walk as the equivalence reference (pinned by
//!   `tests/query_engine.rs` and the `dsq_query/*` benches).
//! * Batched sweeps (`CardWorld::query_all`) fan pair lists out over
//!   protocol shards with shard-owned scratches; queries draw no
//!   randomness, so outcomes are a pure function of `(network, tables,
//!   pair)` and the sweep is bit-identical to its serial reference at any
//!   worker or shard count.

use manet_routing::network::Network;
use net_topology::node::NodeId;
use sim_core::stats::{MsgKind, MsgStats};
use sim_core::time::SimTime;

use crate::contact::TableSource;
use crate::hints::{HintDeposit, HintKey, HintLookup, HintStats, HintStore, Lookup};

/// Result of one resource-discovery query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Was a path to the target returned?
    pub found: bool,
    /// The escalation depth that answered (0 = own neighborhood).
    pub depth_used: u16,
    /// DSQ forward messages (all escalation attempts).
    pub query_msgs: u64,
    /// Reply messages (answering contact chain back to the source).
    pub reply_msgs: u64,
}

impl QueryOutcome {
    /// Total control messages.
    pub fn total_messages(&self) -> u64 {
        self.query_msgs + self.reply_msgs
    }
}

/// Reusable query-walk workspace: persistent *seen* marks (epoch-stamped)
/// and frontier buffers, plus the incremental-escalation cache (deepest
/// frontier, cumulative walk cost). One scratch serves any number of
/// sequential queries over graphs of any size; buffers grow to the largest
/// network seen and are then reused allocation-free (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct QueryScratch {
    /// Epoch stamp per node; `mark[v] == epoch` means seen this query.
    mark: Vec<u32>,
    /// Current epoch (bumped per query; marks are only valid against it).
    epoch: u32,
    /// Contacts of the deepest completed level, with accumulated hop
    /// distance from the source along contact paths. (Level 0 holds the
    /// source itself at distance 0.)
    frontier: Vec<(NodeId, u64)>,
    /// Next-level staging buffer (swapped with `frontier` per level).
    next: Vec<(NodeId, u64)>,
    /// Cumulative DSQ messages of all *completed* levels — what a
    /// from-scratch re-walk of those levels would charge (see
    /// [`QueryScratch::walked_msgs`]).
    walked: u64,
    /// BFS parent per node (valid only where `mark[v] == epoch`): the
    /// frontier node whose contact link discovered `v`. Lets a resolved
    /// query reconstruct the source → answer contact chain so route hints
    /// can be deposited along it (§V; see [`crate::hints`]).
    parent: Vec<NodeId>,
}

impl QueryScratch {
    /// A fresh workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for networks of `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        let mut s = Self::default();
        if s.mark.len() < n {
            s.mark.resize(n, 0);
        }
        s
    }

    /// Open a new walk from `source` over a network of `n` nodes: bump the
    /// epoch (recycling the mark array without clearing it) and reset the
    /// frontier to the source. O(1) amortized.
    pub(crate) fn begin(&mut self, n: usize, source: NodeId) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
        if self.parent.len() < n {
            self.parent.resize(n, NodeId::new(u32::MAX));
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch counter wrapped: invalidate every stale mark once.
            self.mark.fill(0);
            self.epoch = 1;
        }
        self.frontier.clear();
        self.next.clear();
        self.mark[source.index()] = self.epoch;
        self.parent[source.index()] = source; // chain terminator
        self.frontier.push((source, 0));
        self.walked = 0;
    }

    /// DSQ messages a from-scratch walk of every completed level would
    /// cost — the incremental escalation charges this instead of
    /// re-traversing (escalation re-sends queries on the wire; the message
    /// count is real even though the simulator walks each level once).
    pub(crate) fn walked_msgs(&self) -> u64 {
        self.walked
    }

    /// Advance the walk by one level: consume every not-yet-seen contact of
    /// the current frontier (each contact at its *minimal* level — loop
    /// prevention via the epoch marks, matching §III.C.4's query IDs),
    /// charging its path hops to `msgs` and calling
    /// `visit(contact, hops from source)`. A `Some` from `visit` aborts
    /// the walk immediately (the query was answered; the scratch is left
    /// mid-level and must be re-`begin`ed). Otherwise the discovered
    /// contacts become the new frontier and the level's cost is added to
    /// [`QueryScratch::walked_msgs`].
    pub(crate) fn advance_level<R, T: TableSource + ?Sized>(
        &mut self,
        contact_tables: &T,
        msgs: &mut u64,
        mut visit: impl FnMut(NodeId, u64) -> Option<R>,
    ) -> Option<R> {
        self.next.clear();
        let epoch = self.epoch;
        let mut level_msgs = 0u64;
        for fi in 0..self.frontier.len() {
            let (node, dist) = self.frontier[fi];
            for contact in contact_tables.table(node.index()).contacts() {
                let c = contact.id;
                if self.mark[c.index()] == epoch {
                    continue;
                }
                self.mark[c.index()] = epoch;
                self.parent[c.index()] = node;
                let hops = contact.hops() as u64;
                let at_contact = dist + hops;
                *msgs += hops;
                level_msgs += hops;
                if let Some(r) = visit(c, at_contact) {
                    return Some(r);
                }
                self.next.push((c, at_contact));
            }
        }
        std::mem::swap(&mut self.frontier, &mut self.next);
        self.walked += level_msgs;
        None
    }

    /// [`advance_level`](Self::advance_level) with a fault filter: a
    /// contact edge `(holder, contact)` vetoed by `edge_ok` is neither
    /// traversed, marked, nor charged — the sender learned from its failed
    /// validation that the relay is gone, so no probe is emitted. A vetoed
    /// contact stays discoverable through a different (allowed) edge at
    /// this or a deeper level. With a pass-all filter this is exactly
    /// `advance_level`.
    pub(crate) fn advance_level_filtered<R, T: TableSource + ?Sized>(
        &mut self,
        contact_tables: &T,
        msgs: &mut u64,
        edge_ok: &dyn Fn(NodeId, NodeId) -> bool,
        mut visit: impl FnMut(NodeId, u64) -> Option<R>,
    ) -> Option<R> {
        self.next.clear();
        let epoch = self.epoch;
        let mut level_msgs = 0u64;
        for fi in 0..self.frontier.len() {
            let (node, dist) = self.frontier[fi];
            for contact in contact_tables.table(node.index()).contacts() {
                let c = contact.id;
                if self.mark[c.index()] == epoch {
                    continue;
                }
                if !edge_ok(node, c) {
                    continue;
                }
                self.mark[c.index()] = epoch;
                self.parent[c.index()] = node;
                let hops = contact.hops() as u64;
                let at_contact = dist + hops;
                *msgs += hops;
                level_msgs += hops;
                if let Some(r) = visit(c, at_contact) {
                    return Some(r);
                }
                self.next.push((c, at_contact));
            }
        }
        std::mem::swap(&mut self.frontier, &mut self.next);
        self.walked += level_msgs;
        None
    }

    /// No contact remains to expand (deeper levels cannot discover — or
    /// charge — anything).
    pub(crate) fn exhausted(&self) -> bool {
        self.frontier.is_empty()
    }

    /// The contact chain source → `node` recorded by the current walk's
    /// parent pointers, written into `buf` source-first. `node` must have
    /// been visited in the current epoch (parents of unvisited nodes are
    /// stale).
    pub(crate) fn walk_path(&self, node: NodeId, buf: &mut Vec<NodeId>) {
        buf.clear();
        let mut cur = node;
        loop {
            buf.push(cur);
            let p = self.parent[cur.index()];
            if p == cur {
                break;
            }
            cur = p;
        }
        buf.reverse();
    }
}

/// The shared escalation driver behind [`dsq_query`] and
/// [`crate::resources::resource_query`], *without* statistics recording:
/// walk depths 1‥`max_depth`, each depth charging the full re-walk cost of
/// the levels below it ([`QueryScratch::walked_msgs`]) and then traversing
/// only its final level, where `answers(contact)` is the
/// neighborhood-table lookup. Message totals and outcomes are bit-identical
/// to the per-depth re-walk ([`dsq_query_rewalk`]). Batched sweeps use
/// this directly and record per-shard message *totals* once — identical
/// buckets, since every query of a sweep lands at the same instant and
/// zero counts never record.
pub(crate) fn escalate_unrecorded<T: TableSource>(
    n: usize,
    contact_tables: T,
    source: NodeId,
    max_depth: u16,
    scratch: &mut QueryScratch,
    mut answers: impl FnMut(NodeId) -> bool,
) -> QueryOutcome {
    scratch.begin(n, source);
    let mut query_msgs = 0u64;
    for depth in 1..=max_depth {
        // The wire cost of re-sending the query along levels 1..depth-1.
        query_msgs += scratch.walked_msgs();
        let reply = scratch.advance_level(&contact_tables, &mut query_msgs, |c, at_contact| {
            answers(c).then_some(at_contact)
        });
        if let Some(reply) = reply {
            return QueryOutcome {
                found: true,
                depth_used: depth,
                query_msgs,
                reply_msgs: reply,
            };
        }
    }
    QueryOutcome {
        found: false,
        depth_used: max_depth,
        query_msgs,
        reply_msgs: 0,
    }
}

/// [`escalate_unrecorded`] plus the per-query statistics recording of the
/// single-query entry points: DSQ forwards always, the reply chain when a
/// depth ≥ 1 level answered (a zero count never records, so the no-contact
/// miss stays invisible in the buckets, as it always was).
#[allow(clippy::too_many_arguments)] // mirrors the protocol message fields
pub(crate) fn escalate<T: TableSource>(
    n: usize,
    contact_tables: T,
    source: NodeId,
    max_depth: u16,
    stats: &mut MsgStats,
    at: SimTime,
    scratch: &mut QueryScratch,
    answers: impl FnMut(NodeId) -> bool,
) -> QueryOutcome {
    let out = escalate_unrecorded(n, contact_tables, source, max_depth, scratch, answers);
    stats.record_n(at, MsgKind::Dsq, out.query_msgs);
    stats.record_n(at, MsgKind::DsqReply, out.reply_msgs);
    out
}

/// [`dsq_query`] without statistics recording — the per-pair body of the
/// batched `CardWorld::query_all` sweep, which accounts its shard's
/// message totals in bulk (bit-identical bucket sums; see
/// [`escalate_unrecorded`]).
pub(crate) fn dsq_query_unrecorded<T: TableSource>(
    net: &Network,
    contact_tables: T,
    source: NodeId,
    target: NodeId,
    max_depth: u16,
    scratch: &mut QueryScratch,
) -> QueryOutcome {
    let tables = net.tables();
    if tables.of(source).contains(target) {
        return QueryOutcome {
            found: true,
            depth_used: 0,
            query_msgs: 0,
            reply_msgs: 0,
        };
    }
    escalate_unrecorded(
        net.node_count(),
        contact_tables,
        source,
        max_depth,
        scratch,
        |c| tables.of(c).contains(target),
    )
}

/// Run a full CARD query from `source` for `target`, escalating the depth
/// of search from 1 to `max_depth` (§III.C.4). Messages are recorded into
/// `stats` at time `at`; the walk runs allocation-free on `scratch`
/// (escalation is incremental — see the module docs).
#[allow(clippy::too_many_arguments)] // mirrors the protocol message fields
pub fn dsq_query<T: TableSource>(
    net: &Network,
    contact_tables: T,
    source: NodeId,
    target: NodeId,
    max_depth: u16,
    stats: &mut MsgStats,
    at: SimTime,
    scratch: &mut QueryScratch,
) -> QueryOutcome {
    let out = dsq_query_unrecorded(net, contact_tables, source, target, max_depth, scratch);
    stats.record_n(at, MsgKind::Dsq, out.query_msgs);
    stats.record_n(at, MsgKind::DsqReply, out.reply_msgs);
    out
}

// ---------------------------------------------------------------------------
// Hinted queries — the §V route-hint short-cut (see `crate::hints`).
// ---------------------------------------------------------------------------

/// Hard cap on a directed probe's chain length. Chain buffers live on the
/// stack; configured escalation depths sit far below this.
pub(crate) const MAX_CHAIN: usize = 16;

/// Failed directed probes tolerated per query before the walk stops
/// consulting relay hints — bounds the messages a trail of stale chains
/// can waste on one query.
const MAX_FAILED_CHASES: u32 = 4;

/// Borrowed view of the hint subsystem threaded through one hinted query:
/// a *read-only* store (frozen for the whole parallel phase of a sharded
/// sweep), the caller's counters, and a deposit log. Deposits are queued,
/// not applied — `CardWorld` applies them in shard order after the sweep
/// (or immediately after a single live query), which keeps hinted sweeps
/// bit-identical at any worker or shard count.
pub struct HintContext<'a, S: HintLookup = &'a HintStore> {
    /// The hint tables consulted (never written during the query).
    pub store: S,
    /// Hit/miss/staleness counters (summed, so shard merges commute).
    pub stats: &'a mut HintStats,
    /// Hints the resolved query wants deposited along its answer chain.
    pub deposits: &'a mut Vec<HintDeposit>,
}

/// Outcome of one directed probe down a hint chain.
struct Chase {
    /// Reply hop count when the probe reached an answering node.
    reply: Option<u64>,
    /// Contact-graph steps taken (chain nodes touched past the start).
    steps: usize,
    /// Probe messages spent (contact-path hops of every step).
    probe_msgs: u64,
}

/// Follow hints for `key` from `start` (at `start_dist` reply hops from
/// the source) for at most `budget` contact-graph steps, verifying each
/// reached node against `answers`. Every hop resolves the hint's next
/// contact against the holder's *live* contact table — a departed contact
/// is a `stale_contact` miss, never a forward — so a probe can only reach
/// nodes the plain escalation could also reach, only cheaper. The chain
/// walked is left in `chain[..=steps]`.
#[allow(clippy::too_many_arguments)] // mirrors the protocol message fields
fn chase<T: TableSource + ?Sized, S: HintLookup + ?Sized>(
    contact_tables: &T,
    store: &S,
    stats: &mut HintStats,
    key: HintKey,
    start: NodeId,
    start_dist: u64,
    budget: usize,
    chain: &mut [NodeId; MAX_CHAIN],
    answers: &mut impl FnMut(NodeId) -> bool,
) -> Chase {
    let budget = budget.min(MAX_CHAIN - 1);
    chain[0] = start;
    let mut node = start;
    let mut dist = start_dist;
    let mut probe_msgs = 0u64;
    let mut steps = 0usize;
    while steps < budget {
        stats.lookups += 1;
        let hint = match store.lookup(node, key) {
            Lookup::Hit(h) => h,
            Lookup::Expired => {
                stats.stale_ttl += 1;
                break;
            }
            Lookup::Absent => {
                stats.miss_absent += 1;
                break;
            }
        };
        let Some(contact) = contact_tables.table(node.index()).get(hint.next_hop) else {
            stats.stale_contact += 1;
            break;
        };
        stats.hits += 1;
        let hops = contact.hops() as u64;
        probe_msgs += hops;
        dist += hops;
        node = hint.next_hop;
        steps += 1;
        chain[steps] = node;
        if answers(node) {
            return Chase {
                reply: Some(dist),
                steps,
                probe_msgs,
            };
        }
    }
    Chase {
        reply: None,
        steps,
        probe_msgs,
    }
}

/// Queue one hint per chain node (except the answer itself): at chain
/// node `i`, forward to `chain[i+1]`, with the remaining steps as the
/// distance-bucket depth.
fn push_chain_deposits(deposits: &mut Vec<HintDeposit>, key: HintKey, chain: &[NodeId]) {
    let last = chain.len() - 1;
    for (i, pair) in chain.windows(2).enumerate() {
        deposits.push(HintDeposit {
            holder: pair[0],
            key,
            next_hop: pair[1],
            depth: (last - i) as u16,
        });
    }
}

/// A walk-level hit of the hinted escalation.
enum HintedHit {
    /// The plain level walk answered at `answer`.
    Walk { answer: NodeId, reply: u64 },
    /// A relay's hint chain answered: `steps` probe hops past `relay`.
    Chase {
        relay: NodeId,
        steps: usize,
        reply: u64,
    },
}

/// The hinted escalation driver: try a directed probe from the source's
/// own hints first; on miss, fall back to the standard incremental
/// escalation ([`escalate_unrecorded`]), peeking at each visited relay's
/// hints along the way (a fresh relay hint forks a bounded probe for the
/// remaining depth). Either way the answer predicate is always verified
/// against live state, so *outcomes* match the plain escalation exactly —
/// hints change message cost, never answers: any node a probe can reach
/// lies ≤ `max_depth` contact-edges from the source (probes follow
/// contact-table edges, the same relation the walk expands, and the walk
/// visits every such node at its minimal level), and a probe miss falls
/// back to the full walk. Resolved queries queue §V hint deposits along
/// the entire source → answer chain.
#[allow(clippy::too_many_arguments)] // mirrors the protocol message fields
pub(crate) fn escalate_hinted_unrecorded<T: TableSource, S: HintLookup>(
    n: usize,
    contact_tables: T,
    ctx: &mut HintContext<'_, S>,
    key: HintKey,
    source: NodeId,
    max_depth: u16,
    scratch: &mut QueryScratch,
    mut answers: impl FnMut(NodeId) -> bool,
) -> QueryOutcome {
    // Source-side probe: a fresh chain answers for probe messages alone.
    let mut src_chain = [source; MAX_CHAIN];
    let src = chase(
        &contact_tables,
        &ctx.store,
        ctx.stats,
        key,
        source,
        0,
        max_depth as usize,
        &mut src_chain,
        &mut answers,
    );
    if src.steps > 0 {
        ctx.stats.chases += 1;
    }
    ctx.stats.probe_msgs += src.probe_msgs;
    if let Some(reply) = src.reply {
        ctx.stats.chase_hits += 1;
        push_chain_deposits(ctx.deposits, key, &src_chain[..=src.steps]);
        return QueryOutcome {
            found: true,
            depth_used: src.steps as u16,
            query_msgs: src.probe_msgs,
            reply_msgs: reply,
        };
    }
    let mut failed_chases: u32 = (src.steps > 0) as u32;

    // Fallback: the incremental escalation, consulting relay hints on the
    // way. Failed probes cost their messages and the walk continues
    // unchanged; the escalation itself is the one `escalate_unrecorded`
    // runs (same order, same marks), so discovery is identical.
    scratch.begin(n, source);
    let mut query_msgs = src.probe_msgs;
    let mut chase_chain = [source; MAX_CHAIN];
    for depth in 1..=max_depth {
        query_msgs += scratch.walked_msgs();
        let mut probe_spent = 0u64;
        let hit = {
            let tables = &contact_tables;
            let stats = &mut *ctx.stats;
            let store = &ctx.store;
            let failed = &mut failed_chases;
            let probe = &mut probe_spent;
            let chain = &mut chase_chain;
            let ans = &mut answers;
            scratch.advance_level(tables, &mut query_msgs, |c, at_contact| {
                if ans(c) {
                    return Some(HintedHit::Walk {
                        answer: c,
                        reply: at_contact,
                    });
                }
                if depth < max_depth && *failed < MAX_FAILED_CHASES {
                    let budget = (max_depth - depth) as usize;
                    let res = chase(tables, store, stats, key, c, at_contact, budget, chain, ans);
                    if res.steps > 0 {
                        stats.chases += 1;
                    }
                    stats.probe_msgs += res.probe_msgs;
                    *probe += res.probe_msgs;
                    if let Some(reply) = res.reply {
                        stats.chase_hits += 1;
                        return Some(HintedHit::Chase {
                            relay: c,
                            steps: res.steps,
                            reply,
                        });
                    }
                    if res.steps > 0 {
                        *failed += 1;
                    }
                }
                None
            })
        };
        query_msgs += probe_spent;
        if let Some(hit) = hit {
            let mut path: Vec<NodeId> = Vec::new();
            return match hit {
                HintedHit::Walk { answer, reply } => {
                    scratch.walk_path(answer, &mut path);
                    push_chain_deposits(ctx.deposits, key, &path);
                    QueryOutcome {
                        found: true,
                        depth_used: depth,
                        query_msgs,
                        reply_msgs: reply,
                    }
                }
                HintedHit::Chase {
                    relay,
                    steps,
                    reply,
                } => {
                    scratch.walk_path(relay, &mut path);
                    path.extend_from_slice(&chase_chain[1..=steps]);
                    push_chain_deposits(ctx.deposits, key, &path);
                    QueryOutcome {
                        found: true,
                        depth_used: depth + steps as u16,
                        query_msgs,
                        reply_msgs: reply,
                    }
                }
            };
        }
    }
    QueryOutcome {
        found: false,
        depth_used: max_depth,
        query_msgs,
        reply_msgs: 0,
    }
}

/// [`dsq_query_hinted`] without statistics recording — the per-pair body
/// of the hinted `CardWorld::query_all` sweep.
pub(crate) fn dsq_query_hinted_unrecorded<T: TableSource, S: HintLookup>(
    net: &Network,
    contact_tables: T,
    ctx: &mut HintContext<'_, S>,
    source: NodeId,
    target: NodeId,
    max_depth: u16,
    scratch: &mut QueryScratch,
) -> QueryOutcome {
    let tables = net.tables();
    if tables.of(source).contains(target) {
        return QueryOutcome {
            found: true,
            depth_used: 0,
            query_msgs: 0,
            reply_msgs: 0,
        };
    }
    escalate_hinted_unrecorded(
        net.node_count(),
        contact_tables,
        ctx,
        HintKey::node(target),
        source,
        max_depth,
        scratch,
        |c| tables.of(c).contains(target),
    )
}

/// [`dsq_query`] with the §V route-hint cache consulted first and hint
/// deposits queued on resolution (see [`HintContext`] and
/// [`crate::hints`]). Outcome `found`/`depth` semantics match
/// [`dsq_query`]; only the message cost differs.
#[allow(clippy::too_many_arguments)] // mirrors the protocol message fields
pub fn dsq_query_hinted<T: TableSource, S: HintLookup>(
    net: &Network,
    contact_tables: T,
    ctx: &mut HintContext<'_, S>,
    source: NodeId,
    target: NodeId,
    max_depth: u16,
    stats: &mut MsgStats,
    at: SimTime,
    scratch: &mut QueryScratch,
) -> QueryOutcome {
    let out =
        dsq_query_hinted_unrecorded(net, contact_tables, ctx, source, target, max_depth, scratch);
    stats.record_n(at, MsgKind::Dsq, out.query_msgs);
    stats.record_n(at, MsgKind::DsqReply, out.reply_msgs);
    out
}

// ---------------------------------------------------------------------------
// Faulted queries — the fault-injection variants of the walk and the chase.
// ---------------------------------------------------------------------------

/// Fault view threaded through the faulted query paths: the crash mask and
/// (while a partition window is open) the frozen per-node sides. Borrowed
/// from the world's `FaultState` for the duration of one query.
#[derive(Clone, Copy)]
pub struct QueryFaultFilter<'a> {
    /// `down[i]` — node `i` is crashed.
    pub down: &'a [bool],
    /// Frozen partition sides, `None` while no partition is active.
    pub sides: Option<&'a [u8]>,
}

impl QueryFaultFilter<'_> {
    /// Can a query hop travel from `a` to `b`? `a` is assumed alive (it
    /// is holding the query); `b` must be alive and on the same side of
    /// an open partition.
    #[inline]
    pub fn edge_ok(&self, a: NodeId, b: NodeId) -> bool {
        !self.down[b.index()] && self.sides.is_none_or(|s| s[a.index()] == s[b.index()])
    }
}

/// [`escalate_unrecorded`] under a fault filter: contact edges into
/// crashed nodes or across the partition cut are vetoed (see
/// [`QueryScratch::advance_level_filtered`]). The `answers` predicate
/// still decides resolution, so callers fold target-side fault checks
/// into it.
pub(crate) fn escalate_faulted_unrecorded<T: TableSource>(
    n: usize,
    contact_tables: T,
    source: NodeId,
    max_depth: u16,
    scratch: &mut QueryScratch,
    filter: &QueryFaultFilter<'_>,
    mut answers: impl FnMut(NodeId) -> bool,
) -> QueryOutcome {
    scratch.begin(n, source);
    let mut query_msgs = 0u64;
    let edge_ok = |a: NodeId, b: NodeId| filter.edge_ok(a, b);
    for depth in 1..=max_depth {
        query_msgs += scratch.walked_msgs();
        let reply =
            scratch.advance_level_filtered(&contact_tables, &mut query_msgs, &edge_ok, |c, d| {
                answers(c).then_some(d)
            });
        if let Some(reply) = reply {
            return QueryOutcome {
                found: true,
                depth_used: depth,
                query_msgs,
                reply_msgs: reply,
            };
        }
    }
    QueryOutcome {
        found: false,
        depth_used: max_depth,
        query_msgs,
        reply_msgs: 0,
    }
}

/// [`dsq_query_unrecorded`] under a fault filter. The depth-0 shortcut and
/// the answer predicate both require the answering zone to actually reach
/// the target: the target must be up (checked by the caller or by
/// `edge_ok`) and on the answerer's side of an open partition.
pub(crate) fn dsq_query_faulted_unrecorded<T: TableSource>(
    net: &Network,
    contact_tables: T,
    source: NodeId,
    target: NodeId,
    max_depth: u16,
    scratch: &mut QueryScratch,
    filter: &QueryFaultFilter<'_>,
) -> QueryOutcome {
    let tables = net.tables();
    if tables.of(source).contains(target) && filter.edge_ok(source, target) {
        return QueryOutcome {
            found: true,
            depth_used: 0,
            query_msgs: 0,
            reply_msgs: 0,
        };
    }
    escalate_faulted_unrecorded(
        net.node_count(),
        contact_tables,
        source,
        max_depth,
        scratch,
        filter,
        |c| tables.of(c).contains(target) && filter.edge_ok(c, target),
    )
}

/// [`chase`] under a fault filter: a hint whose next hop is crashed or
/// beyond the partition cut ends the probe as a `stale_contact` miss (the
/// dead-relay fallback — the caller's walk takes over), instead of
/// chasing a dead relay or forwarding into a stale id.
#[allow(clippy::too_many_arguments)] // mirrors the protocol message fields
fn chase_faulted<T: TableSource + ?Sized, S: HintLookup + ?Sized>(
    contact_tables: &T,
    store: &S,
    stats: &mut HintStats,
    key: HintKey,
    start: NodeId,
    start_dist: u64,
    budget: usize,
    chain: &mut [NodeId; MAX_CHAIN],
    filter: &QueryFaultFilter<'_>,
    answers: &mut impl FnMut(NodeId) -> bool,
) -> Chase {
    let budget = budget.min(MAX_CHAIN - 1);
    chain[0] = start;
    let mut node = start;
    let mut dist = start_dist;
    let mut probe_msgs = 0u64;
    let mut steps = 0usize;
    while steps < budget {
        stats.lookups += 1;
        let hint = match store.lookup(node, key) {
            Lookup::Hit(h) => h,
            Lookup::Expired => {
                stats.stale_ttl += 1;
                break;
            }
            Lookup::Absent => {
                stats.miss_absent += 1;
                break;
            }
        };
        let Some(contact) = contact_tables.table(node.index()).get(hint.next_hop) else {
            stats.stale_contact += 1;
            break;
        };
        if !filter.edge_ok(node, hint.next_hop) {
            stats.stale_contact += 1;
            break;
        }
        stats.hits += 1;
        let hops = contact.hops() as u64;
        probe_msgs += hops;
        dist += hops;
        node = hint.next_hop;
        steps += 1;
        chain[steps] = node;
        if answers(node) {
            return Chase {
                reply: Some(dist),
                steps,
                probe_msgs,
            };
        }
    }
    Chase {
        reply: None,
        steps,
        probe_msgs,
    }
}

/// [`escalate_hinted_unrecorded`] under a fault filter: the source probe,
/// every relay probe and the fallback walk all veto edges into crashed
/// nodes and across the partition cut, so a cached hint pointing at a
/// dead relay degrades into a `stale_contact` miss and the query falls
/// back to the (filtered) walk.
#[allow(clippy::too_many_arguments)] // mirrors the protocol message fields
pub(crate) fn escalate_hinted_faulted_unrecorded<T: TableSource, S: HintLookup>(
    n: usize,
    contact_tables: T,
    ctx: &mut HintContext<'_, S>,
    key: HintKey,
    source: NodeId,
    max_depth: u16,
    scratch: &mut QueryScratch,
    filter: &QueryFaultFilter<'_>,
    mut answers: impl FnMut(NodeId) -> bool,
) -> QueryOutcome {
    let mut src_chain = [source; MAX_CHAIN];
    let src = chase_faulted(
        &contact_tables,
        &ctx.store,
        ctx.stats,
        key,
        source,
        0,
        max_depth as usize,
        &mut src_chain,
        filter,
        &mut answers,
    );
    if src.steps > 0 {
        ctx.stats.chases += 1;
    }
    ctx.stats.probe_msgs += src.probe_msgs;
    if let Some(reply) = src.reply {
        ctx.stats.chase_hits += 1;
        push_chain_deposits(ctx.deposits, key, &src_chain[..=src.steps]);
        return QueryOutcome {
            found: true,
            depth_used: src.steps as u16,
            query_msgs: src.probe_msgs,
            reply_msgs: reply,
        };
    }
    let mut failed_chases: u32 = (src.steps > 0) as u32;

    scratch.begin(n, source);
    let mut query_msgs = src.probe_msgs;
    let mut chase_chain = [source; MAX_CHAIN];
    let edge_ok = |a: NodeId, b: NodeId| filter.edge_ok(a, b);
    for depth in 1..=max_depth {
        query_msgs += scratch.walked_msgs();
        let mut probe_spent = 0u64;
        let hit = {
            let tables = &contact_tables;
            let stats = &mut *ctx.stats;
            let store = &ctx.store;
            let failed = &mut failed_chases;
            let probe = &mut probe_spent;
            let chain = &mut chase_chain;
            let ans = &mut answers;
            scratch.advance_level_filtered(tables, &mut query_msgs, &edge_ok, |c, at_contact| {
                if ans(c) {
                    return Some(HintedHit::Walk {
                        answer: c,
                        reply: at_contact,
                    });
                }
                if depth < max_depth && *failed < MAX_FAILED_CHASES {
                    let budget = (max_depth - depth) as usize;
                    let res = chase_faulted(
                        tables, store, stats, key, c, at_contact, budget, chain, filter, ans,
                    );
                    if res.steps > 0 {
                        stats.chases += 1;
                    }
                    stats.probe_msgs += res.probe_msgs;
                    *probe += res.probe_msgs;
                    if let Some(reply) = res.reply {
                        stats.chase_hits += 1;
                        return Some(HintedHit::Chase {
                            relay: c,
                            steps: res.steps,
                            reply,
                        });
                    }
                    if res.steps > 0 {
                        *failed += 1;
                    }
                }
                None
            })
        };
        query_msgs += probe_spent;
        if let Some(hit) = hit {
            let mut path: Vec<NodeId> = Vec::new();
            return match hit {
                HintedHit::Walk { answer, reply } => {
                    scratch.walk_path(answer, &mut path);
                    push_chain_deposits(ctx.deposits, key, &path);
                    QueryOutcome {
                        found: true,
                        depth_used: depth,
                        query_msgs,
                        reply_msgs: reply,
                    }
                }
                HintedHit::Chase {
                    relay,
                    steps,
                    reply,
                } => {
                    scratch.walk_path(relay, &mut path);
                    path.extend_from_slice(&chase_chain[1..=steps]);
                    push_chain_deposits(ctx.deposits, key, &path);
                    QueryOutcome {
                        found: true,
                        depth_used: depth + steps as u16,
                        query_msgs,
                        reply_msgs: reply,
                    }
                }
            };
        }
    }
    QueryOutcome {
        found: false,
        depth_used: max_depth,
        query_msgs,
        reply_msgs: 0,
    }
}

/// [`dsq_query_hinted_unrecorded`] under a fault filter (see
/// [`escalate_hinted_faulted_unrecorded`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn dsq_query_hinted_faulted_unrecorded<T: TableSource, S: HintLookup>(
    net: &Network,
    contact_tables: T,
    ctx: &mut HintContext<'_, S>,
    source: NodeId,
    target: NodeId,
    max_depth: u16,
    scratch: &mut QueryScratch,
    filter: &QueryFaultFilter<'_>,
) -> QueryOutcome {
    let tables = net.tables();
    if tables.of(source).contains(target) && filter.edge_ok(source, target) {
        return QueryOutcome {
            found: true,
            depth_used: 0,
            query_msgs: 0,
            reply_msgs: 0,
        };
    }
    escalate_hinted_faulted_unrecorded(
        net.node_count(),
        contact_tables,
        ctx,
        HintKey::node(target),
        source,
        max_depth,
        scratch,
        filter,
        |c| tables.of(c).contains(target) && filter.edge_ok(c, target),
    )
}

// ---------------------------------------------------------------------------
// Query retry — capped exponential backoff for faulted misses.
// ---------------------------------------------------------------------------

/// Counters of one [`QueryRetryQueue`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Failed queries accepted for retry.
    pub scheduled: u64,
    /// Retry attempts actually re-run.
    pub retried: u64,
    /// Retries that resolved.
    pub recovered: u64,
    /// Queries given up after the attempt cap.
    pub abandoned: u64,
}

#[derive(Clone, Debug)]
struct RetryEntry {
    source: NodeId,
    target: NodeId,
    attempt: u32,
    wait: u32,
}

/// Retry queue for queries that failed under faults (frontier partitioned
/// away, relays crashed): each failed query re-runs after an exponentially
/// growing number of validation rounds (1, 2, 4, … capped at 8) until it
/// resolves or `cap` attempts are spent. Draining is driven by the
/// validation-round lattice, so retry timing — like everything else in the
/// fault plane — is identical between tick and event drivers and across
/// shard counts.
#[derive(Clone, Debug)]
pub struct QueryRetryQueue {
    entries: Vec<RetryEntry>,
    cap: u32,
    stats: RetryStats,
}

impl QueryRetryQueue {
    /// An empty queue abandoning queries after `cap` retry attempts.
    pub fn new(cap: u32) -> Self {
        QueryRetryQueue {
            entries: Vec::new(),
            cap,
            stats: RetryStats::default(),
        }
    }

    /// Outstanding retries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is waiting to retry.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cumulative counters.
    pub fn stats(&self) -> &RetryStats {
        &self.stats
    }

    /// Accept a freshly failed query for retry (first attempt re-runs at
    /// the next round). A `(source, target)` pair already queued is not
    /// queued twice.
    pub fn schedule(&mut self, source: NodeId, target: NodeId) {
        if self.cap == 0 {
            return;
        }
        if self
            .entries
            .iter()
            .any(|e| e.source == source && e.target == target)
        {
            return;
        }
        self.stats.scheduled += 1;
        self.entries.push(RetryEntry {
            source,
            target,
            attempt: 1,
            wait: 1,
        });
    }

    /// Advance one validation round: every entry's wait decreases by one
    /// and the now-due entries are moved into `due` (insertion order) as
    /// `(source, target, attempt)`. The caller re-runs each and feeds the
    /// outcome back through [`report`](Self::report).
    pub fn tick(&mut self, due: &mut Vec<(NodeId, NodeId, u32)>) {
        due.clear();
        let mut i = 0;
        while i < self.entries.len() {
            self.entries[i].wait -= 1;
            if self.entries[i].wait == 0 {
                let e = self.entries.remove(i);
                due.push((e.source, e.target, e.attempt));
            } else {
                i += 1;
            }
        }
    }

    /// Record the outcome of a due retry: a hit counts as recovered; a
    /// miss re-queues with doubled backoff until `cap` attempts are spent.
    pub fn report(&mut self, source: NodeId, target: NodeId, attempt: u32, found: bool) {
        self.stats.retried += 1;
        if found {
            self.stats.recovered += 1;
        } else if attempt >= self.cap {
            self.stats.abandoned += 1;
        } else {
            self.entries.push(RetryEntry {
                source,
                target,
                attempt: attempt + 1,
                wait: 1 << attempt.min(3),
            });
        }
    }
}

/// One from-scratch escalation attempt at exactly `depth` levels: a
/// level-synchronous walk of the contact graph. Every contact is consumed
/// at its *minimal* level (loop prevention via query IDs), so the set of
/// neighborhoods consulted matches [`crate::reachability::reachability_set`]
/// exactly — level-k contacts relay when k < depth and answer from their
/// neighborhood tables when k = depth (§III.C.4). Returns the reply hop
/// count when found.
fn attempt_rewalk<T: TableSource + ?Sized>(
    net: &Network,
    contact_tables: &T,
    source: NodeId,
    target: NodeId,
    depth: u16,
    query_msgs: &mut u64,
) -> Option<u64> {
    let mut seen = vec![false; net.node_count()];
    seen[source.index()] = true;
    // (contact, accumulated hops from the source along contact paths)
    let mut frontier: Vec<(NodeId, u64)> = vec![(source, 0)];

    for level in 1..=depth {
        let mut next = Vec::new();
        for &(node, dist) in &frontier {
            for contact in contact_tables.table(node.index()).contacts() {
                let c = contact.id;
                if seen[c.index()] {
                    continue;
                }
                seen[c.index()] = true;
                let at_contact = dist + contact.hops() as u64;
                *query_msgs += contact.hops() as u64;
                if level == depth {
                    // final level: answer from the neighborhood table
                    if net.tables().of(c).contains(target) {
                        return Some(at_contact);
                    }
                } else {
                    next.push((c, at_contact));
                }
            }
        }
        frontier = next;
        if frontier.is_empty() && level < depth {
            break; // ran out of contacts before reaching the final level
        }
    }
    None
}

/// The from-scratch re-walk reference for [`dsq_query`]: every escalation
/// depth restarts its level-synchronous walk from the source, allocating
/// fresh visited/frontier buffers per attempt — the literal §III.C.4
/// semantics the incremental engine must reproduce bit for bit (outcome
/// *and* message accounting). Kept, like `Network::refresh_full` and the
/// `CardWorld::*_serial` sweeps, as the equivalence anchor for tests
/// (`tests/query_engine.rs`) and the `dsq_query/*` benches.
pub fn dsq_query_rewalk<T: TableSource>(
    net: &Network,
    contact_tables: T,
    source: NodeId,
    target: NodeId,
    max_depth: u16,
    stats: &mut MsgStats,
    at: SimTime,
) -> QueryOutcome {
    if net.tables().of(source).contains(target) {
        return QueryOutcome {
            found: true,
            depth_used: 0,
            query_msgs: 0,
            reply_msgs: 0,
        };
    }

    let mut query_msgs = 0u64;
    for depth in 1..=max_depth {
        if let Some(reply) =
            attempt_rewalk(net, &contact_tables, source, target, depth, &mut query_msgs)
        {
            stats.record_n(at, MsgKind::Dsq, query_msgs);
            stats.record_n(at, MsgKind::DsqReply, reply);
            return QueryOutcome {
                found: true,
                depth_used: depth,
                query_msgs,
                reply_msgs: reply,
            };
        }
    }

    stats.record_n(at, MsgKind::Dsq, query_msgs);
    QueryOutcome {
        found: false,
        depth_used: max_depth,
        query_msgs,
        reply_msgs: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::{Contact, ContactTable};
    use net_topology::geometry::{Field, Point2};
    use sim_core::time::SimDuration;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn mk_stats() -> MsgStats {
        MsgStats::new(SimDuration::from_secs(2))
    }

    /// `dsq_query` on a throwaway scratch, checked on the spot against the
    /// re-walk reference (every unit scenario doubles as an equivalence
    /// case; the broad pin lives in `tests/query_engine.rs`).
    fn query(
        net: &Network,
        tables: &[ContactTable],
        source: NodeId,
        target: NodeId,
        max_depth: u16,
        st: &mut MsgStats,
    ) -> QueryOutcome {
        let mut scratch = QueryScratch::new();
        let out = dsq_query(
            net,
            tables,
            source,
            target,
            max_depth,
            st,
            SimTime::ZERO,
            &mut scratch,
        );
        let mut ref_stats = mk_stats();
        let reference = dsq_query_rewalk(
            net,
            tables,
            source,
            target,
            max_depth,
            &mut ref_stats,
            SimTime::ZERO,
        );
        assert_eq!(out, reference, "incremental escalation diverged");
        out
    }

    /// A 16-node line, 40 m spacing, range 50 m, R = 2.
    fn line_net() -> Network {
        let positions: Vec<Point2> = (0..16)
            .map(|i| Point2::new(10.0 + 40.0 * i as f64, 10.0))
            .collect();
        Network::from_positions(Field::square(700.0), positions, 50.0, 2)
    }

    /// Hand-built contact structure on the line:
    /// node 0 has contact 6 (6 hops), node 6 has contact 12 (6 hops).
    fn tables_for_line(net: &Network) -> Vec<ContactTable> {
        let mut tables: Vec<ContactTable> =
            (0..net.node_count()).map(|_| ContactTable::new()).collect();
        tables[0].add(Contact::new(n(6), (0..7).map(n).collect()));
        tables[6].add(Contact::new(n(12), (6..13).map(n).collect()));
        tables
    }

    #[test]
    fn own_neighborhood_is_depth_zero_and_free() {
        let net = line_net();
        let tables = tables_for_line(&net);
        let mut st = mk_stats();
        let out = query(&net, &tables, n(0), n(2), 3, &mut st);
        assert!(out.found);
        assert_eq!(out.depth_used, 0);
        assert_eq!(out.total_messages(), 0);
        assert_eq!(st.grand_total(), 0);
    }

    #[test]
    fn depth_one_answers_from_contact_neighborhood() {
        let net = line_net();
        let tables = tables_for_line(&net);
        let mut st = mk_stats();
        // node 7 is 1 hop from contact 6 → in its R=2 neighborhood
        let out = query(&net, &tables, n(0), n(7), 3, &mut st);
        assert!(out.found);
        assert_eq!(out.depth_used, 1);
        assert_eq!(out.query_msgs, 6, "one DSQ along the 6-hop contact path");
        assert_eq!(out.reply_msgs, 6);
        assert_eq!(st.total(MsgKind::Dsq), 6);
        assert_eq!(st.total(MsgKind::DsqReply), 6);
    }

    #[test]
    fn depth_two_reaches_contacts_of_contacts() {
        let net = line_net();
        let tables = tables_for_line(&net);
        let mut st = mk_stats();
        // node 13 is within R=2 of second-level contact 12, but NOT of 6.
        let out = query(&net, &tables, n(0), n(13), 3, &mut st);
        assert!(out.found);
        assert_eq!(out.depth_used, 2);
        // D=1 attempt: 6 msgs (failed). D=2 attempt: 6 (to c1) + 6 (to c2).
        assert_eq!(out.query_msgs, 6 + 12);
        // reply: from node 12 back through the contact chain: 12 hops
        assert_eq!(out.reply_msgs, 12);
    }

    #[test]
    fn miss_beyond_search_horizon() {
        let net = line_net();
        let tables = tables_for_line(&net);
        let mut st = mk_stats();
        // node 15 is 3 hops past contact 12: outside every queried zone
        let out = query(&net, &tables, n(0), n(15), 2, &mut st);
        assert!(!out.found);
        assert_eq!(out.depth_used, 2);
        assert!(out.query_msgs > 0);
        assert_eq!(out.reply_msgs, 0);
    }

    #[test]
    fn deeper_search_finds_what_shallow_missed() {
        let net = line_net();
        let mut tables = tables_for_line(&net);
        tables[12].add(Contact::new(n(15), vec![n(12), n(13), n(14), n(15)]));
        let mut st = mk_stats();
        let shallow = query(&net, &tables, n(0), n(15), 2, &mut st);
        // n15 IS within R=2 of contact n12's... dist(12,15)=3 > 2, so D=2 misses;
        // at D=3 the level-3 contact n15 sees itself in its own neighborhood.
        assert!(!shallow.found);
        let deep = query(&net, &tables, n(0), n(15), 3, &mut st);
        assert!(deep.found);
        assert_eq!(deep.depth_used, 3);
    }

    #[test]
    fn escalation_accumulates_messages() {
        let net = line_net();
        let tables = tables_for_line(&net);
        let mut st = mk_stats();
        // found at depth 2 → cost includes the failed depth-1 attempt
        let out = query(&net, &tables, n(0), n(13), 2, &mut st);
        // hypothetical: starting directly at D=2 would be cheaper
        let mut direct = 0u64;
        attempt_rewalk(&net, &tables, n(0), n(13), 2, &mut direct).unwrap();
        assert!(
            out.query_msgs > direct,
            "escalation must cost more than direct D=2"
        );
    }

    #[test]
    fn no_contacts_means_immediate_miss() {
        let net = line_net();
        let tables: Vec<ContactTable> =
            (0..net.node_count()).map(|_| ContactTable::new()).collect();
        let mut st = mk_stats();
        let out = query(&net, &tables, n(0), n(9), 3, &mut st);
        assert!(!out.found);
        assert_eq!(out.total_messages(), 0);
    }

    #[test]
    fn contact_cycles_do_not_loop() {
        let net = line_net();
        let mut tables: Vec<ContactTable> =
            (0..net.node_count()).map(|_| ContactTable::new()).collect();
        // 0 -> 6 -> 0 cycle
        tables[0].add(Contact::new(n(6), (0..7).map(n).collect()));
        tables[6].add(Contact::new(n(0), (0..7).rev().map(n).collect()));
        let mut st = mk_stats();
        let out = query(&net, &tables, n(0), n(15), 3, &mut st);
        assert!(!out.found, "must terminate despite the contact cycle");
    }

    #[test]
    fn scratch_reuse_across_queries_leaks_nothing() {
        // One scratch, many queries in arbitrary order: every outcome must
        // match a fresh-scratch run (epoch stamping isolates queries).
        let net = line_net();
        let tables = tables_for_line(&net);
        let mut shared = QueryScratch::new();
        for target in [7u32, 13, 15, 2, 13, 7, 15] {
            for depth in [1u16, 2, 3] {
                let mut st_a = mk_stats();
                let out = dsq_query(
                    &net,
                    &tables,
                    n(0),
                    n(target),
                    depth,
                    &mut st_a,
                    SimTime::ZERO,
                    &mut shared,
                );
                let mut st_b = mk_stats();
                let fresh = dsq_query(
                    &net,
                    &tables,
                    n(0),
                    n(target),
                    depth,
                    &mut st_b,
                    SimTime::ZERO,
                    &mut QueryScratch::new(),
                );
                assert_eq!(out, fresh, "target {target} depth {depth}");
                assert_eq!(st_a.grand_total(), st_b.grand_total());
            }
        }
    }

    #[test]
    fn epoch_wraparound_resets_marks() {
        let net = line_net();
        let tables = tables_for_line(&net);
        let mut scratch = QueryScratch::new();
        let mut st = mk_stats();
        let first = dsq_query(
            &net,
            &tables,
            n(0),
            n(13),
            3,
            &mut st,
            SimTime::ZERO,
            &mut scratch,
        );
        // Force the epoch to the wrap point: stale marks must not leak.
        scratch.epoch = u32::MAX;
        let again = dsq_query(
            &net,
            &tables,
            n(0),
            n(13),
            3,
            &mut st,
            SimTime::ZERO,
            &mut scratch,
        );
        assert_eq!(first, again);
    }

    #[test]
    fn pass_all_filter_matches_unfiltered_walk() {
        let net = line_net();
        let tables = tables_for_line(&net);
        let down = vec![false; net.node_count()];
        let filter = QueryFaultFilter {
            down: &down,
            sides: None,
        };
        let mut scratch = QueryScratch::new();
        for target in 0..16u32 {
            for depth in 1..=3u16 {
                let faulted = dsq_query_faulted_unrecorded(
                    &net,
                    &tables,
                    n(0),
                    n(target),
                    depth,
                    &mut scratch,
                    &filter,
                );
                let plain =
                    dsq_query_unrecorded(&net, &tables, n(0), n(target), depth, &mut scratch);
                assert_eq!(faulted, plain, "target {target} depth {depth}");
            }
        }
    }

    #[test]
    fn crashed_relay_blocks_the_walk_through_it() {
        let net = line_net();
        let tables = tables_for_line(&net);
        // Depth-2 answers for target 13 route through contact 6; with 6
        // down the walk must miss instead of relaying through a corpse.
        let mut down = vec![false; net.node_count()];
        down[6] = true;
        let filter = QueryFaultFilter {
            down: &down,
            sides: None,
        };
        let mut scratch = QueryScratch::new();
        let out =
            dsq_query_faulted_unrecorded(&net, &tables, n(0), n(13), 3, &mut scratch, &filter);
        assert!(!out.found);
        assert_eq!(out.query_msgs, 0, "no probe is sent to a known-dead relay");
    }

    #[test]
    fn partition_blocks_answers_across_the_cut() {
        let net = line_net();
        let tables = tables_for_line(&net);
        let down = vec![false; net.node_count()];
        // Cut between node 9 and 10: source side 0, far side 1.
        let sides: Vec<u8> = (0..net.node_count()).map(|i| (i >= 10) as u8).collect();
        let filter = QueryFaultFilter {
            down: &down,
            sides: Some(&sides),
        };
        let mut scratch = QueryScratch::new();
        // Target 13 lives across the cut: depth-2 contact 12 is vetoed.
        let out =
            dsq_query_faulted_unrecorded(&net, &tables, n(0), n(13), 3, &mut scratch, &filter);
        assert!(!out.found);
        // Target 7 is on the source side and still resolves.
        let out = dsq_query_faulted_unrecorded(&net, &tables, n(0), n(7), 3, &mut scratch, &filter);
        assert!(out.found);
        assert_eq!(out.depth_used, 1);
    }

    #[test]
    fn retry_queue_backs_off_and_caps() {
        let mut q = QueryRetryQueue::new(2);
        let mut due = Vec::new();
        q.schedule(n(1), n(2));
        q.schedule(n(1), n(2)); // dedup: one outstanding entry per pair
        assert_eq!(q.len(), 1);
        assert_eq!(q.stats().scheduled, 1);
        q.tick(&mut due);
        assert_eq!(due, vec![(n(1), n(2), 1)]);
        // First retry misses: re-queued with wait 2.
        q.report(n(1), n(2), 1, false);
        q.tick(&mut due);
        assert!(due.is_empty(), "backoff wait of 2 rounds");
        q.tick(&mut due);
        assert_eq!(due, vec![(n(1), n(2), 2)]);
        // Second retry misses at the cap: abandoned.
        q.report(n(1), n(2), 2, false);
        assert!(q.is_empty());
        let st = q.stats().clone();
        assert_eq!((st.retried, st.recovered, st.abandoned), (2, 0, 1));
        // A recovery counts and does not re-queue.
        q.schedule(n(3), n(4));
        q.tick(&mut due);
        q.report(n(3), n(4), 1, true);
        assert!(q.is_empty());
        assert_eq!(q.stats().recovered, 1);
    }

    #[test]
    fn incremental_matches_rewalk_per_depth_on_deep_chains() {
        // A longer contact chain with branching: per-depth outcomes and
        // message totals must agree with the re-walk at every max_depth.
        let net = line_net();
        let mut tables = tables_for_line(&net);
        tables[12].add(Contact::new(n(15), (12..16).map(n).collect()));
        tables[0].add(Contact::new(n(9), (0..10).map(n).collect()));
        let mut scratch = QueryScratch::new();
        for target in 0..16u32 {
            for max_depth in 1..=4u16 {
                let mut st_inc = mk_stats();
                let inc = dsq_query(
                    &net,
                    &tables,
                    n(0),
                    n(target),
                    max_depth,
                    &mut st_inc,
                    SimTime::ZERO,
                    &mut scratch,
                );
                let mut st_ref = mk_stats();
                let reference = dsq_query_rewalk(
                    &net,
                    &tables,
                    n(0),
                    n(target),
                    max_depth,
                    &mut st_ref,
                    SimTime::ZERO,
                );
                assert_eq!(inc, reference, "target {target} depth {max_depth}");
                assert_eq!(
                    st_inc.series_where(|_| true),
                    st_ref.series_where(|_| true),
                    "stats series diverged for target {target} depth {max_depth}"
                );
            }
        }
    }
}

//! The Destination Search Query (DSQ) — §III.C.4.
//!
//! A source looking for target T first checks its own neighborhood table.
//! Failing that it sends a DSQ with depth D=1 to each contact, one at a
//! time: the contact answers from its neighborhood table. If no answer
//! comes back, the source escalates with D=2 — contacts recognize the query
//! is not for them, decrement D and forward to *their* contacts — and so on
//! up to the configured maximum depth: a tree search over contact links,
//! "similar to the expanding ring search … \[but\] much more efficient … as
//! the queries are not flooded with different TTLs but are directed to
//! individual nodes".

use manet_routing::network::Network;
use net_topology::node::NodeId;
use sim_core::stats::{MsgKind, MsgStats};
use sim_core::time::SimTime;

use crate::contact::ContactTable;

/// Result of one resource-discovery query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Was a path to the target returned?
    pub found: bool,
    /// The escalation depth that answered (0 = own neighborhood).
    pub depth_used: u16,
    /// DSQ forward messages (all escalation attempts).
    pub query_msgs: u64,
    /// Reply messages (answering contact chain back to the source).
    pub reply_msgs: u64,
}

impl QueryOutcome {
    /// Total control messages.
    pub fn total_messages(&self) -> u64 {
        self.query_msgs + self.reply_msgs
    }
}

/// One escalation attempt at exactly `depth` levels: a level-synchronous
/// walk of the contact graph. Every contact is consumed at its *minimal*
/// level (loop prevention via query IDs), so the set of neighborhoods
/// consulted matches [`crate::reachability::reachability_set`] exactly —
/// level-k contacts relay when k < depth and answer from their
/// neighborhood tables when k = depth (§III.C.4). Returns the reply hop
/// count when found.
fn attempt(
    net: &Network,
    contact_tables: &[ContactTable],
    source: NodeId,
    target: NodeId,
    depth: u16,
    query_msgs: &mut u64,
) -> Option<u64> {
    let mut seen = vec![false; net.node_count()];
    seen[source.index()] = true;
    // (contact, accumulated hops from the source along contact paths)
    let mut frontier: Vec<(NodeId, u64)> = vec![(source, 0)];

    for level in 1..=depth {
        let mut next = Vec::new();
        for &(node, dist) in &frontier {
            for contact in contact_tables[node.index()].contacts() {
                let c = contact.id;
                if seen[c.index()] {
                    continue;
                }
                seen[c.index()] = true;
                let at_contact = dist + contact.hops() as u64;
                *query_msgs += contact.hops() as u64;
                if level == depth {
                    // final level: answer from the neighborhood table
                    if net.tables().of(c).contains(target) {
                        return Some(at_contact);
                    }
                } else {
                    next.push((c, at_contact));
                }
            }
        }
        frontier = next;
        if frontier.is_empty() && level < depth {
            break; // ran out of contacts before reaching the final level
        }
    }
    None
}

/// Run a full CARD query from `source` for `target`, escalating the depth
/// of search from 1 to `max_depth` (§III.C.4). Messages are recorded into
/// `stats` at time `at`.
pub fn dsq_query(
    net: &Network,
    contact_tables: &[ContactTable],
    source: NodeId,
    target: NodeId,
    max_depth: u16,
    stats: &mut MsgStats,
    at: SimTime,
) -> QueryOutcome {
    // Step 0: the neighborhood table answers locally for free.
    if net.tables().of(source).contains(target) {
        return QueryOutcome {
            found: true,
            depth_used: 0,
            query_msgs: 0,
            reply_msgs: 0,
        };
    }

    let mut query_msgs = 0u64;
    for depth in 1..=max_depth {
        if let Some(reply) = attempt(net, contact_tables, source, target, depth, &mut query_msgs) {
            stats.record_n(at, MsgKind::Dsq, query_msgs);
            stats.record_n(at, MsgKind::DsqReply, reply);
            return QueryOutcome {
                found: true,
                depth_used: depth,
                query_msgs,
                reply_msgs: reply,
            };
        }
    }

    stats.record_n(at, MsgKind::Dsq, query_msgs);
    QueryOutcome {
        found: false,
        depth_used: max_depth,
        query_msgs,
        reply_msgs: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::Contact;
    use net_topology::geometry::{Field, Point2};
    use sim_core::time::SimDuration;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn mk_stats() -> MsgStats {
        MsgStats::new(SimDuration::from_secs(2))
    }

    /// A 16-node line, 40 m spacing, range 50 m, R = 2.
    fn line_net() -> Network {
        let positions: Vec<Point2> = (0..16)
            .map(|i| Point2::new(10.0 + 40.0 * i as f64, 10.0))
            .collect();
        Network::from_positions(Field::square(700.0), positions, 50.0, 2)
    }

    /// Hand-built contact structure on the line:
    /// node 0 has contact 6 (6 hops), node 6 has contact 12 (6 hops).
    fn tables_for_line(net: &Network) -> Vec<ContactTable> {
        let mut tables: Vec<ContactTable> =
            (0..net.node_count()).map(|_| ContactTable::new()).collect();
        tables[0].add(Contact::new(n(6), (0..7).map(n).collect()));
        tables[6].add(Contact::new(n(12), (6..13).map(n).collect()));
        tables
    }

    #[test]
    fn own_neighborhood_is_depth_zero_and_free() {
        let net = line_net();
        let tables = tables_for_line(&net);
        let mut st = mk_stats();
        let out = dsq_query(&net, &tables, n(0), n(2), 3, &mut st, SimTime::ZERO);
        assert!(out.found);
        assert_eq!(out.depth_used, 0);
        assert_eq!(out.total_messages(), 0);
        assert_eq!(st.grand_total(), 0);
    }

    #[test]
    fn depth_one_answers_from_contact_neighborhood() {
        let net = line_net();
        let tables = tables_for_line(&net);
        let mut st = mk_stats();
        // node 7 is 1 hop from contact 6 → in its R=2 neighborhood
        let out = dsq_query(&net, &tables, n(0), n(7), 3, &mut st, SimTime::ZERO);
        assert!(out.found);
        assert_eq!(out.depth_used, 1);
        assert_eq!(out.query_msgs, 6, "one DSQ along the 6-hop contact path");
        assert_eq!(out.reply_msgs, 6);
        assert_eq!(st.total(MsgKind::Dsq), 6);
        assert_eq!(st.total(MsgKind::DsqReply), 6);
    }

    #[test]
    fn depth_two_reaches_contacts_of_contacts() {
        let net = line_net();
        let tables = tables_for_line(&net);
        let mut st = mk_stats();
        // node 13 is within R=2 of second-level contact 12, but NOT of 6.
        let out = dsq_query(&net, &tables, n(0), n(13), 3, &mut st, SimTime::ZERO);
        assert!(out.found);
        assert_eq!(out.depth_used, 2);
        // D=1 attempt: 6 msgs (failed). D=2 attempt: 6 (to c1) + 6 (to c2).
        assert_eq!(out.query_msgs, 6 + 12);
        // reply: from node 12 back through the contact chain: 12 hops
        assert_eq!(out.reply_msgs, 12);
    }

    #[test]
    fn miss_beyond_search_horizon() {
        let net = line_net();
        let tables = tables_for_line(&net);
        let mut st = mk_stats();
        // node 15 is 3 hops past contact 12: outside every queried zone
        let out = dsq_query(&net, &tables, n(0), n(15), 2, &mut st, SimTime::ZERO);
        assert!(!out.found);
        assert_eq!(out.depth_used, 2);
        assert!(out.query_msgs > 0);
        assert_eq!(out.reply_msgs, 0);
    }

    #[test]
    fn deeper_search_finds_what_shallow_missed() {
        let net = line_net();
        let mut tables = tables_for_line(&net);
        tables[12].add(Contact::new(n(15), vec![n(12), n(13), n(14), n(15)]));
        let mut st = mk_stats();
        let shallow = dsq_query(&net, &tables, n(0), n(15), 2, &mut st, SimTime::ZERO);
        // n15 IS within R=2 of contact n12's... dist(12,15)=3 > 2, so D=2 misses;
        // at D=3 the level-3 contact n15 sees itself in its own neighborhood.
        assert!(!shallow.found);
        let deep = dsq_query(&net, &tables, n(0), n(15), 3, &mut st, SimTime::ZERO);
        assert!(deep.found);
        assert_eq!(deep.depth_used, 3);
    }

    #[test]
    fn escalation_accumulates_messages() {
        let net = line_net();
        let tables = tables_for_line(&net);
        let mut st = mk_stats();
        // found at depth 2 → cost includes the failed depth-1 attempt
        let out = dsq_query(&net, &tables, n(0), n(13), 2, &mut st, SimTime::ZERO);
        // hypothetical: starting directly at D=2 would be cheaper
        let mut direct = 0u64;
        attempt(&net, &tables, n(0), n(13), 2, &mut direct).unwrap();
        assert!(
            out.query_msgs > direct,
            "escalation must cost more than direct D=2"
        );
    }

    #[test]
    fn no_contacts_means_immediate_miss() {
        let net = line_net();
        let tables: Vec<ContactTable> =
            (0..net.node_count()).map(|_| ContactTable::new()).collect();
        let mut st = mk_stats();
        let out = dsq_query(&net, &tables, n(0), n(9), 3, &mut st, SimTime::ZERO);
        assert!(!out.found);
        assert_eq!(out.total_messages(), 0);
    }

    #[test]
    fn contact_cycles_do_not_loop() {
        let net = line_net();
        let mut tables: Vec<ContactTable> =
            (0..net.node_count()).map(|_| ContactTable::new()).collect();
        // 0 -> 6 -> 0 cycle
        tables[0].add(Contact::new(n(6), (0..7).map(n).collect()));
        tables[6].add(Contact::new(n(0), (0..7).rev().map(n).collect()));
        let mut st = mk_stats();
        let out = dsq_query(&net, &tables, n(0), n(15), 3, &mut st, SimTime::ZERO);
        assert!(!out.found, "must terminate despite the contact cycle");
    }
}

//! Resources and resource-level discovery.
//!
//! CARD is a *resource* discovery architecture (§I): the target `T` of a
//! DSQ is "a destination or target resource". Node lookup is the special
//! case of a resource hosted by exactly one node. This module supplies the
//! general case:
//!
//! * [`ResourceId`] — an application-level resource name;
//! * [`ResourceRegistry`] — which nodes host which resources. The
//!   proactive neighborhood protocol disseminates host announcements within
//!   R hops, so any node can answer "who in my zone hosts ρ?" from its
//!   tables — precisely the lookup a DSQ-carrying contact performs;
//! * [`resource_query`] — the §III.C.4 query mechanism with *anycast*
//!   semantics: it returns as soon as any instance of the resource is
//!   found, preferring zone-local instances (no messages) and escalating
//!   the depth of search exactly like the node-lookup DSQ.
//!
//! §V names "resource distributions in the network" as an evaluation
//! dimension; [`distribute`] provides the standard distributions (uniform
//! random, replicated, clustered) the experiments sweep.

use manet_routing::neighborhood::Neighborhood;
use manet_routing::network::Network;
use net_topology::node::NodeId;
use sim_core::rng::RngStream;
use sim_core::stats::MsgStats;
use sim_core::time::SimTime;
use sim_core::util::BitSet;

use crate::contact::TableSource;
use crate::hints::HintLookup;
use crate::query::{QueryOutcome, QueryScratch};

/// An application-level resource identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub u32);

impl ResourceId {
    /// The dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ResourceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ρ{}", self.0)
    }
}

/// Which nodes host which resources.
///
/// Backed by per-resource host bitsets (O(resources · N) bits — resources
/// are few). The zone lookup ("any host of ρ within my neighborhood?")
/// probes each host against the zone-local membership structure instead
/// of intersecting whole-network bitsets.
#[derive(Clone, Debug)]
pub struct ResourceRegistry {
    nodes: usize,
    /// Per resource: hosts as a bitset over node ids.
    hosts: Vec<BitSet>,
    /// Per resource: host count, maintained by `add_host` so zone lookups
    /// can pick their iteration side in O(1).
    counts: Vec<usize>,
}

impl ResourceRegistry {
    /// An empty registry for `resources` resources over `nodes` nodes.
    pub fn new(nodes: usize, resources: usize) -> Self {
        ResourceRegistry {
            nodes,
            hosts: (0..resources).map(|_| BitSet::new(nodes)).collect(),
            counts: vec![0; resources],
        }
    }

    /// Number of distinct resources.
    pub fn resource_count(&self) -> usize {
        self.hosts.len()
    }

    /// Register `node` as a host of `resource`.
    ///
    /// # Panics
    /// Panics if the resource or node is out of range.
    pub fn add_host(&mut self, resource: ResourceId, node: NodeId) {
        let set = &mut self.hosts[resource.index()];
        if !set.contains(node.index()) {
            set.insert(node.index());
            self.counts[resource.index()] += 1;
        }
    }

    /// Does `node` host `resource`?
    pub fn hosts(&self, resource: ResourceId, node: NodeId) -> bool {
        self.hosts[resource.index()].contains(node.index())
    }

    /// All hosts of `resource`.
    pub fn hosts_of(&self, resource: ResourceId) -> impl Iterator<Item = NodeId> + '_ {
        self.hosts[resource.index()].iter().map(NodeId::from)
    }

    /// Number of hosts of `resource` (O(1), maintained by `add_host`).
    pub fn host_count(&self, resource: ResourceId) -> usize {
        self.counts[resource.index()]
    }

    /// Is some host of `resource` inside `zone` (an arbitrary node set,
    /// e.g. a reachability set)?
    pub fn in_zone(&self, resource: ResourceId, zone: &BitSet) -> bool {
        self.hosts[resource.index()].intersects(zone)
    }

    /// Is some host of `resource` inside the neighborhood `nb`? This is
    /// the table lookup a contact performs on receiving a DSQ for ρ.
    ///
    /// Iterates whichever side is smaller: the host set against the
    /// zone-local membership (O(hosts · log zone), the common few-replica
    /// case), or the zone members against the host bitset (O(zone), which
    /// keeps heavily replicated resources from degrading to O(N) probes).
    /// No O(N) bitset is materialized either way.
    pub fn hosted_in_neighborhood(&self, resource: ResourceId, nb: &Neighborhood) -> bool {
        if self.host_count(resource) <= nb.size() {
            self.hosts_of(resource).any(|h| nb.contains(h))
        } else {
            let hosts = &self.hosts[resource.index()];
            nb.iter_members().any(|m| hosts.contains(m.index()))
        }
    }

    /// The number of nodes this registry covers.
    pub fn node_count(&self) -> usize {
        self.nodes
    }
}

/// How resource instances are spread over the network (§V "resource
/// distributions").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResourceDistribution {
    /// Each resource on `replicas` hosts chosen uniformly at random.
    UniformReplicated {
        /// Number of hosts per resource.
        replicas: usize,
    },
    /// Each resource's replicas clustered around a random seed host: the
    /// seed plus its `replicas - 1` nearest nodes (in hops).
    Clustered {
        /// Number of hosts per resource.
        replicas: usize,
    },
}

/// Build a registry of `resources` resources over the network per the
/// distribution, deterministically from `rng`.
pub fn distribute(
    net: &Network,
    resources: usize,
    dist: ResourceDistribution,
    rng: &mut RngStream,
) -> ResourceRegistry {
    let n = net.node_count();
    let mut reg = ResourceRegistry::new(n, resources);
    for ridx in 0..resources {
        let resource = ResourceId(ridx as u32);
        match dist {
            ResourceDistribution::UniformReplicated { replicas } => {
                let mut placed = 0;
                let mut guard = 0;
                while placed < replicas.min(n) && guard < 100 * replicas.max(1) {
                    let node = NodeId::from(rng.index(n));
                    guard += 1;
                    if !reg.hosts(resource, node) {
                        reg.add_host(resource, node);
                        placed += 1;
                    }
                }
            }
            ResourceDistribution::Clustered { replicas } => {
                let seed = NodeId::from(rng.index(n));
                reg.add_host(resource, seed);
                // nearest nodes by hop distance, BFS discovery order
                let bfs = net_topology::bfs::full_bfs(net.adj(), seed);
                for &v in bfs
                    .visited()
                    .iter()
                    .skip(1)
                    .take(replicas.saturating_sub(1))
                {
                    reg.add_host(resource, v);
                }
            }
        }
    }
    reg
}

/// Anycast resource query (§III.C.4 with a resource target): check the own
/// zone, then escalate D = 1, 2, … `max_depth`, forwarding to contacts
/// level-synchronously; a final-level contact answers iff some host of the
/// resource lies in its neighborhood table.
///
/// Runs on the same incremental escalation engine as
/// [`crate::query::dsq_query`] — the walk is allocation-free on `scratch`
/// and only the answer predicate differs (a resource is its hosts: for a
/// single-host resource this is *exactly* the node-lookup DSQ, message for
/// message — pinned by `tests/query_engine.rs`).
#[allow(clippy::too_many_arguments)] // mirrors the protocol message fields
pub fn resource_query<T: TableSource>(
    net: &Network,
    contact_tables: T,
    registry: &ResourceRegistry,
    source: NodeId,
    resource: ResourceId,
    max_depth: u16,
    stats: &mut MsgStats,
    at: SimTime,
    scratch: &mut QueryScratch,
) -> QueryOutcome {
    let tables = net.tables();
    // Zone-local instance: answered from the proactive tables, free.
    if registry.hosted_in_neighborhood(resource, tables.of(source)) {
        return QueryOutcome {
            found: true,
            depth_used: 0,
            query_msgs: 0,
            reply_msgs: 0,
        };
    }
    crate::query::escalate(
        net.node_count(),
        contact_tables,
        source,
        max_depth,
        stats,
        at,
        scratch,
        |c| registry.hosted_in_neighborhood(resource, tables.of(c)),
    )
}

/// [`resource_query`] with the §V route-hint cache consulted first and
/// hint deposits queued on resolution (keyed by the *resource*, so any
/// replica's answer warms later queries for the same resource; see
/// [`crate::hints`] and [`crate::query::HintContext`]). Outcomes match
/// [`resource_query`] exactly — hints change cost, never answers.
#[allow(clippy::too_many_arguments)] // mirrors the protocol message fields
pub fn resource_query_hinted<T: TableSource, S: HintLookup>(
    net: &Network,
    contact_tables: T,
    registry: &ResourceRegistry,
    ctx: &mut crate::query::HintContext<'_, S>,
    source: NodeId,
    resource: ResourceId,
    max_depth: u16,
    stats: &mut MsgStats,
    at: SimTime,
    scratch: &mut QueryScratch,
) -> QueryOutcome {
    let tables = net.tables();
    if registry.hosted_in_neighborhood(resource, tables.of(source)) {
        return QueryOutcome {
            found: true,
            depth_used: 0,
            query_msgs: 0,
            reply_msgs: 0,
        };
    }
    let out = crate::query::escalate_hinted_unrecorded(
        net.node_count(),
        contact_tables,
        ctx,
        crate::hints::HintKey::resource(resource),
        source,
        max_depth,
        scratch,
        |c| registry.hosted_in_neighborhood(resource, tables.of(c)),
    );
    stats.record_n(at, sim_core::stats::MsgKind::Dsq, out.query_msgs);
    stats.record_n(at, sim_core::stats::MsgKind::DsqReply, out.reply_msgs);
    out
}

/// The set of resources discoverable by `source` at contact depth `depth`:
/// resources with a host inside the source's reachability set.
pub fn discoverable_resources<T: TableSource>(
    net: &Network,
    contact_tables: T,
    registry: &ResourceRegistry,
    source: NodeId,
    depth: u16,
) -> Vec<ResourceId> {
    let reach = crate::reachability::reachability_set(net, contact_tables, source, depth);
    (0..registry.resource_count() as u32)
        .map(ResourceId)
        .filter(|&r| registry.in_zone(r, &reach))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::{Contact, ContactTable};
    use net_topology::geometry::{Field, Point2};
    use sim_core::stats::MsgKind;
    use sim_core::time::SimDuration;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn mk_stats() -> MsgStats {
        MsgStats::new(SimDuration::from_secs(2))
    }

    /// 16-node line, 40 m spacing, range 50 m, R=2.
    fn line_net() -> Network {
        let positions: Vec<Point2> = (0..16)
            .map(|i| Point2::new(10.0 + 40.0 * i as f64, 10.0))
            .collect();
        Network::from_positions(Field::square(700.0), positions, 50.0, 2)
    }

    fn tables_for_line(net: &Network) -> Vec<ContactTable> {
        let mut tables: Vec<ContactTable> =
            (0..net.node_count()).map(|_| ContactTable::new()).collect();
        tables[0].add(Contact::new(n(6), (0..7).map(n).collect()));
        tables[6].add(Contact::new(n(12), (6..13).map(n).collect()));
        tables
    }

    #[test]
    fn registry_basics() {
        let mut reg = ResourceRegistry::new(10, 3);
        assert_eq!(reg.resource_count(), 3);
        assert_eq!(reg.node_count(), 10);
        let r = ResourceId(1);
        assert_eq!(reg.host_count(r), 0);
        reg.add_host(r, n(4));
        reg.add_host(r, n(7));
        reg.add_host(r, n(4)); // idempotent
        assert_eq!(reg.host_count(r), 2);
        assert!(reg.hosts(r, n(4)));
        assert!(!reg.hosts(r, n(5)));
        assert_eq!(reg.hosts_of(r).collect::<Vec<_>>(), vec![n(4), n(7)]);
        assert_eq!(format!("{r}"), "ρ1");
    }

    #[test]
    fn zone_lookup_uses_neighborhood_membership() {
        let net = line_net();
        let mut reg = ResourceRegistry::new(16, 1);
        let r = ResourceId(0);
        reg.add_host(r, n(8));
        // node 7's zone (R=2) = {5..9} contains host 8
        assert!(reg.hosted_in_neighborhood(r, net.tables().of(n(7))));
        // node 0's zone = {0,1,2} does not
        assert!(!reg.hosted_in_neighborhood(r, net.tables().of(n(0))));
    }

    #[test]
    fn zone_local_resource_is_free() {
        let net = line_net();
        let tables = tables_for_line(&net);
        let mut reg = ResourceRegistry::new(16, 1);
        reg.add_host(ResourceId(0), n(2));
        let mut st = mk_stats();
        let out = resource_query(
            &net,
            &tables,
            &reg,
            n(0),
            ResourceId(0),
            3,
            &mut st,
            SimTime::ZERO,
            &mut QueryScratch::new(),
        );
        assert!(out.found);
        assert_eq!(out.depth_used, 0);
        assert_eq!(out.total_messages(), 0);
    }

    #[test]
    fn contact_zone_resource_found_at_depth_one() {
        let net = line_net();
        let tables = tables_for_line(&net);
        let mut reg = ResourceRegistry::new(16, 1);
        reg.add_host(ResourceId(0), n(7)); // inside contact 6's zone
        let mut st = mk_stats();
        let out = resource_query(
            &net,
            &tables,
            &reg,
            n(0),
            ResourceId(0),
            3,
            &mut st,
            SimTime::ZERO,
            &mut QueryScratch::new(),
        );
        assert!(out.found);
        assert_eq!(out.depth_used, 1);
        assert_eq!(out.query_msgs, 6);
        assert_eq!(st.total(MsgKind::Dsq), 6);
    }

    #[test]
    fn anycast_prefers_any_instance() {
        let net = line_net();
        let tables = tables_for_line(&net);
        let mut reg = ResourceRegistry::new(16, 1);
        // replicas at 13 (needs depth 2) and at 5 (depth 1): depth-1 answer wins
        reg.add_host(ResourceId(0), n(13));
        reg.add_host(ResourceId(0), n(5));
        let mut st = mk_stats();
        let out = resource_query(
            &net,
            &tables,
            &reg,
            n(0),
            ResourceId(0),
            3,
            &mut st,
            SimTime::ZERO,
            &mut QueryScratch::new(),
        );
        assert!(out.found);
        assert_eq!(out.depth_used, 1, "nearer replica answers first");
    }

    #[test]
    fn missing_resource_escalates_and_misses() {
        let net = line_net();
        let tables = tables_for_line(&net);
        let reg = ResourceRegistry::new(16, 1); // no hosts anywhere
        let mut st = mk_stats();
        let out = resource_query(
            &net,
            &tables,
            &reg,
            n(0),
            ResourceId(0),
            3,
            &mut st,
            SimTime::ZERO,
            &mut QueryScratch::new(),
        );
        assert!(!out.found);
        assert!(out.query_msgs > 0, "escalation paid for nothing");
        assert_eq!(out.reply_msgs, 0);
    }

    #[test]
    fn uniform_distribution_places_exact_replicas() {
        let net = line_net();
        let mut rng = RngStream::seed_from_u64(5);
        let reg = distribute(
            &net,
            4,
            ResourceDistribution::UniformReplicated { replicas: 3 },
            &mut rng,
        );
        for r in 0..4u32 {
            assert_eq!(reg.host_count(ResourceId(r)), 3);
        }
    }

    #[test]
    fn clustered_distribution_places_adjacent_replicas() {
        let net = line_net();
        let mut rng = RngStream::seed_from_u64(7);
        let reg = distribute(
            &net,
            2,
            ResourceDistribution::Clustered { replicas: 3 },
            &mut rng,
        );
        for r in 0..2u32 {
            let hosts: Vec<NodeId> = reg.hosts_of(ResourceId(r)).collect();
            assert_eq!(hosts.len(), 3);
            // on a line, 3 BFS-nearest nodes span at most 2 hops
            let ids: Vec<i64> = hosts.iter().map(|h| h.index() as i64).collect();
            let spread = ids.iter().max().unwrap() - ids.iter().min().unwrap();
            assert!(spread <= 2, "clustered hosts too spread: {ids:?}");
        }
    }

    #[test]
    fn discoverable_matches_query_outcomes() {
        let net = line_net();
        let tables = tables_for_line(&net);
        let mut rng = RngStream::seed_from_u64(9);
        let reg = distribute(
            &net,
            6,
            ResourceDistribution::UniformReplicated { replicas: 2 },
            &mut rng,
        );
        let disc = discoverable_resources(&net, &tables, &reg, n(0), 2);
        for r in 0..6u32 {
            let resource = ResourceId(r);
            let mut st = mk_stats();
            let out = resource_query(
                &net,
                &tables,
                &reg,
                n(0),
                resource,
                2,
                &mut st,
                SimTime::ZERO,
                &mut QueryScratch::new(),
            );
            assert_eq!(
                out.found,
                disc.contains(&resource),
                "query({resource}) disagrees with discoverable set"
            );
        }
    }

    #[test]
    fn determinism_of_distribution() {
        let net = line_net();
        let mk = |seed| {
            let mut rng = RngStream::seed_from_u64(seed);
            let reg = distribute(
                &net,
                3,
                ResourceDistribution::UniformReplicated { replicas: 2 },
                &mut rng,
            );
            (0..3u32)
                .flat_map(|r| reg.hosts_of(ResourceId(r)).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(1), mk(1));
        assert_ne!(mk(1), mk(2));
    }
}

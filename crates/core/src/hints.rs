//! Route-hint cache — the §V optimization the query engine plugs into.
//!
//! §V: "the contacts keep *route hints* for recently answered queries …
//! a later query for the same destination is forwarded directly instead
//! of searching level by level." When a DSQ or resource query resolves,
//! every node on the answer chain (the source and the relay contacts the
//! reply traversed) deposits a hint `(key → next-hop contact, remaining
//! depth)`. A later query consults the cache first: a fresh hint turns
//! the level-synchronous escalation into a *directed probe* down the hint
//! chain, charging only the probe's contact-path hops.
//!
//! ## Storage layout
//!
//! One [`HintStore`] holds a contiguous *span* of nodes' hint tables in a
//! single flat slot array (the sharded-`CardWorld` state model: no
//! per-node boxes, node `start + k`'s slots at
//! `k·per_node‥(k+1)·per_node`). A store covering every node is just the
//! span `start = 0`; under the shard-owned state model each protocol
//! shard owns the span store for its node range. Each node's table is
//! split into [`HINT_BUCKETS`] *distance buckets* keyed by the hint's
//! remaining depth — the Kademlia idiom: near answers (depth 1) never
//! fight far answers (depth ≥ 4) for slots — with LRU replacement inside
//! a bucket. The LRU clock is **per node** (each node counts its own
//! deposits), so slot stamps are a pure function of that node's deposit
//! history — independent of how nodes are grouped into stores, which is
//! what keeps hint state bit-identical across shard counts.
//!
//! ## Staleness
//!
//! Hints go stale two ways, and the cache is *never* trusted for
//! correctness — a probe still verifies the answer against live
//! neighborhood tables, and a dead hint only costs its probe messages:
//!
//! * **TTL** — slots are stamped with the store epoch (advanced once per
//!   validation round); a slot older than the configured TTL is reported
//!   [`Lookup::Expired`] and recycled by later deposits.
//! * **Mobility invalidation** — `Network::refresh_movers` reports the
//!   dirty ball of every topology change; `CardWorld` evicts all hints
//!   *held at* dirty nodes (their neighborhood view changed, so their
//!   hints are the ones mobility may have broken). Hints *through* a
//!   departed contact are caught at use: the probe resolves its next hop
//!   against the holder's live [`ContactTable`](crate::contact::ContactTable)
//!   and a missing contact is a `stale_contact` miss, not a forward.
//!
//! ## Determinism
//!
//! The store is plain state — lookups and deposits draw no randomness —
//! and the sharded sweep (`CardWorld::query_all`) runs its parallel phase
//! against *frozen* stores, routing each deposit through the cross-shard
//! message plane to the shard that owns its holder, where it is applied
//! in the plane's deterministic `(dst, src, seq)` drain order. Restricted
//! to any one holder that order equals global pair order, and holders in
//! different stores touch disjoint slots, so — together with the
//! per-node LRU clocks — outcomes, hint statistics *and the stores
//! themselves* are a pure function of `(network, tables, store, pairs)`
//! at any worker or shard count; with the cache disabled the sweep is
//! bit-identical to `query_all_serial` (pinned by `tests/hint_cache.rs`).

use net_topology::node::NodeId;

use crate::resources::ResourceId;

/// Distance buckets per node: hints with remaining depth `d` land in
/// bucket `min(d − 1, HINT_BUCKETS − 1)`.
pub const HINT_BUCKETS: usize = 4;

/// What a hint points at: a node lookup target or an anycast resource.
/// Packed into one word so slot matching is a single compare.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HintKey(u64);

const RESOURCE_BIT: u64 = 1 << 32;

impl HintKey {
    /// Key for a node-lookup (DSQ) target.
    #[inline]
    pub fn node(target: NodeId) -> Self {
        HintKey(target.index() as u64)
    }

    /// Key for an anycast resource.
    #[inline]
    pub fn resource(resource: ResourceId) -> Self {
        HintKey(RESOURCE_BIT | resource.0 as u64)
    }

    /// The packed word, for content-keyed hashing (fault verdicts must be
    /// a pure function of the message payload, never of transport
    /// coordinates).
    #[inline]
    pub fn bits(self) -> u64 {
        self.0
    }
}

/// Slot sentinel: no hint stored.
const EMPTY: u64 = u64::MAX;

/// One stored hint (flat-array slot).
#[derive(Clone, Copy, Debug)]
struct HintSlot {
    /// Packed [`HintKey`], or [`EMPTY`].
    key: u64,
    /// The contact to forward to (must be resolved against the holder's
    /// live contact table at use).
    next_hop: NodeId,
    /// Remaining contact-graph steps to the answer when deposited.
    depth: u16,
    /// Store epoch at deposit (TTL stamp).
    stamp: u32,
    /// Deposit-clock value of the last touch (LRU ordering).
    used: u32,
}

const VACANT: HintSlot = HintSlot {
    key: EMPTY,
    next_hop: NodeId::new(u32::MAX),
    depth: 0,
    stamp: 0,
    used: 0,
};

/// A fresh hint returned by [`HintStore::lookup`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hint {
    /// The contact to probe next.
    pub next_hop: NodeId,
    /// Remaining steps the depositor took from here to the answer.
    pub depth: u16,
}

/// Outcome of a cache lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// A fresh hint (the best one: minimal remaining depth).
    Hit(Hint),
    /// Only TTL-expired hints matched.
    Expired,
    /// No slot matches the key.
    Absent,
}

/// What a deposit displaced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DepositOutcome {
    /// A *fresh* (non-expired) hint for a different key was evicted.
    pub evicted_live: bool,
}

/// A hint queued for deposit — the unit the sharded sweep logs during its
/// frozen parallel phase and applies in shard order afterwards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HintDeposit {
    /// Node the hint is stored at.
    pub holder: NodeId,
    /// What the hint resolves.
    pub key: HintKey,
    /// Contact of `holder` to forward to.
    pub next_hop: NodeId,
    /// Contact-graph steps from `holder` to the answer.
    pub depth: u16,
}

/// Counters of the hint subsystem, merged across shards in shard order
/// (all fields are sums, so the merge is order-insensitive).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HintStats {
    /// Cache consultations (source + every relay peek + chase steps).
    pub lookups: u64,
    /// Lookups that returned a fresh hint whose contact is still live.
    pub hits: u64,
    /// Lookups with no matching slot.
    pub miss_absent: u64,
    /// Lookups where every matching slot had outlived its TTL.
    pub stale_ttl: u64,
    /// Fresh hints whose next hop is no longer a contact of the holder.
    pub stale_contact: u64,
    /// Queries that launched at least one directed probe.
    pub chases: u64,
    /// Queries answered by a probe (no escalation needed past it).
    pub chase_hits: u64,
    /// Messages spent on directed probes, successful or not.
    pub probe_msgs: u64,
    /// Hints written to the store.
    pub deposits: u64,
    /// Fresh hints displaced by LRU replacement.
    pub evicted_lru: u64,
    /// Hints evicted by mobility invalidation (dirty-ball reports).
    pub evicted_mobility: u64,
}

impl HintStats {
    /// Fold another shard's counters in.
    pub fn merge(&mut self, other: &HintStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.miss_absent += other.miss_absent;
        self.stale_ttl += other.stale_ttl;
        self.stale_contact += other.stale_contact;
        self.chases += other.chases;
        self.chase_hits += other.chase_hits;
        self.probe_msgs += other.probe_msgs;
        self.deposits += other.deposits;
        self.evicted_lru += other.evicted_lru;
        self.evicted_mobility += other.evicted_mobility;
    }

    /// Fraction of lookups that produced a usable hint.
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / (self.lookups.max(1)) as f64
    }

    /// Stale encounters of every kind (TTL, dead contact, mobility).
    pub fn stale_total(&self) -> u64 {
        self.stale_ttl + self.stale_contact + self.evicted_mobility
    }
}

/// Read access to hint tables, however the stores are laid out: one
/// whole-network [`HintStore`] or the shard-owned span stores behind
/// `CardWorld`. Implementations must be pure reads (sharded sweeps
/// consult frozen stores concurrently).
pub trait HintLookup {
    /// Consult `holder`'s hint table for `key`.
    fn lookup(&self, holder: NodeId, key: HintKey) -> Lookup;
}

impl HintLookup for HintStore {
    #[inline]
    fn lookup(&self, holder: NodeId, key: HintKey) -> Lookup {
        HintStore::lookup(self, holder, key)
    }
}

impl<T: HintLookup + ?Sized> HintLookup for &T {
    #[inline]
    fn lookup(&self, holder: NodeId, key: HintKey) -> Lookup {
        (**self).lookup(holder, key)
    }
}

impl<T: HintLookup + ?Sized> HintLookup for &mut T {
    #[inline]
    fn lookup(&self, holder: NodeId, key: HintKey) -> Lookup {
        (**self).lookup(holder, key)
    }
}

/// Bounded per-node hint tables over one flat slot array, covering a
/// contiguous node span (see the module docs for layout, staleness, and
/// determinism).
#[derive(Clone, Debug)]
pub struct HintStore {
    slots: Vec<HintSlot>,
    /// First node index covered by this store (0 for a whole-network
    /// store; the shard's span start under shard-owned state).
    start: usize,
    /// Slots per node (`HINT_BUCKETS · slots_per_bucket`).
    per_node: usize,
    slots_per_bucket: usize,
    /// TTL in epochs: a slot with `epoch − stamp > ttl` is expired.
    ttl: u32,
    /// Current epoch (advanced once per validation round; span stores of
    /// one world advance in lockstep).
    epoch: u32,
    /// Per-node monotone deposit clocks for LRU ordering (`clocks[k]`
    /// counts node `start + k`'s deposits). LRU comparisons only ever
    /// rank slots of one node, so per-node clocks order them exactly as
    /// a global clock would — while staying a pure function of the
    /// node's own history, independent of store layout.
    clocks: Vec<u32>,
}

impl HintStore {
    /// A store for nodes `0..n` with `slots_per_bucket` LRU slots in each
    /// of the [`HINT_BUCKETS`] distance buckets, and the given TTL
    /// (epochs).
    pub fn new(n: usize, slots_per_bucket: usize, ttl: u32) -> Self {
        Self::new_span(0, n, slots_per_bucket, ttl)
    }

    /// A store covering the node span `start..start + len`.
    pub fn new_span(start: usize, len: usize, slots_per_bucket: usize, ttl: u32) -> Self {
        assert!(slots_per_bucket >= 1, "hint buckets need at least one slot");
        let per_node = HINT_BUCKETS * slots_per_bucket;
        HintStore {
            slots: vec![VACANT; len * per_node],
            start,
            per_node,
            slots_per_bucket,
            ttl,
            epoch: 0,
            clocks: vec![0; len],
        }
    }

    /// Nodes covered.
    pub fn node_count(&self) -> usize {
        self.slots.len() / self.per_node.max(1)
    }

    /// First node index covered.
    pub fn span_start(&self) -> usize {
        self.start
    }

    /// Total slots per node.
    pub fn capacity_per_node(&self) -> usize {
        self.per_node
    }

    /// Current TTL epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Advance the TTL epoch (one validation round elapsed).
    pub fn advance_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
    }

    /// Heap bytes held by the slot array and clocks (per-shard memory
    /// accounting in the scale experiments).
    pub fn memory_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<HintSlot>()
            + self.clocks.capacity() * std::mem::size_of::<u32>()
    }

    /// Copy node `node`'s slots and LRU clock out of `other` (which must
    /// cover it, with identical bucket geometry). Used to migrate hint
    /// state when the world is re-sharded.
    pub(crate) fn copy_node_from(&mut self, other: &HintStore, node: NodeId) {
        debug_assert_eq!(self.per_node, other.per_node);
        debug_assert_eq!(self.slots_per_bucket, other.slots_per_bucket);
        let dst = self.region(node);
        let src = other.region(node);
        self.slots[dst].copy_from_slice(&other.slots[src]);
        self.clocks[node.index() - self.start] = other.clocks[node.index() - other.start];
    }

    /// Force the TTL epoch (re-shard migration: span stores must inherit
    /// the old store's epoch so TTL stamps keep their age).
    pub(crate) fn set_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    /// Live (non-vacant) hints across all nodes — observability only.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.key != EMPTY).count()
    }

    /// No hints stored anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn bucket_of(&self, depth: u16) -> usize {
        (depth.saturating_sub(1) as usize).min(HINT_BUCKETS - 1)
    }

    #[inline]
    fn region(&self, node: NodeId) -> std::ops::Range<usize> {
        debug_assert!(
            node.index() >= self.start,
            "node {} below span start {}",
            node.index(),
            self.start
        );
        let start = (node.index() - self.start) * self.per_node;
        start..start + self.per_node
    }

    #[inline]
    fn fresh(&self, slot: &HintSlot) -> bool {
        self.epoch.wrapping_sub(slot.stamp) <= self.ttl
    }

    /// Consult `holder`'s table for `key`: the best (minimal remaining
    /// depth) fresh hint, or whether only expired ones / none matched.
    pub fn lookup(&self, holder: NodeId, key: HintKey) -> Lookup {
        let mut best: Option<Hint> = None;
        let mut expired = false;
        for slot in &self.slots[self.region(holder)] {
            if slot.key != key.0 {
                continue;
            }
            if !self.fresh(slot) {
                expired = true;
                continue;
            }
            if best.is_none_or(|b| slot.depth < b.depth) {
                best = Some(Hint {
                    next_hop: slot.next_hop,
                    depth: slot.depth,
                });
            }
        }
        match best {
            Some(h) => Lookup::Hit(h),
            None if expired => Lookup::Expired,
            None => Lookup::Absent,
        }
    }

    /// Store (or refresh) a hint at `holder`. An existing slot for the
    /// same key is updated in place (migrating buckets when the depth
    /// moved); otherwise the bucket's first vacant slot is used, then the
    /// coldest expired slot, then the coldest live slot (LRU eviction).
    pub fn deposit(
        &mut self,
        holder: NodeId,
        key: HintKey,
        next_hop: NodeId,
        depth: u16,
    ) -> DepositOutcome {
        let node_clock = &mut self.clocks[holder.index() - self.start];
        *node_clock = node_clock.wrapping_add(1);
        let clock = *node_clock;
        let epoch = self.epoch;
        let bucket = self.bucket_of(depth);
        let region = self.region(holder);

        // Refresh in place when the key is already hinted somewhere in the
        // holder's table (clearing the old slot on a bucket migration).
        let existing = self.slots[region.clone()]
            .iter()
            .position(|s| s.key == key.0);
        if let Some(off) = existing {
            let old_bucket = off / self.slots_per_bucket;
            if old_bucket == bucket {
                let slot = &mut self.slots[region.start + off];
                *slot = HintSlot {
                    key: key.0,
                    next_hop,
                    depth,
                    stamp: epoch,
                    used: clock,
                };
                return DepositOutcome {
                    evicted_live: false,
                };
            }
            self.slots[region.start + off] = VACANT;
        }

        // Victim selection inside the target bucket.
        let bucket_start = region.start + bucket * self.slots_per_bucket;
        let bucket_slots = &self.slots[bucket_start..bucket_start + self.slots_per_bucket];
        let mut victim = 0usize;
        let mut victim_rank = (u8::MAX, u32::MAX); // (class, used): lower wins
        for (i, slot) in bucket_slots.iter().enumerate() {
            let class = if slot.key == EMPTY {
                0
            } else if !self.fresh(slot) {
                1
            } else {
                2
            };
            let rank = (class, slot.used);
            if rank < victim_rank {
                victim_rank = rank;
                victim = i;
            }
        }
        let evicted_live = victim_rank.0 == 2;
        self.slots[bucket_start + victim] = HintSlot {
            key: key.0,
            next_hop,
            depth,
            stamp: epoch,
            used: clock,
        };
        DepositOutcome { evicted_live }
    }

    /// Drop every hint held at `node` (mobility invalidation: its
    /// neighborhood view changed). Returns how many hints were evicted.
    pub fn invalidate_node(&mut self, node: NodeId) -> usize {
        let mut evicted = 0usize;
        let region = self.region(node);
        for slot in &mut self.slots[region] {
            if slot.key != EMPTY {
                *slot = VACANT;
                evicted += 1;
            }
        }
        evicted
    }

    /// Drop every hint in the store (wholesale topology refresh). Returns
    /// how many hints were evicted.
    pub fn invalidate_all(&mut self) -> usize {
        let mut evicted = 0usize;
        for slot in &mut self.slots {
            if slot.key != EMPTY {
                *slot = VACANT;
                evicted += 1;
            }
        }
        evicted
    }

    /// Empty the store without counting (cold-start resets in experiments).
    pub fn clear(&mut self) {
        self.slots.fill(VACANT);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn keys_never_collide_across_kinds() {
        assert_ne!(HintKey::node(n(7)), HintKey::resource(ResourceId(7)));
        assert_eq!(HintKey::node(n(7)), HintKey::node(n(7)));
    }

    #[test]
    fn lookup_misses_on_empty_store() {
        let store = HintStore::new(4, 2, 8);
        assert_eq!(store.lookup(n(0), HintKey::node(n(3))), Lookup::Absent);
        assert!(store.is_empty());
    }

    #[test]
    fn deposit_then_lookup_round_trips() {
        let mut store = HintStore::new(4, 2, 8);
        store.deposit(n(0), HintKey::node(n(3)), n(1), 2);
        assert_eq!(
            store.lookup(n(0), HintKey::node(n(3))),
            Lookup::Hit(Hint {
                next_hop: n(1),
                depth: 2
            })
        );
        // Held at node 0 only: other nodes stay absent.
        assert_eq!(store.lookup(n(1), HintKey::node(n(3))), Lookup::Absent);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn depths_land_in_distance_buckets() {
        let mut store = HintStore::new(1, 1, 8);
        // One slot per bucket: four different-depth keys must coexist.
        for (i, depth) in [1u16, 2, 3, 9].iter().enumerate() {
            store.deposit(n(0), HintKey::node(n(10 + i as u32)), n(1), *depth);
        }
        assert_eq!(store.len(), 4, "distinct buckets must not evict each other");
        // Depth ≥ HINT_BUCKETS shares the last bucket with depth 4.
        store.deposit(n(0), HintKey::node(n(99)), n(1), 4);
        assert_eq!(store.len(), 4, "depth 4 and 9 share the far bucket");
        assert_eq!(store.lookup(n(0), HintKey::node(n(13))), Lookup::Absent);
    }

    #[test]
    fn lru_evicts_the_coldest_slot() {
        let mut store = HintStore::new(1, 2, 8);
        store.deposit(n(0), HintKey::node(n(10)), n(1), 1);
        store.deposit(n(0), HintKey::node(n(11)), n(2), 1);
        // Touch 10 (refresh): 11 becomes the coldest.
        store.deposit(n(0), HintKey::node(n(10)), n(1), 1);
        let out = store.deposit(n(0), HintKey::node(n(12)), n(3), 1);
        assert!(out.evicted_live);
        assert_eq!(store.lookup(n(0), HintKey::node(n(11))), Lookup::Absent);
        assert!(matches!(
            store.lookup(n(0), HintKey::node(n(10))),
            Lookup::Hit(_)
        ));
    }

    #[test]
    fn refresh_updates_in_place_and_migrates_buckets() {
        let mut store = HintStore::new(1, 2, 8);
        store.deposit(n(0), HintKey::node(n(10)), n(1), 3);
        // Same key re-deposited at a nearer depth: moves bucket, one copy.
        store.deposit(n(0), HintKey::node(n(10)), n(2), 1);
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.lookup(n(0), HintKey::node(n(10))),
            Lookup::Hit(Hint {
                next_hop: n(2),
                depth: 1
            })
        );
    }

    #[test]
    fn ttl_expires_hints_and_deposits_recycle_them() {
        let mut store = HintStore::new(1, 1, 2);
        store.deposit(n(0), HintKey::node(n(10)), n(1), 1);
        for _ in 0..2 {
            store.advance_epoch();
        }
        assert!(matches!(
            store.lookup(n(0), HintKey::node(n(10))),
            Lookup::Hit(_)
        ));
        store.advance_epoch(); // now 3 epochs old > ttl 2
        assert_eq!(store.lookup(n(0), HintKey::node(n(10))), Lookup::Expired);
        // An expired slot is preferred over evicting live hints.
        let out = store.deposit(n(0), HintKey::node(n(11)), n(2), 1);
        assert!(!out.evicted_live);
        assert_eq!(store.lookup(n(0), HintKey::node(n(10))), Lookup::Absent);
    }

    #[test]
    fn lookup_prefers_the_shallowest_fresh_hint() {
        let mut store = HintStore::new(1, 1, 8);
        store.deposit(n(0), HintKey::node(n(10)), n(1), 3);
        store.deposit(n(0), HintKey::node(n(10)), n(2), 1);
        // The bucket migration kept one copy; a *different* key at depth 3
        // then a fresh same-key deposit at depth 3 exercises min-depth
        // selection across buckets.
        store.deposit(n(0), HintKey::node(n(11)), n(3), 3);
        match store.lookup(n(0), HintKey::node(n(10))) {
            Lookup::Hit(h) => assert_eq!(h.depth, 1),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn span_store_offsets_regions() {
        let mut store = HintStore::new_span(100, 4, 2, 8);
        assert_eq!(store.span_start(), 100);
        assert_eq!(store.node_count(), 4);
        store.deposit(n(100), HintKey::node(n(3)), n(101), 1);
        store.deposit(n(103), HintKey::node(n(3)), n(102), 2);
        assert!(matches!(
            store.lookup(n(100), HintKey::node(n(3))),
            Lookup::Hit(_)
        ));
        assert_eq!(store.lookup(n(101), HintKey::node(n(3))), Lookup::Absent);
        assert_eq!(store.invalidate_node(n(103)), 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn copy_node_from_migrates_slots_and_clock() {
        let mut whole = HintStore::new(6, 2, 8);
        whole.deposit(n(4), HintKey::node(n(1)), n(5), 1);
        whole.deposit(n(4), HintKey::node(n(2)), n(5), 1);
        whole.advance_epoch();
        let mut span = HintStore::new_span(3, 3, 2, 8);
        span.set_epoch(whole.epoch());
        for k in 3..6 {
            span.copy_node_from(&whole, n(k));
        }
        assert_eq!(
            span.lookup(n(4), HintKey::node(n(1))),
            whole.lookup(n(4), HintKey::node(n(1)))
        );
        // LRU state migrated too: the next deposit must evict the same
        // victim in both stores.
        let a = span.deposit(n(4), HintKey::node(n(9)), n(5), 1);
        let b = whole.deposit(n(4), HintKey::node(n(9)), n(5), 1);
        assert_eq!(a, b);
        assert_eq!(
            span.lookup(n(4), HintKey::node(n(1))),
            whole.lookup(n(4), HintKey::node(n(1)))
        );
        assert_eq!(
            span.lookup(n(4), HintKey::node(n(2))),
            whole.lookup(n(4), HintKey::node(n(2)))
        );
    }

    #[test]
    fn invalidation_evicts_per_node_and_wholesale() {
        let mut store = HintStore::new(3, 2, 8);
        store.deposit(n(0), HintKey::node(n(10)), n(1), 1);
        store.deposit(n(1), HintKey::node(n(10)), n(2), 2);
        store.deposit(n(2), HintKey::resource(ResourceId(0)), n(1), 1);
        assert_eq!(store.invalidate_node(n(1)), 1);
        assert_eq!(store.lookup(n(1), HintKey::node(n(10))), Lookup::Absent);
        assert!(matches!(
            store.lookup(n(0), HintKey::node(n(10))),
            Lookup::Hit(_)
        ));
        assert_eq!(store.invalidate_all(), 2);
        assert!(store.is_empty());
    }
}

//! # card-core — the CARD protocol
//!
//! The paper's primary contribution (§III): a hybrid resource-discovery
//! architecture in which each node proactively knows its R-hop
//! *neighborhood* and reactively maintains a few *contacts* — nodes between
//! 2R and r hops away whose neighborhoods do not overlap its own — acting as
//! small-world shortcuts for queries beyond the neighborhood.
//!
//! Modules, mirroring the paper's §III.C mechanism descriptions:
//!
//! * [`config`] — every protocol parameter (R, r, NoC, D, selection method,
//!   validation period) in one [`config::CardConfig`];
//! * [`contact`] — contact entries and per-node contact tables;
//! * [`selection`] — the contact-selection *decision*: probabilistic method
//!   PM (equations 1 and 2) and edge method EM (§III.C.2);
//! * [`csq`] — the Contact Selection Query: a random depth-first walk with
//!   backtracking out to at most r hops (§III.C.1);
//! * [`maintenance`] — periodic contact validation with local recovery
//!   (§III.C.3);
//! * [`query`] — the Destination Search Query with depth-of-search
//!   escalation (§III.C.4), re-platformed as a zero-allocation engine: an
//!   epoch-stamped [`query::QueryScratch`] walk workspace shared by node
//!   queries, resource queries and reachability, with *incremental*
//!   escalation (depth d only walks its final level; accounting stays
//!   bit-identical to the per-depth re-walk reference
//!   [`query::dsq_query_rewalk`]) and a batched
//!   [`world::CardWorld::query_all`] sweep sharded over the worker pool;
//! * [`hints`] — the §V route-hint cache: bounded per-node hint tables
//!   (distance-bucketed, LRU within a bucket, one flat slot array) that
//!   turn repeat queries into directed probes, with TTL epochs and
//!   mobility-driven invalidation (see [`world::CardWorld::query_all`]
//!   for how the sharded sweep keeps determinism with the cache on);
//! * [`reachability`] — the paper's reachability metric (§III.B) and its
//!   distribution histograms;
//! * [`resources`] — resource-level (anycast) discovery: registries, the
//!   §V "resource distribution" models, and resource DSQs;
//! * [`world`] — [`world::CardWorld`]: network + per-node CARD state +
//!   event-driven simulation loop (mobility ticks, validation rounds).
//!   Per-node protocol state is *sharded*: the whole-network selection and
//!   validation sweeps fan out over the persistent `sim_core::par` worker
//!   pool with shard-owned RNG streams and walk scratches, bit-identical
//!   to their serial reference paths at any worker or shard count (the
//!   module docs spell out the determinism contract). A seeded
//!   `sim_core::faults` plan can be armed on any world
//!   ([`world::CardWorld::enable_faults`]) for deterministic crash/
//!   partition/message-loss injection with tombstone, retry-timer, and
//!   query-retry hardening.

#![warn(missing_docs)]
pub mod config;
pub mod contact;
pub mod csq;
pub mod events;
pub mod hints;
pub mod maintenance;
pub mod query;
pub mod reachability;
pub mod resources;
pub mod selection;
pub mod standing;
pub mod world;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::config::{CardConfig, SelectionMethod};
    pub use crate::contact::{Contact, ContactTable};
    pub use crate::events::{Arrival, ArrivalKind, DriveMode, DriveReport, EventDriver};
    pub use crate::hints::{HintStats, HintStore};
    pub use crate::query::{QueryOutcome, QueryRetryQueue, QueryScratch, RetryStats};
    pub use crate::reachability::{ReachabilitySummary, REACH_BUCKET_PCT};
    pub use crate::resources::{ResourceDistribution, ResourceId, ResourceRegistry};
    pub use crate::standing::{StandingQueries, StandingQuery, StandingState, StandingStats};
    pub use crate::world::{CardWorld, FaultReport};
}

pub use config::{CardConfig, SelectionMethod};
pub use contact::{Contact, ContactTable};
pub use events::{Arrival, ArrivalKind, DriveMode, DriveReport, EventDriver};
pub use query::{QueryOutcome, QueryRetryQueue, QueryScratch, RetryStats};
pub use reachability::ReachabilitySummary;
pub use standing::{StandingQueries, StandingQuery, StandingState, StandingStats};
pub use world::{CardWorld, FaultReport};

//! The event-driven simulation core.
//!
//! [`EventDriver`] re-platforms the mobile pipeline of
//! [`CardWorld::run_mobile`] onto an externally-owned event schedule over a
//! [`RegionalMobility`] partition. Three event kinds drive everything:
//!
//! * **Regional mobility wake-ups** — each non-static region is woken on
//!   the global tick lattice (`base + k · mobility_tick`) and advanced by
//!   exactly the virtual time since its own last wake. In
//!   [`DriveMode::Tick`] every region wakes every tick — the reference
//!   schedule. In [`DriveMode::Event`] a region whose model reports a
//!   quiescent window ([`mobility::MobilityModel::quiescent_for`]) sleeps
//!   through `ceil(window / tick)` ticks and is advanced by the whole span
//!   in one step at the wake where motion first becomes possible.
//! * **Validation rounds** — `CardWorld::event_validation_round` on the
//!   `base + 1 µs + m · validation_period` lattice, exactly as
//!   `run_mobile` schedules them.
//! * **Workload arrivals** — queries and standing-query registrations at
//!   pre-declared offsets, executed over the live world.
//!
//! ## Determinism contract
//!
//! The two drive modes are **bit-identical** at every synchronization
//! instant — canonical CSR, neighborhood and contact tables, message
//! statistics, standing-query state (`tests/event_equivalence.rs` pins
//! this). The load-bearing facts:
//!
//! * Skipped wakes are observational no-ops: inside a quiescent window the
//!   tick reference performs pure integer dwell-timer decrements — no
//!   position changes, no RNG draws, no dirty nodes — so eliding those
//!   region-ticks (and their empty refreshes) leaves every observable
//!   equal. The subdivision contract of `quiescent_for` makes the one big
//!   `advance` land epoch expiries on the same instants with the same
//!   integer residuals and the same node-order RNG draws as the many
//!   small ones.
//! * Coincident events order identically in both modes. Arrivals are
//!   scheduled first at construction, so the queue's FIFO tie-break
//!   delivers them ahead of any wake or round at the same instant; all
//!   wakes at one instant are drained together, advanced in ascending
//!   region order (per-region advances commute — disjoint position spans
//!   and RNG streams), and folded into a *single* refresh, exactly like
//!   the tick reference's whole-network advance.
//! * Wake and validation instants never collide: the constructor rejects
//!   configurations where the `1 µs`-offset validation lattice can
//!   intersect the tick lattice (`gcd(tick, period)` must exceed 1 µs).
//! * The sampled grid audit (a rotating cursor) runs only on refreshes
//!   that reported movers, so both modes advance the cursor identically.
//! * Fault injection rides the ValidationRound lattice: an armed
//!   `sim_core::faults` plan is applied inside
//!   [`CardWorld::validation_round`] itself (crashes, rejoins, partition
//!   windows — see the world module's fault section), so tick loops,
//!   event drives and direct round calls replay one fault history by
//!   construction; no separate fault event kind exists.
//!
//! At the end of each `drive` segment, regions still asleep are brought
//! forward to the last tick-lattice instant before the horizon (a pure
//! dwell decrement, asserted mover-free in debug builds), so both modes
//! hand identical model state to whatever runs next.

use mobility::regional::RegionalMobility;
use net_topology::node::NodeId;
use sim_core::engine::Engine;
use sim_core::time::{SimDuration, SimTime};

use crate::query::QueryOutcome;
use crate::world::CardWorld;

/// Events of the event-driven pipeline.
#[derive(Clone, Debug)]
enum CardEvent {
    /// Advance one mobility region (all wakes at an instant are drained
    /// and folded into one refresh).
    MobilityWake {
        /// Region index into the [`RegionalMobility`] partition.
        region: u32,
    },
    /// Validate contacts and recheck standing queries.
    ValidationRound,
    /// Execute workload entry `index`.
    Arrival { index: u32 },
}

/// How the driver schedules regional mobility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriveMode {
    /// Wake every non-static region every tick — the reference schedule,
    /// equivalent to [`CardWorld::run_mobile`].
    Tick,
    /// Let quiescent regions sleep through their still windows; wakes are
    /// elided, not merely cheap.
    Event,
}

/// What happens when a workload arrival fires.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalKind {
    /// A one-shot query ([`CardWorld::query`]); its outcome is appended to
    /// [`DriveReport::outcomes`].
    Query {
        /// Querying node.
        source: NodeId,
        /// Node searched for.
        target: NodeId,
    },
    /// A standing-query registration ([`CardWorld::standing_register`]);
    /// its id is appended to [`DriveReport::standing_registered`].
    Standing {
        /// Subscribing node.
        source: NodeId,
        /// Node the subscription tracks.
        target: NodeId,
    },
}

/// One scheduled workload entry.
#[derive(Clone, Debug)]
pub struct Arrival {
    /// Offset from the driver's construction instant.
    pub at: SimDuration,
    /// What to execute.
    pub kind: ArrivalKind,
}

/// Counters and outcomes accumulated across `drive` calls.
///
/// The world state the two drive modes produce is bit-identical, and so
/// are `outcomes`, `standing_registered`, `validation_rounds` and
/// `arrivals`; the *scheduling* counters (`events_processed`,
/// `region_wakes`, `region_ticks_skipped`, `refreshes`) measure how much
/// work each mode actually performed and differ by design.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DriveReport {
    /// Events delivered by the engine.
    pub events_processed: u64,
    /// Regional advances performed at wake-ups.
    pub region_wakes: u64,
    /// Region-ticks covered without a wake (quiescence skips and
    /// end-of-segment catch-up).
    pub region_ticks_skipped: u64,
    /// Topology refreshes performed.
    pub refreshes: u64,
    /// Validation rounds performed.
    pub validation_rounds: u64,
    /// Workload arrivals executed.
    pub arrivals: u64,
    /// Grid-residency violations found by the sampled audit (0 in a
    /// healthy pipeline).
    pub audit_violations: u64,
    /// Outcomes of [`ArrivalKind::Query`] arrivals, in arrival order.
    pub outcomes: Vec<QueryOutcome>,
    /// Ids returned by [`ArrivalKind::Standing`] arrivals, in arrival
    /// order.
    pub standing_registered: Vec<u32>,
}

/// The event-driven pipeline driver (see the module docs).
pub struct EventDriver {
    mode: DriveMode,
    engine: Engine<CardEvent>,
    /// Construction instant — origin of the tick lattice.
    base: SimTime,
    /// End of the last `drive` segment.
    cursor: SimTime,
    /// Per-region instant of the last advance.
    region_last: Vec<SimTime>,
    workload: Vec<Arrival>,
    /// Scratch: regions due at the instant being handled.
    due: Vec<u32>,
    /// Scratch: global mover report of the instant being handled.
    movers: Vec<NodeId>,
    report: DriveReport,
    /// Samples per mover-bearing refresh for the grid-residency audit.
    audit_samples: usize,
}

impl EventDriver {
    /// Build a driver over `world` and the `model` partition, scheduling
    /// `workload` relative to the world's current instant. The same
    /// `model` must be passed to every subsequent [`EventDriver::drive`].
    ///
    /// # Panics
    /// Panics if the partition does not cover the world's nodes, or if the
    /// tick and validation lattices can collide (`gcd(mobility_tick,
    /// validation_period)` must exceed 1 µs — satisfied whenever the tick
    /// divides the period and is at least 2 µs, as with the defaults).
    pub fn new(
        world: &CardWorld,
        model: &RegionalMobility,
        mode: DriveMode,
        workload: Vec<Arrival>,
    ) -> Self {
        assert_eq!(
            model.node_count(),
            world.network().node_count(),
            "mobility partition must cover the network"
        );
        let tick = world.config().mobility_tick;
        let period = world.config().validation_period;
        assert!(
            gcd(tick.ticks(), period.ticks()) > 1,
            "tick ({tick:?}) and validation ({period:?}) lattices may collide: \
             their 1 µs-offset schedules need gcd > 1 µs to stay disjoint"
        );
        let base = world.now();
        let mut engine: Engine<CardEvent> = Engine::with_horizon(base);
        // Arrivals first: their FIFO sequence numbers precede every wake
        // and round ever scheduled, so coincident arrivals apply before
        // motion and validation — identically in both modes.
        for (i, a) in workload.iter().enumerate() {
            engine.schedule_at(base + a.at, CardEvent::Arrival { index: i as u32 });
        }
        // Wakes before the round, mirroring `run_mobile`'s construction
        // order (the lattices themselves never collide; see above).
        for r in 0..model.region_count() {
            if !model.region_is_static(r) {
                engine.schedule_at(base + tick, CardEvent::MobilityWake { region: r as u32 });
            }
        }
        engine.schedule_at(
            base + SimDuration::from_micros(1),
            CardEvent::ValidationRound,
        );
        EventDriver {
            mode,
            engine,
            base,
            cursor: base,
            region_last: vec![base; model.region_count()],
            workload,
            due: Vec::new(),
            movers: Vec::new(),
            report: DriveReport::default(),
            audit_samples: 8,
        }
    }

    /// The drive mode.
    pub fn mode(&self) -> DriveMode {
        self.mode
    }

    /// Accumulated counters and outcomes.
    pub fn report(&self) -> &DriveReport {
        &self.report
    }

    /// Samples per mover-bearing refresh for the sampled grid audit
    /// (default 8; 0 disables). Both modes of an equivalence pair must use
    /// the same value.
    pub fn set_audit_samples(&mut self, samples: usize) {
        self.audit_samples = samples;
    }

    /// Advance the world by `duration` of virtual time, delivering every
    /// event strictly before the new horizon. Segments stack: driving
    /// twice for `d` equals driving once for `2 d`.
    pub fn drive(
        &mut self,
        world: &mut CardWorld,
        model: &mut RegionalMobility,
        duration: SimDuration,
    ) {
        let tick = world.config().mobility_tick;
        let end = self.cursor + duration;
        self.engine.set_horizon(end);
        while let Some((t, ev)) = self.engine.next_event() {
            world.set_now(t);
            self.report.events_processed += 1;
            match ev {
                CardEvent::MobilityWake { region } => {
                    self.handle_wakes(world, model, t, region, tick);
                }
                CardEvent::ValidationRound => {
                    world.event_validation_round();
                    self.report.validation_rounds += 1;
                    self.engine
                        .schedule_in(world.config().validation_period, CardEvent::ValidationRound);
                }
                CardEvent::Arrival { index } => {
                    self.report.arrivals += 1;
                    match self.workload[index as usize].kind {
                        ArrivalKind::Query { source, target } => {
                            let out = world.query(source, target);
                            self.report.outcomes.push(out);
                        }
                        ArrivalKind::Standing { source, target } => {
                            let id = world.standing_register(source, target);
                            self.report.standing_registered.push(id);
                        }
                    }
                }
            }
        }
        self.finalize_segment(world, model, end, tick);
    }

    /// Handle every wake due at instant `t`: drain coincident wakes (the
    /// FIFO tie-break guarantees no arrival can still be queued at `t`,
    /// and the lattice assertion keeps rounds off tick instants), advance
    /// the due regions in ascending order, then fold the union mover
    /// report into one refresh — the same single refresh per instant the
    /// tick reference performs.
    fn handle_wakes(
        &mut self,
        world: &mut CardWorld,
        model: &mut RegionalMobility,
        t: SimTime,
        first: u32,
        tick: SimDuration,
    ) {
        self.due.clear();
        self.due.push(first);
        loop {
            let next = match self.engine.peek() {
                Some((pt, CardEvent::MobilityWake { region })) if pt == t => *region,
                _ => break,
            };
            let popped = self.engine.next_event();
            debug_assert!(popped.is_some(), "peeked event must pop");
            self.report.events_processed += 1;
            self.due.push(next);
        }
        // Ascending region order: advances commute, but a fixed order keeps
        // the mover union sorted (regions are contiguous ascending spans).
        self.due.sort_unstable();
        self.movers.clear();
        for i in 0..self.due.len() {
            let r = self.due[i] as usize;
            self.report.region_wakes += 1;
            let dt = t.since(self.region_last[r]);
            debug_assert_eq!(
                dt.ticks() % tick.ticks(),
                0,
                "wakes live on the tick lattice"
            );
            self.report.region_ticks_skipped += dt.ticks() / tick.ticks() - 1;
            model.advance_region_reporting(r, world.positions_mut(), dt, &mut self.movers);
            self.region_last[r] = t;
            let sleep = match self.mode {
                DriveMode::Tick => tick,
                DriveMode::Event => match model.region_quiescent_for(r) {
                    // Motion first becomes possible at offset `q`; the
                    // first tick instant not strictly inside the still
                    // window is ceil(q / tick) ticks out, and everything
                    // before it is a pure dwell decrement.
                    Some(q) => tick * q.ticks().div_ceil(tick.ticks()).max(1),
                    None => tick,
                },
            };
            self.engine
                .schedule_in(sleep, CardEvent::MobilityWake { region: r as u32 });
        }
        debug_assert!(
            self.movers.windows(2).all(|w| w[0] < w[1]),
            "mover union must ascend"
        );
        self.report.refreshes += 1;
        self.report.audit_violations +=
            world.event_mobility_refresh(&self.movers, self.audit_samples) as u64;
    }

    /// Bring every lagging region forward to the last tick-lattice instant
    /// strictly before `end`, so both modes end the segment with identical
    /// model state. The caught-up span lies inside a quiescent window (the
    /// region's next wake is at or past `end`), so the advance is a pure
    /// dwell decrement — asserted mover-free in debug builds.
    fn finalize_segment(
        &mut self,
        world: &mut CardWorld,
        model: &mut RegionalMobility,
        end: SimTime,
        tick: SimDuration,
    ) {
        let elapsed = end.since(self.base);
        if !elapsed.is_zero() {
            let k = (elapsed.ticks() - 1) / tick.ticks();
            let t_last = self.base + tick * k;
            for r in 0..model.region_count() {
                if model.region_is_static(r) || self.region_last[r] >= t_last {
                    continue;
                }
                let dt = t_last.since(self.region_last[r]);
                self.report.region_ticks_skipped += dt.ticks() / tick.ticks();
                self.movers.clear();
                model.advance_region_reporting(r, world.positions_mut(), dt, &mut self.movers);
                debug_assert!(
                    self.movers.is_empty(),
                    "end-of-segment catch-up crossed a motion instant"
                );
                self.region_last[r] = t_last;
            }
        }
        world.set_now(end);
        self.cursor = end;
    }
}

/// Greatest common divisor (Euclid).
fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CardConfig;
    use mobility::statics::StaticModel;
    use mobility::walk::RandomWalk;
    use net_topology::scenario::Scenario;
    use sim_core::rng::SeedSplitter;

    fn scenario() -> Scenario {
        Scenario::new(120, 450.0, 450.0, 60.0)
    }

    fn cfg() -> CardConfig {
        CardConfig::default()
            .with_radius(2)
            .with_max_contact_distance(8)
            .with_target_contacts(4)
            .with_seed(33)
    }

    fn world() -> CardWorld {
        let mut w = CardWorld::build(&scenario(), cfg());
        w.select_all_contacts();
        w
    }

    fn dwell_region(
        n: usize,
        pause: f64,
        seed: u64,
        field: net_topology::geometry::Field,
    ) -> RandomWalk {
        RandomWalk::new_with_dwell(
            n,
            field,
            0.5,
            2.0,
            2.0,
            pause,
            SeedSplitter::new(seed).stream("mobility", 0),
        )
    }

    fn partition(w: &CardWorld, pause: f64) -> RegionalMobility {
        let n = w.network().node_count();
        let field = w.network().field();
        let mut m = RegionalMobility::new();
        m.push_region(n / 2, Box::new(dwell_region(n / 2, pause, 5, field)));
        m.push_region(
            n - n / 2,
            Box::new(dwell_region(n - n / 2, pause, 6, field)),
        );
        m
    }

    #[test]
    fn tick_mode_matches_run_mobile_reference() {
        // A tick-mode driver with an empty workload is `run_mobile` with a
        // different loop skeleton: world state must agree exactly.
        let mut legacy = world();
        let mut legacy_model = partition(&legacy, 0.7);
        legacy.run_mobile(&mut legacy_model, SimDuration::from_secs(3));

        let mut driven = world();
        let mut driven_model = partition(&driven, 0.7);
        let mut driver = EventDriver::new(&driven, &driven_model, DriveMode::Tick, Vec::new());
        driver.set_audit_samples(0); // run_mobile never audits
        driver.drive(&mut driven, &mut driven_model, SimDuration::from_secs(3));

        assert_eq!(driven.now(), legacy.now());
        assert_eq!(
            driven.network().adj().canonical_csr(),
            legacy.network().adj().canonical_csr()
        );
        assert_eq!(
            driven.stats().series_where(|_| true),
            legacy.stats().series_where(|_| true)
        );
        assert_eq!(driven.maintenance_totals(), legacy.maintenance_totals());
        assert_eq!(driver.report().validation_rounds, 3);
        assert_eq!(
            driver.report().region_ticks_skipped,
            0,
            "tick mode skips nothing"
        );
    }

    #[test]
    fn event_mode_skips_wakes_under_heavy_dwell() {
        let mut tick_world = world();
        let mut tick_model = partition(&tick_world, 0.98);
        let mut tick_driver =
            EventDriver::new(&tick_world, &tick_model, DriveMode::Tick, Vec::new());
        tick_driver.drive(&mut tick_world, &mut tick_model, SimDuration::from_secs(4));

        let mut ev_world = world();
        let mut ev_model = partition(&ev_world, 0.98);
        let mut ev_driver = EventDriver::new(&ev_world, &ev_model, DriveMode::Event, Vec::new());
        ev_driver.drive(&mut ev_world, &mut ev_model, SimDuration::from_secs(4));

        assert_eq!(
            ev_world.network().adj().canonical_csr(),
            tick_world.network().adj().canonical_csr()
        );
        assert_eq!(
            ev_world.stats().series_where(|_| true),
            tick_world.stats().series_where(|_| true)
        );
        assert!(
            ev_driver.report().events_processed <= tick_driver.report().events_processed,
            "event mode may not deliver more events than the tick reference"
        );
    }

    #[test]
    fn arrivals_execute_in_declared_order_and_feed_the_report() {
        let mut w = world();
        let mut model = RegionalMobility::new();
        model.push_region(w.network().node_count(), Box::new(StaticModel));
        let workload = vec![
            Arrival {
                at: SimDuration::from_millis(250),
                kind: ArrivalKind::Query {
                    source: NodeId::new(0),
                    target: NodeId::new(90),
                },
            },
            Arrival {
                at: SimDuration::from_millis(250),
                kind: ArrivalKind::Standing {
                    source: NodeId::new(1),
                    target: NodeId::new(80),
                },
            },
            Arrival {
                at: SimDuration::from_millis(900),
                kind: ArrivalKind::Query {
                    source: NodeId::new(2),
                    target: NodeId::new(70),
                },
            },
        ];
        let mut driver = EventDriver::new(&w, &model, DriveMode::Event, workload);
        driver.drive(&mut w, &mut model, SimDuration::from_secs(2));
        let report = driver.report();
        assert_eq!(report.arrivals, 3);
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(report.standing_registered, vec![0]);
        assert_eq!(w.standing_queries().len(), 1);
        assert_eq!(w.standing_queries().stats().registered, 1);
        assert_eq!(report.validation_rounds, 2);
    }

    #[test]
    fn segments_stack_like_one_long_drive() {
        let run = |chunks: &[u64]| {
            let mut w = world();
            let mut model = partition(&w, 0.9);
            let mut driver = EventDriver::new(&w, &model, DriveMode::Event, Vec::new());
            for &ms in chunks {
                driver.drive(&mut w, &mut model, SimDuration::from_millis(ms));
            }
            (
                w.now(),
                w.network().adj().canonical_csr(),
                w.stats().series_where(|_| true),
            )
        };
        // 3 s in one go vs awkward non-lattice splits
        assert_eq!(run(&[3000]), run(&[1250, 50, 1700]));
    }

    #[test]
    #[should_panic(expected = "lattices may collide")]
    fn colliding_lattices_rejected() {
        let mut config = cfg();
        config.mobility_tick = SimDuration::from_micros(100_000);
        config.validation_period = SimDuration::from_micros(99_999);
        let w = CardWorld::build(&scenario(), config);
        let mut m = RegionalMobility::new();
        m.push_region(w.network().node_count(), Box::new(StaticModel));
        let _ = EventDriver::new(&w, &m, DriveMode::Event, Vec::new());
    }

    #[test]
    fn static_partition_never_wakes() {
        let mut w = world();
        let mut m = RegionalMobility::new();
        m.push_region(w.network().node_count(), Box::new(StaticModel));
        let mut driver = EventDriver::new(&w, &m, DriveMode::Event, Vec::new());
        driver.drive(&mut w, &mut m, SimDuration::from_secs(2));
        assert_eq!(driver.report().region_wakes, 0);
        assert_eq!(driver.report().refreshes, 0);
        assert_eq!(driver.report().validation_rounds, 2);
        assert_eq!(w.now(), SimTime::from_secs(2));
    }
}

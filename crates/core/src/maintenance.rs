//! Contact maintenance — §III.C.3.
//!
//! Periodically each source sends a validation message along every stored
//! contact path. A relay whose next hop is no longer a direct neighbor
//! attempts **local recovery**: it looks the next hop up in its own
//! neighborhood table — and failing that, each *subsequent* node of the
//! source path — and splices the intra-zone route in, so the path heals
//! without a new source-initiated search. Rules, verbatim from the paper:
//!
//! 3. a path that cannot be salvaged ⇒ contact lost;
//! 4. a validated path whose hop count leaves `[2R, r]` ⇒ contact lost;
//! 5. after validating, if fewer than NoC contacts remain, new selection is
//!    initiated (done by the caller — see [`crate::world::CardWorld`]).

use manet_routing::network::Network;
use net_topology::node::NodeId;
use sim_core::stats::{MsgKind, MsgStats};
use sim_core::time::SimTime;

use crate::config::CardConfig;
use crate::contact::ContactTable;

/// Counters from one validation round of one source.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// Contacts whose paths validated (possibly after recovery).
    pub validated: usize,
    /// Contacts lost (unsalvageable path).
    pub lost: usize,
    /// Contacts dropped by the `[2R, r]` hop rule.
    pub dropped_out_of_range: usize,
    /// Paths that needed (successful) local recovery.
    pub recovered: usize,
    /// Validation messages sent (forward hops, including recovery detours).
    pub validation_msgs: u64,
    /// Acknowledgement messages (reverse hops of validated paths).
    pub reply_msgs: u64,
}

/// Remove loops from a spliced path: keep the first occurrence of every
/// node, cutting the segment between repeats (the message would have
/// revisited a node — the node short-circuits the source route).
fn compress_loops(path: &mut Vec<NodeId>) {
    let mut i = 0;
    while i < path.len() {
        // find the LAST occurrence of path[i] and cut everything between
        if let Some(j) = (i + 1..path.len()).rev().find(|&j| path[j] == path[i]) {
            path.drain(i + 1..=j);
        }
        i += 1;
    }
}

/// Validate one stored path against the current topology, healing it with
/// local recovery where allowed. Returns the healed path (`None` ⇒ lost)
/// plus (validation message count, recovery-used flag).
///
/// `allowed` is an extra per-hop admission predicate layered on top of the
/// substrate's `is_link`: the calm path passes `|_, _| true` (and compiles
/// to exactly the pre-fault behavior), while fault injection uses it to
/// veto hops into crashed nodes or across a partition cut — including the
/// hops of a locally recovered splice, which would otherwise smuggle a
/// route through a region the fault plane has taken down.
fn validate_path(
    net: &Network,
    cfg: &CardConfig,
    path: &[NodeId],
    msgs: &mut u64,
    allowed: &dyn Fn(NodeId, NodeId) -> bool,
) -> (Option<Vec<NodeId>>, bool) {
    let mut healed: Vec<NodeId> = vec![path[0]];
    let mut rest: Vec<NodeId> = path[1..].to_vec();
    let mut used_recovery = false;

    'outer: while !rest.is_empty() {
        let cur = *healed.last().unwrap();
        let next = rest[0];
        if net.is_link(cur, next) && allowed(cur, next) {
            *msgs += 1; // the validation message traverses this hop
            healed.push(next);
            rest.remove(0);
            continue;
        }
        // Next hop is gone. Local recovery (§III.C.3): look for the next
        // hop — or any later node of the source path — in cur's
        // neighborhood table and splice the intra-zone route in.
        if cfg.local_recovery {
            for (k, &candidate) in rest.iter().enumerate() {
                if candidate == cur {
                    // the path folds back onto the current node: skip ahead
                    rest.drain(..=k);
                    used_recovery = true;
                    continue 'outer;
                }
                if let Some(route) = net.tables().of(cur).path_to(candidate) {
                    if !route.windows(2).all(|w| allowed(w[0], w[1])) {
                        continue;
                    }
                    // route = [cur, ..., candidate]; message walks it
                    *msgs += route.len() as u64 - 1;
                    healed.extend_from_slice(&route[1..]);
                    rest.drain(..=k);
                    used_recovery = true;
                    continue 'outer;
                }
            }
        }
        return (None, used_recovery);
    }

    compress_loops(&mut healed);
    (Some(healed), used_recovery)
}

/// Number of shard-boundary crossings along `path` when nodes are
/// partitioned into contiguous spans of `span_width` indices — how the
/// message plane meters validation traffic that the retained direct-read
/// implementation performs without materializing per-hop messages (see
/// `CardWorld::validation_round` and `PlaneStats::metered_crossings`).
pub fn path_shard_crossings(path: &[NodeId], span_width: usize) -> u64 {
    let w = span_width.max(1);
    path.windows(2)
        .filter(|p| p[0].index() / w != p[1].index() / w)
        .count() as u64
}

/// Run one §III.C.3 validation round for `source`: walk every contact
/// path, heal or drop, enforce the hop-range rule, count messages.
pub fn validate_contacts(
    net: &Network,
    cfg: &CardConfig,
    source: NodeId,
    table: &mut ContactTable,
    stats: &mut MsgStats,
    at: SimTime,
) -> ValidationReport {
    validate_contacts_filtered(net, cfg, source, table, stats, at, &|_, _| true)
}

/// [`validate_contacts`] with a per-hop admission predicate: a hop
/// `(cur, next)` is only traversable when it is a substrate link *and*
/// `allowed(cur, next)` holds. Fault injection passes a predicate that
/// vetoes crashed endpoints and partition-crossing hops; with the
/// pass-all predicate this is byte-identical to [`validate_contacts`].
pub fn validate_contacts_filtered(
    net: &Network,
    cfg: &CardConfig,
    source: NodeId,
    table: &mut ContactTable,
    stats: &mut MsgStats,
    at: SimTime,
    allowed: &dyn Fn(NodeId, NodeId) -> bool,
) -> ValidationReport {
    let mut report = ValidationReport::default();
    let (min_hops, max_hops) = cfg.valid_path_hops();

    let contacts = std::mem::take(table.contacts_mut());
    for mut contact in contacts {
        debug_assert_eq!(contact.source(), source, "foreign contact in table");
        let mut msgs = 0u64;
        let (healed, recovered) = validate_path(net, cfg, &contact.path, &mut msgs, allowed);
        report.validation_msgs += msgs;
        if recovered {
            report.recovered += 1;
        }
        match healed {
            None => {
                report.lost += 1;
            }
            Some(path) => {
                let hops = (path.len() - 1) as u16;
                if hops < min_hops || hops > max_hops {
                    // Rule 4: contact drifted too close or too far.
                    report.dropped_out_of_range += 1;
                } else {
                    // Ack travels back along the healed path.
                    report.reply_msgs += hops as u64;
                    report.validated += 1;
                    contact.path = path;
                    table.contacts_mut().push(contact);
                }
            }
        }
    }

    stats.record_n(at, MsgKind::Validation, report.validation_msgs);
    stats.record_n(at, MsgKind::ValidationReply, report.reply_msgs);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::Contact;
    use net_topology::geometry::{Field, Point2};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// A line of nodes 40 m apart (range 50 m): 0-1-2-...-k.
    fn line_net(k: usize, radius: u16) -> Network {
        let positions: Vec<Point2> = (0..k)
            .map(|i| Point2::new(10.0 + 40.0 * i as f64, 10.0))
            .collect();
        Network::from_positions(
            Field::square(40.0 * k as f64 + 20.0),
            positions,
            50.0,
            radius,
        )
    }

    fn cfg(radius: u16, r: u16) -> CardConfig {
        CardConfig::default()
            .with_radius(radius)
            .with_max_contact_distance(r)
    }

    fn mk_stats() -> MsgStats {
        MsgStats::new(sim_core::time::SimDuration::from_secs(2))
    }

    #[test]
    fn intact_path_validates_with_roundtrip_messages() {
        let net = line_net(10, 1);
        let cfg = cfg(1, 9);
        let path: Vec<NodeId> = (0..5).map(n).collect(); // 4 hops, in [2,9]
        let mut table = ContactTable::new();
        table.add(Contact::new(n(4), path));
        let mut st = mk_stats();
        let rep = validate_contacts(&net, &cfg, n(0), &mut table, &mut st, SimTime::ZERO);
        assert_eq!(rep.validated, 1);
        assert_eq!(rep.lost, 0);
        assert_eq!(rep.recovered, 0);
        assert_eq!(rep.validation_msgs, 4);
        assert_eq!(rep.reply_msgs, 4);
        assert_eq!(table.len(), 1);
        assert_eq!(st.total(MsgKind::Validation), 4);
        assert_eq!(st.total(MsgKind::ValidationReply), 4);
    }

    #[test]
    fn stale_hop_recovers_through_neighborhood() {
        // Stored path skips a relay that "moved": 0-1-3-4 is broken at 1->3
        // (distance 80 m), but 3 is within R=2 of 1 via 2, so recovery
        // splices 1-2-3.
        let net = line_net(6, 2);
        let cfg = cfg(2, 5);
        let broken = vec![n(0), n(1), n(3), n(4), n(5)];
        let mut table = ContactTable::new();
        table.add(Contact::new(n(5), broken));
        let mut st = mk_stats();
        let rep = validate_contacts(&net, &cfg, n(0), &mut table, &mut st, SimTime::ZERO);
        assert_eq!(rep.validated, 1);
        assert_eq!(rep.recovered, 1);
        assert_eq!(
            table.contacts()[0].path,
            vec![n(0), n(1), n(2), n(3), n(4), n(5)]
        );
        assert_eq!(table.contacts()[0].hops(), 5);
    }

    #[test]
    fn recovery_skips_to_later_path_node() {
        // Break at 1->3 AND node 3 unreachable? Use a path listing a node
        // that no longer exists on the line: 0-1-9-4-5 (1->9 broken, 9 not
        // within R of 1), but 4 IS within... R=2 of 1? dist(1,4)=3 > 2. So
        // make R=3: lookup of 9 fails (dist 8), then 4 at dist 3 found.
        let net = line_net(10, 3);
        let cfg = cfg(3, 9);
        let broken = vec![n(0), n(1), n(9), n(4), n(5), n(6), n(7)];
        let mut table = ContactTable::new();
        table.add(Contact::new(n(7), broken));
        let mut st = mk_stats();
        let rep = validate_contacts(&net, &cfg, n(0), &mut table, &mut st, SimTime::ZERO);
        assert_eq!(rep.validated, 1, "should skip 9 and resume at 4");
        assert_eq!(rep.recovered, 1);
        assert_eq!(table.contacts()[0].path, (0..8).map(n).collect::<Vec<_>>());
    }

    #[test]
    fn unsalvageable_path_loses_contact() {
        let net = line_net(12, 1); // R=1: tiny neighborhoods
        let cfg = cfg(1, 11);
        // 0-1-7-...: 1 cannot see 7 (6 hops) nor anything later within R=1
        let broken = vec![n(0), n(1), n(7), n(8)];
        let mut table = ContactTable::new();
        table.add(Contact::new(n(8), broken));
        let mut st = mk_stats();
        let rep = validate_contacts(&net, &cfg, n(0), &mut table, &mut st, SimTime::ZERO);
        assert_eq!(rep.lost, 1);
        assert_eq!(rep.validated, 0);
        assert!(table.is_empty());
        assert_eq!(rep.validation_msgs, 1, "one good hop before the break");
    }

    #[test]
    fn local_recovery_disabled_loses_contact() {
        let net = line_net(6, 2);
        let mut c = cfg(2, 5);
        c.local_recovery = false;
        let broken = vec![n(0), n(1), n(3), n(4), n(5)];
        let mut table = ContactTable::new();
        table.add(Contact::new(n(5), broken));
        let mut st = mk_stats();
        let rep = validate_contacts(&net, &c, n(0), &mut table, &mut st, SimTime::ZERO);
        assert_eq!(rep.lost, 1);
        assert_eq!(rep.recovered, 0);
        assert!(table.is_empty());
    }

    #[test]
    fn too_short_path_dropped_by_rule4() {
        let net = line_net(8, 2); // 2R = 4
        let cfg = cfg(2, 7);
        let path: Vec<NodeId> = (0..4).map(n).collect(); // 3 hops < 4
        let mut table = ContactTable::new();
        table.add(Contact::new(n(3), path));
        let mut st = mk_stats();
        let rep = validate_contacts(&net, &cfg, n(0), &mut table, &mut st, SimTime::ZERO);
        assert_eq!(rep.dropped_out_of_range, 1);
        assert_eq!(rep.validated, 0);
        assert!(table.is_empty());
    }

    #[test]
    fn too_long_path_dropped_by_rule4() {
        let net = line_net(12, 2);
        let cfg = cfg(2, 6); // r = 6
        let path: Vec<NodeId> = (0..9).map(n).collect(); // 8 hops > 6
        let mut table = ContactTable::new();
        table.add(Contact::new(n(8), path));
        let mut st = mk_stats();
        let rep = validate_contacts(&net, &cfg, n(0), &mut table, &mut st, SimTime::ZERO);
        assert_eq!(rep.dropped_out_of_range, 1);
        assert!(table.is_empty());
    }

    #[test]
    fn filtered_validation_vetoes_hops_and_recovery_routes() {
        // Same topology as stale_hop_recovers_through_neighborhood, but
        // node 2 — the only recovery relay for the 1->3 break — is down.
        let net = line_net(6, 2);
        let cfg = cfg(2, 5);
        let broken = vec![n(0), n(1), n(3), n(4), n(5)];
        let mut table = ContactTable::new();
        table.add(Contact::new(n(5), broken.clone()));
        let mut st = mk_stats();
        let down = n(2);
        let rep = validate_contacts_filtered(
            &net,
            &cfg,
            n(0),
            &mut table,
            &mut st,
            SimTime::ZERO,
            &|a, b| a != down && b != down,
        );
        assert_eq!(rep.lost, 1, "recovery must not route through a down node");
        assert!(table.is_empty());
        // With the pass-all predicate the same path recovers.
        let mut table = ContactTable::new();
        table.add(Contact::new(n(5), broken));
        let rep = validate_contacts(&net, &cfg, n(0), &mut table, &mut st, SimTime::ZERO);
        assert_eq!(rep.validated, 1);
        assert_eq!(rep.recovered, 1);
    }

    #[test]
    fn compress_loops_removes_cycles() {
        let mut p = vec![n(0), n(1), n(2), n(1), n(3)];
        compress_loops(&mut p);
        assert_eq!(p, vec![n(0), n(1), n(3)]);
        let mut q = vec![n(0), n(1), n(2)];
        compress_loops(&mut q);
        assert_eq!(q, vec![n(0), n(1), n(2)]);
        let mut r = vec![n(0), n(1), n(0), n(1), n(2)];
        compress_loops(&mut r);
        assert_eq!(r, vec![n(0), n(1), n(2)]);
    }

    mod properties {
        use super::*;
        use net_topology::scenario::Scenario;
        use proptest::prelude::*;
        use sim_core::rng::SeedSplitter;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// After one validation round on a perturbed topology, every
            /// surviving contact path is a valid hop-by-hop route on the
            /// CURRENT topology, ends at the contact, and satisfies the
            /// [2R, r] rule.
            #[test]
            fn prop_survivors_have_valid_paths(seed in 0u64..300) {
                use crate::contact::ContactTable;
                use crate::csq::{select_contacts, CsqScratch, ALL_EDGE_NODES};
                use mobility::waypoint::RandomWaypoint;

                let scenario = Scenario::new(120, 420.0, 420.0, 55.0);
                let config = CardConfig::default()
                    .with_radius(2)
                    .with_max_contact_distance(9)
                    .with_target_contacts(4)
                    .with_seed(seed);
                let mut net = Network::from_scenario(&scenario, 2, seed);
                let splitter = SeedSplitter::new(seed);
                let mut stats = mk_stats();

                // tables for a handful of sources
                let mut scratch = CsqScratch::new();
                let mut tables: Vec<(NodeId, ContactTable)> = (0..10u32)
                    .map(|i| {
                        let node = NodeId::new(i);
                        let mut t = ContactTable::new();
                        let mut rng = splitter.stream("prop-sel", i as u64);
                        select_contacts(
                            &net, &config, node, &mut t, &mut rng, &mut stats, SimTime::ZERO,
                            ALL_EDGE_NODES, &mut scratch,
                        );
                        (node, t)
                    })
                    .collect();

                // perturb the topology, then validate
                let mut model = RandomWaypoint::new(
                    120, scenario.field(), 1.0, 4.0, 0.0, splitter.stream("prop-mob", 0));
                net.advance(&mut model, sim_core::time::SimDuration::from_secs(1));

                let (min_hops, max_hops) = config.valid_path_hops();
                for (node, table) in &mut tables {
                    validate_contacts(&net, &config, *node, table, &mut stats, SimTime::ZERO);
                    for c in table.contacts() {
                        prop_assert_eq!(c.source(), *node);
                        prop_assert!(c.hops() >= min_hops && c.hops() <= max_hops);
                        for hop in c.path.windows(2) {
                            prop_assert!(
                                net.is_link(hop[0], hop[1]),
                                "surviving path has a dead hop {:?}", hop
                            );
                        }
                        // healed paths are loop-free
                        let mut seen = std::collections::HashSet::new();
                        for &p in &c.path {
                            prop_assert!(seen.insert(p), "loop at {p} in healed path");
                        }
                    }
                }
            }

            /// compress_loops is idempotent and never grows a path.
            #[test]
            fn prop_compress_loops_idempotent(raw in proptest::collection::vec(0u32..12, 1..30)) {
                let mut path: Vec<NodeId> = raw.iter().map(|&i| NodeId::new(i)).collect();
                let original_len = path.len();
                compress_loops(&mut path);
                prop_assert!(path.len() <= original_len);
                // no repeats afterwards
                let mut seen = std::collections::HashSet::new();
                for &p in &path {
                    prop_assert!(seen.insert(p));
                }
                // idempotent
                let once = path.clone();
                compress_loops(&mut path);
                prop_assert_eq!(once, path);
            }
        }
    }

    #[test]
    fn multiple_contacts_mixed_outcomes() {
        let net = line_net(12, 2);
        let cfg = cfg(2, 9);
        let mut table = ContactTable::new();
        table.add(Contact::new(n(5), (0..6).map(n).collect())); // 5 hops, fine
        table.add(Contact::new(n(4), (0..5).map(n).collect())); // 4 hops, = 2R fine
        table.add(Contact::new(n(3), (0..4).map(n).collect())); // 3 hops < 2R drop
        let mut st = mk_stats();
        let rep = validate_contacts(&net, &cfg, n(0), &mut table, &mut st, SimTime::ZERO);
        assert_eq!(rep.validated, 2);
        assert_eq!(rep.dropped_out_of_range, 1);
        assert_eq!(table.len(), 2);
    }
}
